//! `vx-xquery` — the XQ query-language front end (DESIGN.md row 5).
//!
//! XQ is the paper's practical XQuery fragment:
//!
//! ```text
//! query    := "for" binding ("," binding)*
//!             ("where" cond ("and" cond)*)?
//!             "return" ret
//! binding  := $var "in" path
//! path     := ( doc("name") | $var ) step*
//! step     := "/" name | "//" name | "/" "*" | step "[" qual "]"
//! qual     := relpath | relpath "=" literal
//! cond     := path "=" literal | path "=" path | "exists" "(" path ")"
//! ret      := path | elem
//! elem     := "<" name ">" content* "</" name ">"
//! content  := "{" path "}" | "{" query "}" | elem
//! ```
//!
//! `//` (descendant-or-self) and `*` (wildcard) form the XQ[*,//]
//! extension, `path = path` conditions are equality (join) edges, and
//! element constructors with nested FLWRs form the result-skeleton
//! extension; the parser accepts all of them and the engine decides what
//! it supports. Qualifiers are syntactic sugar: [`desugar`] rewrites
//! `$x in P[q]/R` into fresh-variable bindings plus `where` conjuncts,
//! after which no qualifier remains (the form the query-graph compiler
//! consumes).

pub mod ast;
mod desugar;
mod lexer;
mod parser;

pub use ast::{
    Axis, Binding, Condition, Content, ElemConstructor, NameTest, Operand, PathExpr, Qualifier,
    Query, ReturnExpr, Root, Span, Step,
};
pub use desugar::{desugar, is_fully_desugared};
pub use parser::parse_query;

use std::fmt;

/// A parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XqError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XQ parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XqError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, XqError>;
