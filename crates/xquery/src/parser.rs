//! Recursive-descent parser for XQ.

use crate::ast::*;
use crate::lexer::{tokenize, Spanned, Token};
use crate::{Result, XqError};

/// Parses an XQ query.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let query = p.query()?;
    p.expect(&Token::Eof)?;
    Ok(query)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> XqError {
        XqError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, token: &Token) -> Result<()> {
        if self.peek() == token {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {token:?}, found {:?}", self.peek())))
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect(&Token::For)?;
        let mut bindings = vec![self.binding()?];
        while self.peek() == &Token::Comma {
            self.bump();
            bindings.push(self.binding()?);
        }
        let mut conditions = Vec::new();
        if self.peek() == &Token::Where {
            self.bump();
            conditions.push(self.condition()?);
            while self.peek() == &Token::And {
                self.bump();
                conditions.push(self.condition()?);
            }
        }
        self.expect(&Token::Return)?;
        let ret = self.return_expr()?;
        Ok(Query {
            bindings,
            conditions,
            ret,
        })
    }

    /// `return` body: a path or an element constructor.
    fn return_expr(&mut self) -> Result<ReturnExpr> {
        if self.peek() == &Token::LAngle {
            Ok(ReturnExpr::Element(self.constructor()?))
        } else {
            Ok(ReturnExpr::Path(self.path()?))
        }
    }

    /// `<tag> content* </tag>`; content is `{path}`, `{for … return …}`,
    /// or a nested constructor. Literal text content is out of the
    /// grammar (XQ constructs documents from queried values only).
    fn constructor(&mut self) -> Result<ElemConstructor> {
        let start = self.offset();
        self.expect(&Token::LAngle)?;
        let tag = match self.bump() {
            Token::Name(n) => n,
            other => return Err(self.err(format!("expected constructor tag, found {other:?}"))),
        };
        self.expect(&Token::RAngle)?;
        let mut content = Vec::new();
        loop {
            match self.peek() {
                Token::LAngle => content.push(Content::Element(self.constructor()?)),
                Token::LBrace => {
                    self.bump();
                    if self.peek() == &Token::For {
                        content.push(Content::Query(Box::new(self.query()?)));
                    } else {
                        content.push(Content::Path(self.path()?));
                    }
                    self.expect(&Token::RBrace)?;
                }
                Token::LAngleSlash => break,
                other => {
                    return Err(self.err(format!(
                        "expected `{{`, nested constructor, or `</{tag}>`, found {other:?}"
                    )))
                }
            }
        }
        self.expect(&Token::LAngleSlash)?;
        match self.bump() {
            Token::Name(n) if n == tag => {}
            other => {
                return Err(self.err(format!(
                    "constructor `<{tag}>` closed by {other:?}, expected `</{tag}>`"
                )))
            }
        }
        let end = self.offset();
        self.expect(&Token::RAngle)?;
        Ok(ElemConstructor {
            tag,
            content,
            span: Span::new(start, end),
        })
    }

    fn binding(&mut self) -> Result<Binding> {
        let var = match self.bump() {
            Token::Var(v) => v,
            other => return Err(self.err(format!("expected $variable, found {other:?}"))),
        };
        self.expect(&Token::In)?;
        let path = self.path()?;
        Ok(Binding { var, path })
    }

    fn path(&mut self) -> Result<PathExpr> {
        let start = self.offset();
        let root = match self.bump() {
            Token::Doc => {
                self.expect(&Token::LParen)?;
                let name = match self.bump() {
                    Token::Literal(s) => s,
                    other => {
                        return Err(self.err(format!("expected document name, found {other:?}")))
                    }
                };
                self.expect(&Token::RParen)?;
                Root::Doc(name)
            }
            Token::Var(v) => Root::Var(v),
            other => return Err(self.err(format!("expected doc(\"…\") or $var, found {other:?}"))),
        };
        let steps = self.steps()?;
        let end = self.offset();
        Ok(PathExpr {
            root,
            steps,
            span: Span::new(start, end),
        })
    }

    /// Zero or more `/name`, `//name`, `/*` steps with qualifiers.
    fn steps(&mut self) -> Result<Vec<Step>> {
        let mut steps = Vec::new();
        loop {
            let axis = match self.peek() {
                Token::Slash => Axis::Child,
                Token::DoubleSlash => Axis::DescendantOrSelf,
                _ => return Ok(steps),
            };
            self.bump();
            let test = match self.bump() {
                Token::Name(n) => NameTest::Name(n),
                Token::Star => NameTest::Any,
                other => return Err(self.err(format!("expected step name or *, found {other:?}"))),
            };
            let mut qualifiers = Vec::new();
            while self.peek() == &Token::LBracket {
                self.bump();
                qualifiers.push(self.qualifier()?);
                self.expect(&Token::RBracket)?;
            }
            steps.push(Step {
                axis,
                test,
                qualifiers,
            });
        }
    }

    /// Inside `[ … ]`: a relative path, optionally `= literal`.
    fn qualifier(&mut self) -> Result<Qualifier> {
        let rel = self.relative_steps()?;
        if self.peek() == &Token::Equals {
            self.bump();
            let value = match self.bump() {
                Token::Literal(s) => s,
                Token::Number(n) => n,
                other => return Err(self.err(format!("expected literal, found {other:?}"))),
            };
            Ok(Qualifier::Eq(rel, value))
        } else {
            Ok(Qualifier::Exists(rel))
        }
    }

    /// `name(/name)*` — the relative path of a qualifier (leading slash
    /// omitted, as in the paper's `[p = c]`).
    fn relative_steps(&mut self) -> Result<Vec<Step>> {
        let mut first = match self.bump() {
            Token::Name(n) => Step::child(n),
            other => return Err(self.err(format!("expected relative path, found {other:?}"))),
        };
        while self.peek() == &Token::LBracket {
            self.bump();
            first.qualifiers.push(self.qualifier()?);
            self.expect(&Token::RBracket)?;
        }
        let mut steps = vec![first];
        steps.extend(self.steps()?);
        Ok(steps)
    }

    fn condition(&mut self) -> Result<Condition> {
        if self.peek() == &Token::Exists {
            self.bump();
            self.expect(&Token::LParen)?;
            let path = self.path()?;
            self.expect(&Token::RParen)?;
            return Ok(Condition::Exists(path));
        }
        let left = self.path()?;
        self.expect(&Token::Equals)?;
        let right = match self.peek().clone() {
            Token::Literal(s) => {
                self.bump();
                Operand::Literal(s)
            }
            Token::Number(n) => {
                self.bump();
                Operand::Literal(n)
            }
            Token::Doc | Token::Var(_) => Operand::Path(self.path()?),
            other => return Err(self.err(format!("expected literal or path, found {other:?}"))),
        };
        Ok(Condition::Eq(left, right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_selection_query() {
        let q = parse_query(
            r#"for $x in doc("ml")/MedlineCitationSet/MedlineCitation
               where $x/Language = "ENG"
               return $x/PMID"#,
        )
        .unwrap();
        assert_eq!(q.bindings.len(), 1);
        assert_eq!(q.bindings[0].var, "x");
        assert_eq!(
            q.bindings[0].path.simple_tags().unwrap(),
            vec!["MedlineCitationSet", "MedlineCitation"]
        );
        assert_eq!(q.conditions.len(), 1);
        assert_eq!(format!("{}", q.ret), "$x/PMID");
    }

    #[test]
    fn parses_qualifiers_joins_and_xq_star_slashslash() {
        let q = parse_query(
            r#"for $x in doc("d")/a/b[c = "1"][d], $y in $x//e
               where $x/f = $y/g and exists($y/h)
               return $y/*"#,
        )
        .unwrap();
        assert_eq!(q.bindings[0].path.steps[1].qualifiers.len(), 2);
        assert_eq!(q.bindings[1].path.steps[0].axis, Axis::DescendantOrSelf);
        assert!(matches!(
            &q.conditions[0],
            Condition::Eq(_, Operand::Path(_))
        ));
        assert!(matches!(&q.conditions[1], Condition::Exists(_)));
        match &q.ret {
            ReturnExpr::Path(p) => assert_eq!(p.steps[0].test, NameTest::Any),
            other => panic!("expected path return, got {other:?}"),
        }
    }

    #[test]
    fn parses_element_constructors() {
        let q = parse_query(
            r#"for $x in doc("d")/a, $y in doc("e")/b
               where $x/k = $y/k
               return <r>{$x/v}<inner>{$y//w}</inner>{for $z in $x/c return $z/t}</r>"#,
        )
        .unwrap();
        let c = match &q.ret {
            ReturnExpr::Element(c) => c,
            other => panic!("expected constructor, got {other:?}"),
        };
        assert_eq!(c.tag, "r");
        assert_eq!(c.content.len(), 3);
        assert!(matches!(&c.content[0], Content::Path(_)));
        match &c.content[1] {
            Content::Element(inner) => {
                assert_eq!(inner.tag, "inner");
                assert!(matches!(&inner.content[0], Content::Path(_)));
            }
            other => panic!("expected nested constructor, got {other:?}"),
        }
        match &c.content[2] {
            Content::Query(nested) => {
                assert_eq!(nested.bindings[0].var, "z");
                assert_eq!(format!("{}", nested.ret), "$z/t");
            }
            other => panic!("expected nested FLWR, got {other:?}"),
        }
    }

    #[test]
    fn paths_carry_spans() {
        let src = r#"for $x in doc("d")/a//b return $x/c"#;
        let q = parse_query(src).unwrap();
        let span = q.bindings[0].path.span;
        assert_eq!(&src[span.start..span.start + 8], r#"doc("d")"#);
        assert!(span.end > span.start);
    }

    #[test]
    fn rejects_mismatched_constructor_tags() {
        assert!(parse_query(r#"for $x in doc("d")/a return <r>{$x/v}</s>"#).is_err());
        assert!(parse_query(r#"for $x in doc("d")/a return <r>text</r>"#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "for x in doc(\"d\") return $x",
            "for $x in doc(d) return $x",
            "for $x in doc(\"d\")/a where return $x",
            "for $x in doc(\"d\")/a[b = ] return $x",
            "for $x in doc(\"d\")/a return $x extra",
        ] {
            assert!(parse_query(bad).is_err(), "expected failure for {bad:?}");
        }
    }
}
