//! Qualifier desugaring.
//!
//! `$x in P[q]/R` is sugar: the paper's compiler assumes plain paths plus
//! `where` conjuncts. Each qualified step is split out into a fresh
//! variable bound to the path up to (and including) that step, and every
//! qualifier becomes a conjunct rooted at the fresh variable:
//!
//! ```text
//! for $x in doc("d")/a/b[c = "1"]/d  return $x
//! ⇒
//! for $v0 in doc("d")/a/b, $x in $v0/d
//! where $v0/c = "1"
//! return $x
//! ```
//!
//! Qualifiers nest (`a[b[c]]`); desugaring recurses until no qualifier
//! remains anywhere in the query.

use crate::ast::*;

/// Rewrites `query` into an equivalent query with no qualifiers.
///
/// Nested FLWRs in constructor content desugar recursively (into their
/// own binding lists). Plain constructor-content paths are left alone:
/// hoisting a content qualifier into the outer `for` would multiply the
/// tuple count, so the compiler rejects qualifiers there instead.
pub fn desugar(query: &Query) -> Query {
    let mut fresh = FreshVars::new(query);
    desugar_query(query, &mut fresh)
}

fn desugar_query(query: &Query, fresh: &mut FreshVars) -> Query {
    let mut bindings = Vec::new();
    let mut conditions = Vec::new();
    for binding in &query.bindings {
        let path = desugar_path(&binding.path, &mut bindings, &mut conditions, fresh);
        bindings.push(Binding {
            var: binding.var.clone(),
            path,
        });
    }
    for condition in &query.conditions {
        let rewritten = match condition {
            Condition::Exists(p) => {
                Condition::Exists(desugar_path(p, &mut bindings, &mut conditions, fresh))
            }
            Condition::Eq(left, right) => {
                let left = desugar_path(left, &mut bindings, &mut conditions, fresh);
                let right = match right {
                    Operand::Literal(l) => Operand::Literal(l.clone()),
                    Operand::Path(p) => {
                        Operand::Path(desugar_path(p, &mut bindings, &mut conditions, fresh))
                    }
                };
                Condition::Eq(left, right)
            }
        };
        conditions.push(rewritten);
    }
    let ret = match &query.ret {
        ReturnExpr::Path(p) => {
            ReturnExpr::Path(desugar_path(p, &mut bindings, &mut conditions, fresh))
        }
        ReturnExpr::Element(c) => ReturnExpr::Element(desugar_constructor(c, fresh)),
    };
    Query {
        bindings,
        conditions,
        ret,
    }
}

fn desugar_constructor(c: &ElemConstructor, fresh: &mut FreshVars) -> ElemConstructor {
    ElemConstructor {
        tag: c.tag.clone(),
        content: c
            .content
            .iter()
            .map(|item| match item {
                Content::Path(p) => Content::Path(p.clone()),
                Content::Element(e) => Content::Element(desugar_constructor(e, fresh)),
                Content::Query(q) => Content::Query(Box::new(desugar_query(q, fresh))),
            })
            .collect(),
        span: c.span,
    }
}

/// Splits a path at each qualified step, appending fresh bindings and
/// conjuncts; returns the qualifier-free tail path.
fn desugar_path(
    path: &PathExpr,
    bindings: &mut Vec<Binding>,
    conditions: &mut Vec<Condition>,
    fresh: &mut FreshVars,
) -> PathExpr {
    let mut root = path.root.clone();
    let mut pending: Vec<Step> = Vec::new();
    for step in &path.steps {
        let clean = Step {
            axis: step.axis,
            test: step.test.clone(),
            qualifiers: Vec::new(),
        };
        pending.push(clean);
        if step.qualifiers.is_empty() {
            continue;
        }
        // Bind a fresh variable to everything up to this step.
        let var = fresh.next();
        bindings.push(Binding {
            var: var.clone(),
            path: PathExpr {
                root: root.clone(),
                steps: std::mem::take(&mut pending),
                span: path.span,
            },
        });
        root = Root::Var(var.clone());
        for qualifier in &step.qualifiers {
            let (rel, value) = match qualifier {
                Qualifier::Exists(rel) => (rel, None),
                Qualifier::Eq(rel, value) => (rel, Some(value.clone())),
            };
            // Qualifier paths may themselves carry qualifiers: recurse.
            let rel_path = desugar_path(
                &PathExpr {
                    root: Root::Var(var.clone()),
                    steps: rel.clone(),
                    span: path.span,
                },
                bindings,
                conditions,
                fresh,
            );
            conditions.push(match value {
                None => Condition::Exists(rel_path),
                Some(v) => Condition::Eq(rel_path, Operand::Literal(v)),
            });
        }
    }
    PathExpr {
        root,
        steps: pending,
        span: path.span,
    }
}

/// Fresh-variable generator avoiding every name used in the query.
struct FreshVars {
    used: std::collections::HashSet<String>,
    next: usize,
}

impl FreshVars {
    fn new(query: &Query) -> Self {
        let mut used = std::collections::HashSet::new();
        collect_var_names(query, &mut used);
        FreshVars { used, next: 0 }
    }

    fn next(&mut self) -> String {
        loop {
            let candidate = format!("v{}", self.next);
            self.next += 1;
            if !self.used.contains(&candidate) {
                self.used.insert(candidate.clone());
                return candidate;
            }
        }
    }
}

/// Binding names of the query and every nested FLWR.
fn collect_var_names(query: &Query, used: &mut std::collections::HashSet<String>) {
    for b in &query.bindings {
        used.insert(b.var.clone());
    }
    if let ReturnExpr::Element(c) = &query.ret {
        collect_constructor_names(c, used);
    }
}

fn collect_constructor_names(c: &ElemConstructor, used: &mut std::collections::HashSet<String>) {
    for item in &c.content {
        match item {
            Content::Path(_) => {}
            Content::Element(e) => collect_constructor_names(e, used),
            Content::Query(q) => collect_var_names(q, used),
        }
    }
}

/// True when no qualifier remains anywhere in the query (including
/// constructor content and nested FLWRs).
pub fn is_fully_desugared(query: &Query) -> bool {
    let path_ok = |p: &PathExpr| p.is_desugared();
    query.bindings.iter().all(|b| path_ok(&b.path))
        && query.conditions.iter().all(|c| match c {
            Condition::Exists(p) => path_ok(p),
            Condition::Eq(l, Operand::Path(r)) => path_ok(l) && path_ok(r),
            Condition::Eq(l, Operand::Literal(_)) => path_ok(l),
        })
        && match &query.ret {
            ReturnExpr::Path(p) => path_ok(p),
            ReturnExpr::Element(c) => constructor_desugared(c),
        }
}

fn constructor_desugared(c: &ElemConstructor) -> bool {
    c.content.iter().all(|item| match item {
        Content::Path(p) => p.is_desugared(),
        Content::Element(e) => constructor_desugared(e),
        Content::Query(q) => is_fully_desugared(q),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn splits_mid_path_qualifier() {
        let q = parse_query(r#"for $x in doc("d")/a/b[c = "1"]/d return $x"#).unwrap();
        let d = desugar(&q);
        assert!(is_fully_desugared(&d));
        assert_eq!(d.bindings.len(), 2);
        assert_eq!(format!("{}", d.bindings[0].path), "doc(\"d\")/a/b");
        assert_eq!(d.bindings[1].var, "x");
        assert_eq!(format!("{}", d.bindings[1].path), "$v0/d");
        assert_eq!(d.conditions.len(), 1);
        match &d.conditions[0] {
            Condition::Eq(p, Operand::Literal(v)) => {
                assert_eq!(format!("{p}"), "$v0/c");
                assert_eq!(v, "1");
            }
            other => panic!("unexpected condition {other:?}"),
        }
    }

    #[test]
    fn trailing_qualifier_attaches_to_fresh_var() {
        let q = parse_query(r#"for $x in doc("d")/a[b] return $x/c"#).unwrap();
        let d = desugar(&q);
        assert!(is_fully_desugared(&d));
        // $v0 = doc/a (the qualified step), $x = $v0 (empty tail).
        assert_eq!(d.bindings.len(), 2);
        assert_eq!(format!("{}", d.bindings[1].path), "$v0");
        assert!(matches!(&d.conditions[0], Condition::Exists(_)));
    }

    #[test]
    fn nested_qualifiers_recurse() {
        let q = parse_query(r#"for $x in doc("d")/a[b[c = "2"]] return $x"#).unwrap();
        let d = desugar(&q);
        assert!(is_fully_desugared(&d));
        // a gets $v0; its qualifier path b[c="2"] gets $v1.
        assert_eq!(d.bindings.len(), 3);
        assert_eq!(d.conditions.len(), 2);
    }

    #[test]
    fn qualifier_free_query_is_unchanged() {
        let q = parse_query(r#"for $x in doc("d")/a/b where $x/c = "v" return $x/d"#).unwrap();
        let d = desugar(&q);
        assert_eq!(q, d);
    }

    #[test]
    fn fresh_vars_avoid_collisions() {
        let q = parse_query(r#"for $v0 in doc("d")/a[b] return $v0"#).unwrap();
        let d = desugar(&q);
        let names: Vec<_> = d.bindings.iter().map(|b| b.var.as_str()).collect();
        assert_eq!(names.iter().filter(|n| **n == "v0").count(), 1);
    }
}
