//! XQ tokenizer.

use crate::{Result, XqError};

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    For,
    In,
    Where,
    Return,
    And,
    Doc,
    Exists,
    /// `$name`.
    Var(String),
    /// A tag name (or other bare identifier).
    Name(String),
    /// `"…"` or `'…'`.
    Literal(String),
    /// A bare number, carried as its source text (values compare as text).
    Number(String),
    Slash,
    DoubleSlash,
    Star,
    LBracket,
    RBracket,
    LParen,
    RParen,
    LBrace,
    RBrace,
    /// `<` opening an element constructor.
    LAngle,
    /// `</` opening a constructor's closing tag.
    LAngleSlash,
    /// `>` closing a constructor tag.
    RAngle,
    Comma,
    Equals,
    Eof,
}

/// A token plus its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        let start = pos;
        let token = match b {
            b'/' => {
                pos += 1;
                if bytes.get(pos) == Some(&b'/') {
                    pos += 1;
                    Token::DoubleSlash
                } else {
                    Token::Slash
                }
            }
            b'*' => {
                pos += 1;
                Token::Star
            }
            b'[' => {
                pos += 1;
                Token::LBracket
            }
            b']' => {
                pos += 1;
                Token::RBracket
            }
            b'(' => {
                pos += 1;
                Token::LParen
            }
            b')' => {
                pos += 1;
                Token::RParen
            }
            b',' => {
                pos += 1;
                Token::Comma
            }
            b'=' => {
                pos += 1;
                Token::Equals
            }
            b'{' => {
                pos += 1;
                Token::LBrace
            }
            b'}' => {
                pos += 1;
                Token::RBrace
            }
            b'<' => {
                pos += 1;
                if bytes.get(pos) == Some(&b'/') {
                    pos += 1;
                    Token::LAngleSlash
                } else {
                    Token::LAngle
                }
            }
            b'>' => {
                pos += 1;
                Token::RAngle
            }
            b'$' => {
                pos += 1;
                let name = take_name(bytes, &mut pos);
                if name.is_empty() {
                    return Err(XqError {
                        offset: start,
                        message: "expected variable name after `$`".into(),
                    });
                }
                Token::Var(name)
            }
            b'"' | b'\'' => {
                let quote = b;
                pos += 1;
                let lit_start = pos;
                while pos < bytes.len() && bytes[pos] != quote {
                    pos += 1;
                }
                if pos >= bytes.len() {
                    return Err(XqError {
                        offset: start,
                        message: "unterminated string literal".into(),
                    });
                }
                let text = std::str::from_utf8(&bytes[lit_start..pos])
                    .expect("slicing on byte boundaries of valid UTF-8")
                    .to_string();
                pos += 1;
                Token::Literal(text)
            }
            b'0'..=b'9' => {
                while pos < bytes.len() && (bytes[pos].is_ascii_digit() || bytes[pos] == b'.') {
                    pos += 1;
                }
                Token::Number(
                    std::str::from_utf8(&bytes[start..pos])
                        .expect("ascii digits")
                        .to_string(),
                )
            }
            _ if is_name_start(b) => {
                let name = take_name(bytes, &mut pos);
                match name.as_str() {
                    "for" => Token::For,
                    "in" => Token::In,
                    "where" => Token::Where,
                    "return" => Token::Return,
                    "and" => Token::And,
                    "doc" => Token::Doc,
                    "exists" => Token::Exists,
                    _ => Token::Name(name),
                }
            }
            _ => {
                return Err(XqError {
                    offset: pos,
                    message: format!("unexpected character `{}`", b as char),
                })
            }
        };
        out.push(Spanned {
            token,
            offset: start,
        });
    }
    out.push(Spanned {
        token: Token::Eof,
        offset: bytes.len(),
    });
    Ok(out)
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b'@' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

fn take_name(bytes: &[u8], pos: &mut usize) -> String {
    let start = *pos;
    while *pos < bytes.len() && is_name_char(bytes[*pos]) {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .expect("name chars form valid UTF-8")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_query() {
        let toks = tokenize(r#"for $x in doc("ml")/a//b[c = "v"] return $x/d"#).unwrap();
        let kinds: Vec<_> = toks.into_iter().map(|s| s.token).collect();
        assert_eq!(
            kinds,
            vec![
                Token::For,
                Token::Var("x".into()),
                Token::In,
                Token::Doc,
                Token::LParen,
                Token::Literal("ml".into()),
                Token::RParen,
                Token::Slash,
                Token::Name("a".into()),
                Token::DoubleSlash,
                Token::Name("b".into()),
                Token::LBracket,
                Token::Name("c".into()),
                Token::Equals,
                Token::Literal("v".into()),
                Token::RBracket,
                Token::Return,
                Token::Var("x".into()),
                Token::Slash,
                Token::Name("d".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("for $ in x").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("a ; b").is_err());
    }

    #[test]
    fn tokenizes_constructor_delimiters() {
        let toks = tokenize("<r>{$x}</r>").unwrap();
        let kinds: Vec<_> = toks.into_iter().map(|s| s.token).collect();
        assert_eq!(
            kinds,
            vec![
                Token::LAngle,
                Token::Name("r".into()),
                Token::RAngle,
                Token::LBrace,
                Token::Var("x".into()),
                Token::RBrace,
                Token::LAngleSlash,
                Token::Name("r".into()),
                Token::RAngle,
                Token::Eof,
            ]
        );
    }
}
