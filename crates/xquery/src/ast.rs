//! XQ abstract syntax.

use std::fmt;

/// A byte range in the query source, for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }
}

/// A complete `for … where … return …` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    pub bindings: Vec<Binding>,
    pub conditions: Vec<Condition>,
    pub ret: ReturnExpr,
}

/// `$var in path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    pub var: String,
    pub path: PathExpr,
}

/// Where a path starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Root {
    /// `doc("name")`.
    Doc(String),
    /// `$var`.
    Var(String),
}

/// A path: root plus child/descendant steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathExpr {
    pub root: Root,
    pub steps: Vec<Step>,
    /// Byte range of the path in the query source (zero for synthesized
    /// paths that carry no source location).
    pub span: Span,
}

impl PathExpr {
    pub fn var(name: impl Into<String>) -> Self {
        PathExpr {
            root: Root::Var(name.into()),
            steps: Vec::new(),
            span: Span::default(),
        }
    }

    /// True once no step carries a qualifier (the post-desugar invariant).
    pub fn is_desugared(&self) -> bool {
        self.steps.iter().all(|s| s.qualifiers.is_empty())
    }

    /// The tag names of the steps, if every step is a plain child step —
    /// the form the minimal engine evaluates directly.
    pub fn simple_tags(&self) -> Option<Vec<&str>> {
        self.steps
            .iter()
            .map(|s| match (&s.axis, &s.test) {
                (Axis::Child, NameTest::Name(n)) if s.qualifiers.is_empty() => Some(n.as_str()),
                _ => None,
            })
            .collect()
    }
}

/// One path step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    pub axis: Axis,
    pub test: NameTest,
    pub qualifiers: Vec<Qualifier>,
}

impl Step {
    pub fn child(name: impl Into<String>) -> Self {
        Step {
            axis: Axis::Child,
            test: NameTest::Name(name.into()),
            qualifiers: Vec::new(),
        }
    }
}

/// Step axis: `/` or `//`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    Child,
    DescendantOrSelf,
}

/// Step test: a tag name or `*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameTest {
    Name(String),
    Any,
}

/// A bracketed qualifier `[p]` or `[p = "c"]` (relative steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Qualifier {
    Exists(Vec<Step>),
    Eq(Vec<Step>, String),
}

/// A `where` conjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// `exists(p)` — some occurrence of `p` (bare qualifiers desugar here).
    Exists(PathExpr),
    /// `p = operand`.
    Eq(PathExpr, Operand),
}

/// Right-hand side of an equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    Literal(String),
    /// A path — an equality (join) edge in the query graph.
    Path(PathExpr),
}

/// What the `return` clause produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReturnExpr {
    /// `return $x/p` — the text values at the path (one flat sequence).
    Path(PathExpr),
    /// `return <r>{…}…</r>` — a constructed element per binding tuple.
    Element(ElemConstructor),
}

/// `<tag> content* </tag>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElemConstructor {
    pub tag: String,
    pub content: Vec<Content>,
    pub span: Span,
}

/// One content item of an element constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Content {
    /// `{$x/p}` — deep copies of the elements (or attributes) the path
    /// addresses, in document order.
    Path(PathExpr),
    /// A nested constructor.
    Element(ElemConstructor),
    /// `{for … return …}` — a nested FLWR evaluated per outer tuple;
    /// its bindings may reference outer variables.
    Query(Box<Query>),
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.root {
            Root::Doc(d) => write!(f, "doc(\"{d}\")")?,
            Root::Var(v) => write!(f, "${v}")?,
        }
        for step in &self.steps {
            match step.axis {
                Axis::Child => write!(f, "/")?,
                Axis::DescendantOrSelf => write!(f, "//")?,
            }
            match &step.test {
                NameTest::Name(n) => write!(f, "{n}")?,
                NameTest::Any => write!(f, "*")?,
            }
            for q in &step.qualifiers {
                write!(f, "[…]")?;
                let _ = q;
            }
        }
        Ok(())
    }
}

impl fmt::Display for ReturnExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReturnExpr::Path(p) => write!(f, "{p}"),
            ReturnExpr::Element(e) => write!(f, "{e}"),
        }
    }
}

impl fmt::Display for ElemConstructor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.tag)?;
        for item in &self.content {
            match item {
                Content::Path(p) => write!(f, "{{{p}}}")?,
                Content::Element(e) => write!(f, "{e}")?,
                Content::Query(_) => write!(f, "{{for …}}")?,
            }
        }
        write!(f, "</{}>", self.tag)
    }
}
