//! XQ abstract syntax.

use std::fmt;

/// A complete `for … where … return …` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    pub bindings: Vec<Binding>,
    pub conditions: Vec<Condition>,
    pub ret: PathExpr,
}

/// `$var in path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    pub var: String,
    pub path: PathExpr,
}

/// Where a path starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Root {
    /// `doc("name")`.
    Doc(String),
    /// `$var`.
    Var(String),
}

/// A path: root plus child/descendant steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathExpr {
    pub root: Root,
    pub steps: Vec<Step>,
}

impl PathExpr {
    pub fn var(name: impl Into<String>) -> Self {
        PathExpr {
            root: Root::Var(name.into()),
            steps: Vec::new(),
        }
    }

    /// True once no step carries a qualifier (the post-desugar invariant).
    pub fn is_desugared(&self) -> bool {
        self.steps.iter().all(|s| s.qualifiers.is_empty())
    }

    /// The tag names of the steps, if every step is a plain child step —
    /// the form the minimal engine evaluates directly.
    pub fn simple_tags(&self) -> Option<Vec<&str>> {
        self.steps
            .iter()
            .map(|s| match (&s.axis, &s.test) {
                (Axis::Child, NameTest::Name(n)) if s.qualifiers.is_empty() => Some(n.as_str()),
                _ => None,
            })
            .collect()
    }
}

/// One path step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    pub axis: Axis,
    pub test: NameTest,
    pub qualifiers: Vec<Qualifier>,
}

impl Step {
    pub fn child(name: impl Into<String>) -> Self {
        Step {
            axis: Axis::Child,
            test: NameTest::Name(name.into()),
            qualifiers: Vec::new(),
        }
    }
}

/// Step axis: `/` or `//`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    Child,
    DescendantOrSelf,
}

/// Step test: a tag name or `*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameTest {
    Name(String),
    Any,
}

/// A bracketed qualifier `[p]` or `[p = "c"]` (relative steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Qualifier {
    Exists(Vec<Step>),
    Eq(Vec<Step>, String),
}

/// A `where` conjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// `exists(p)` — some occurrence of `p` (bare qualifiers desugar here).
    Exists(PathExpr),
    /// `p = operand`.
    Eq(PathExpr, Operand),
}

/// Right-hand side of an equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    Literal(String),
    /// A path — an equality (join) edge in the query graph.
    Path(PathExpr),
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.root {
            Root::Doc(d) => write!(f, "doc(\"{d}\")")?,
            Root::Var(v) => write!(f, "${v}")?,
        }
        for step in &self.steps {
            match step.axis {
                Axis::Child => write!(f, "/")?,
                Axis::DescendantOrSelf => write!(f, "//")?,
            }
            match &step.test {
                NameTest::Name(n) => write!(f, "{n}")?,
                NameTest::Any => write!(f, "*")?,
            }
            for q in &step.qualifiers {
                write!(f, "[…]")?;
                let _ = q;
            }
        }
        Ok(())
    }
}
