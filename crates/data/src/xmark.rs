//! Deterministic XMark-shaped generator.
//!
//! XMark (Schmidt et al., VLDB 2002) models an auction site: a `site`
//! root over regional item listings, a category taxonomy, registered
//! people, and open/closed auctions that cross-reference items and
//! people through `@person`/`@item` id attributes. That reference
//! structure is what makes it the paper's join benchmark (KQ1–KQ4 are
//! XMark Q5/Q11/Q12/Q13). The shape here is a faithful subset of the
//! XMark DTD — enough depth for `*`/`//` patterns and enough id
//! vocabulary for equality joins — scaled by an item count instead of
//! the original's scaling factor.

use crate::Rng;
use vx_xml::{Document, Element};

const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

const COUNTRIES: [&str; 6] = [
    "United States",
    "Germany",
    "Japan",
    "Kenya",
    "Brazil",
    "Australia",
];

const EDUCATION: [&str; 4] = ["High School", "College", "Graduate School", "Other"];

/// An XMark-shaped document with `items` item listings spread over the
/// six regions, `items/2` people, `items/2` open auctions, and
/// `items/4` closed auctions. Same seed, same document, always.
pub fn xmark(seed: u64, items: usize) -> Document {
    let mut rng = Rng::new(seed);
    let items = items.max(2);
    let people = (items / 2).max(2);
    let opens = (items / 2).max(2);
    let closeds = (items / 4).max(1);
    let categories = (items / 20).max(2);

    let mut site = Element::new("site");
    site.children
        .push(gen_regions(&mut rng, items, categories).into_node());
    site.children
        .push(gen_categories(&mut rng, categories).into_node());
    site.children
        .push(gen_people(&mut rng, people, categories, opens).into_node());
    site.children
        .push(gen_open_auctions(&mut rng, opens, items, people).into_node());
    site.children
        .push(gen_closed_auctions(&mut rng, closeds, items, people).into_node());
    Document::from_root(site)
}

fn gen_regions(rng: &mut Rng, items: usize, categories: usize) -> Element {
    let mut regions = Element::new("regions");
    let mut region_elements: Vec<Element> = REGIONS.iter().map(|r| Element::new(*r)).collect();
    for i in 0..items {
        let region = rng.below(REGIONS.len() as u64) as usize;
        region_elements[region]
            .children
            .push(gen_item(rng, i, categories).into_node());
    }
    for region in region_elements {
        regions.children.push(region.into_node());
    }
    regions
}

fn gen_item(rng: &mut Rng, id: usize, categories: usize) -> Element {
    // "United States" is over-weighted so location filters (KQ1) stay
    // selective but never empty, as in the original distribution.
    let location = if rng.below(4) == 0 {
        COUNTRIES[0]
    } else {
        COUNTRIES[rng.below(COUNTRIES.len() as u64) as usize]
    };
    let mut item = Element::new("item").with_attr("id", format!("item{id}"));
    item.children.push(
        Element::new("location")
            .with_text(location.to_string())
            .into_node(),
    );
    item.children.push(
        Element::new("quantity")
            .with_text(format!("{}", rng.range(1, 5)))
            .into_node(),
    );
    item.children.push(
        Element::new("name")
            .with_text(crate::title(rng))
            .into_node(),
    );
    item.children.push(
        Element::new("payment")
            .with_text("Creditcard".to_string())
            .into_node(),
    );
    item.children.push(
        Element::new("description")
            .with_child(Element::new("text").with_text(crate::sentence(rng, 10)))
            .into_node(),
    );
    item.children
        .push(Element::new("shipping").with_text(ship(rng)).into_node());
    for _ in 0..rng.range(1, 2) {
        item.children.push(
            Element::new("incategory")
                .with_attr(
                    "category",
                    format!("category{}", rng.below(categories as u64)),
                )
                .into_node(),
        );
    }
    if rng.below(3) == 0 {
        item.children.push(
            Element::new("mailbox")
                .with_child(
                    Element::new("mail")
                        .with_child(Element::new("from").with_text(crate::capitalized(rng)))
                        .with_child(Element::new("to").with_text(crate::capitalized(rng)))
                        .with_child(Element::new("date").with_text(date(rng)))
                        .with_child(Element::new("text").with_text(crate::sentence(rng, 8))),
                )
                .into_node(),
        );
    }
    item
}

fn gen_categories(rng: &mut Rng, count: usize) -> Element {
    let mut categories = Element::new("categories");
    for i in 0..count {
        categories.children.push(
            Element::new("category")
                .with_attr("id", format!("category{i}"))
                .with_child(Element::new("name").with_text(crate::capitalized(rng)))
                .with_child(
                    Element::new("description")
                        .with_child(Element::new("text").with_text(crate::sentence(rng, 6))),
                )
                .into_node(),
        );
    }
    categories
}

fn gen_people(rng: &mut Rng, count: usize, categories: usize, opens: usize) -> Element {
    let mut people = Element::new("people");
    for i in 0..count {
        let mut person = Element::new("person").with_attr("id", format!("person{i}"));
        let name = format!("{} {}", crate::capitalized(rng), crate::capitalized(rng));
        person.children.push(
            Element::new("emailaddress")
                .with_text(format!("mailto:{}@example.net", rng.word(7)))
                .into_node(),
        );
        person
            .children
            .insert(0, Element::new("name").with_text(name).into_node());
        if rng.below(2) == 0 {
            person.children.push(
                Element::new("phone")
                    .with_text(format!(
                        "+{} ({}) {}",
                        rng.range(1, 99),
                        rng.range(10, 999),
                        rng.range(1_000_000, 9_999_999)
                    ))
                    .into_node(),
            );
        }
        if rng.below(2) == 0 {
            person.children.push(
                Element::new("address")
                    .with_child(Element::new("street").with_text(format!(
                        "{} {} St",
                        rng.range(1, 99),
                        crate::capitalized(rng)
                    )))
                    .with_child(Element::new("city").with_text(crate::capitalized(rng)))
                    .with_child(Element::new("country").with_text(
                        COUNTRIES[rng.below(COUNTRIES.len() as u64) as usize].to_string(),
                    ))
                    .with_child(
                        Element::new("zipcode").with_text(format!("{}", rng.range(10_000, 99_999))),
                    )
                    .into_node(),
            );
        }
        if rng.below(3) > 0 {
            let mut profile = Element::new("profile").with_attr("income", money(rng, 100_000));
            for _ in 0..rng.below(3) {
                profile.children.push(
                    Element::new("interest")
                        .with_attr(
                            "category",
                            format!("category{}", rng.below(categories as u64)),
                        )
                        .into_node(),
                );
            }
            if rng.below(2) == 0 {
                profile.children.push(
                    Element::new("education")
                        .with_text(EDUCATION[rng.below(4) as usize].to_string())
                        .into_node(),
                );
            }
            person.children.push(profile.into_node());
        }
        if rng.below(4) == 0 {
            person.children.push(
                Element::new("creditcard")
                    .with_text(format!(
                        "{} {} {} {}",
                        rng.range(1000, 9999),
                        rng.range(1000, 9999),
                        rng.range(1000, 9999),
                        rng.range(1000, 9999)
                    ))
                    .into_node(),
            );
        }
        if rng.below(4) == 0 {
            person.children.push(
                Element::new("watches")
                    .with_child(Element::new("watch").with_attr(
                        "open_auction",
                        format!("open_auction{}", rng.below(opens as u64)),
                    ))
                    .into_node(),
            );
        }
        people.children.push(person.into_node());
    }
    people
}

fn gen_open_auctions(rng: &mut Rng, count: usize, items: usize, people: usize) -> Element {
    let mut auctions = Element::new("open_auctions");
    for i in 0..count {
        let mut auction = Element::new("open_auction").with_attr("id", format!("open_auction{i}"));
        auction.children.push(
            Element::new("initial")
                .with_text(money(rng, 200))
                .into_node(),
        );
        if rng.below(2) == 0 {
            auction.children.push(
                Element::new("reserve")
                    .with_text(money(rng, 400))
                    .into_node(),
            );
        }
        for _ in 0..rng.below(4) {
            auction.children.push(
                Element::new("bidder")
                    .with_child(Element::new("date").with_text(date(rng)))
                    .with_child(
                        Element::new("personref")
                            .with_attr("person", format!("person{}", rng.below(people as u64))),
                    )
                    .with_child(Element::new("increase").with_text(money(rng, 50)))
                    .into_node(),
            );
        }
        auction.children.push(
            Element::new("current")
                .with_text(money(rng, 600))
                .into_node(),
        );
        auction.children.push(
            Element::new("itemref")
                .with_attr("item", format!("item{}", rng.below(items as u64)))
                .into_node(),
        );
        auction.children.push(
            Element::new("seller")
                .with_attr("person", format!("person{}", rng.below(people as u64)))
                .into_node(),
        );
        auction.children.push(
            Element::new("quantity")
                .with_text(format!("{}", rng.range(1, 5)))
                .into_node(),
        );
        auction.children.push(
            Element::new("type")
                .with_text(
                    if rng.below(2) == 0 {
                        "Regular"
                    } else {
                        "Featured"
                    }
                    .to_string(),
                )
                .into_node(),
        );
        auction.children.push(
            Element::new("interval")
                .with_child(Element::new("start").with_text(date(rng)))
                .with_child(Element::new("end").with_text(date(rng)))
                .into_node(),
        );
        auctions.children.push(auction.into_node());
    }
    auctions
}

fn gen_closed_auctions(rng: &mut Rng, count: usize, items: usize, people: usize) -> Element {
    let mut auctions = Element::new("closed_auctions");
    for _ in 0..count {
        auctions.children.push(
            Element::new("closed_auction")
                .with_child(
                    Element::new("seller")
                        .with_attr("person", format!("person{}", rng.below(people as u64))),
                )
                .with_child(
                    Element::new("buyer")
                        .with_attr("person", format!("person{}", rng.below(people as u64))),
                )
                .with_child(
                    Element::new("itemref")
                        .with_attr("item", format!("item{}", rng.below(items as u64))),
                )
                .with_child(Element::new("price").with_text(money(rng, 1000)))
                .with_child(Element::new("date").with_text(date(rng)))
                .with_child(Element::new("quantity").with_text(format!("{}", rng.range(1, 5))))
                .with_child(
                    Element::new("type").with_text(
                        if rng.below(2) == 0 {
                            "Regular"
                        } else {
                            "Featured"
                        }
                        .to_string(),
                    ),
                )
                .with_child(
                    Element::new("annotation")
                        .with_child(
                            Element::new("author")
                                .with_attr("person", format!("person{}", rng.below(people as u64))),
                        )
                        .with_child(
                            Element::new("description").with_child(
                                Element::new("text").with_text(crate::sentence(rng, 9)),
                            ),
                        ),
                )
                .into_node(),
        );
    }
    auctions
}

fn money(rng: &mut Rng, whole: u64) -> String {
    format!("{}.{:02}", rng.below(whole), rng.below(100))
}

fn date(rng: &mut Rng) -> String {
    format!(
        "{:02}/{:02}/{}",
        rng.range(1, 12),
        rng.range(1, 28),
        rng.range(1998, 2004)
    )
}

fn ship(rng: &mut Rng) -> String {
    match rng.below(3) {
        0 => "Will ship only within country".to_string(),
        1 => "Will ship internationally".to_string(),
        _ => "Buyer pays fixed shipping charges".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xmark_is_deterministic_and_shaped() {
        let a = xmark(5, 40);
        let b = xmark(5, 40);
        let opts = vx_xml::WriteOptions::compact();
        assert_eq!(
            vx_xml::write_document(&a, &opts),
            vx_xml::write_document(&b, &opts)
        );
        assert_eq!(a.root.name, "site");
        let sections: Vec<&str> = a.root.child_elements().map(|e| e.name.as_str()).collect();
        assert_eq!(
            sections,
            [
                "regions",
                "categories",
                "people",
                "open_auctions",
                "closed_auctions"
            ]
        );
        // Items are spread over the six regions and total the request.
        let regions = a.root.child("regions").unwrap();
        let total: usize = regions
            .child_elements()
            .map(|r| r.child_elements().count())
            .sum();
        assert_eq!(total, 40);
        // Every open auction's seller resolves to a generated person id.
        let people = a.root.child("people").unwrap().child_elements().count();
        for auction in a.root.child("open_auctions").unwrap().child_elements() {
            let seller = auction.child("seller").unwrap().attr("person").unwrap();
            let idx: usize = seller.strip_prefix("person").unwrap().parse().unwrap();
            assert!(idx < people);
        }
    }
}
