//! Deterministic TreeBank-shaped generator.
//!
//! The Penn TreeBank corpus is parsed English: every sentence is a parse
//! tree over a recursive nonterminal grammar (`S`, `NP`, `VP`, `PP`,
//! `SBAR`, …) with part-of-speech leaves holding the words. Because
//! vectors are keyed by *root-to-text tag paths*, the recursion makes
//! the path set explode — the paper reports 221,545 vectors for 54 MB of
//! TreeBank versus 368 for an 80 GB SkyServer export — which is exactly
//! why it is the stress case for path-partitioned stores. This generator
//! reproduces that character: a small probabilistic grammar, expanded
//! with a depth budget, yields thousands of distinct paths at bench
//! scale while staying fully deterministic per seed.

use crate::Rng;
use vx_xml::{Document, Element};

const DETS: [&str; 4] = ["the", "a", "this", "every"];
const PRPS: [&str; 4] = ["it", "he", "she", "they"];
const INS: [&str; 6] = ["in", "on", "of", "with", "under", "over"];
const CCS: [&str; 2] = ["and", "or"];

/// Noun/verb/adjective vocabularies are synthesized from an index so
/// their size (which controls join fan-out in TQ3-style queries) is an
/// explicit constant rather than a hand-written list.
const NOUNS: u64 = 400;
const VERBS: u64 = 120;
const ADJS: u64 = 80;

fn vocab(prefix: char, idx: u64) -> String {
    format!("{prefix}{idx}")
}

/// A TreeBank-shaped document: `FILE` root over `sentences` parse trees.
/// Same seed, same document, always.
pub fn treebank(seed: u64, sentences: usize) -> Document {
    let mut rng = Rng::new(seed);
    let mut file = Element::new("FILE");
    for _ in 0..sentences.max(1) {
        file.children.push(gen_s(&mut rng, 6).into_node());
    }
    Document::from_root(file)
}

/// S → NP VP PP?
fn gen_s(rng: &mut Rng, depth: u32) -> Element {
    let mut s = Element::new("S");
    s.children.push(gen_np(rng, depth).into_node());
    s.children.push(gen_vp(rng, depth).into_node());
    if depth > 0 && rng.below(4) == 0 {
        s.children.push(gen_pp(rng, depth - 1).into_node());
    }
    s
}

/// NP → DET? JJ* NN | NP PP | NP CC NP | PRP
fn gen_np(rng: &mut Rng, depth: u32) -> Element {
    let mut np = Element::new("NP");
    match if depth == 0 { 0 } else { rng.below(6) } {
        1 => {
            // Recursive attachment: NP → NP PP.
            np.children.push(gen_np(rng, depth - 1).into_node());
            np.children.push(gen_pp(rng, depth - 1).into_node());
        }
        2 => {
            // Coordination: NP → NP CC NP.
            np.children.push(gen_np(rng, depth - 1).into_node());
            np.children.push(
                Element::new("CC")
                    .with_text(CCS[rng.below(2) as usize].to_string())
                    .into_node(),
            );
            np.children.push(gen_np(rng, depth - 1).into_node());
        }
        3 => {
            np.children.push(
                Element::new("PRP")
                    .with_text(PRPS[rng.below(4) as usize].to_string())
                    .into_node(),
            );
        }
        _ => {
            // Flat NP: DET? JJ* NN.
            if rng.below(2) == 0 {
                np.children.push(
                    Element::new("DET")
                        .with_text(DETS[rng.below(4) as usize].to_string())
                        .into_node(),
                );
            }
            for _ in 0..rng.below(3) {
                np.children.push(
                    Element::new("JJ")
                        .with_text(vocab('j', rng.below(ADJS)))
                        .into_node(),
                );
            }
            np.children.push(
                Element::new("NN")
                    .with_text(vocab('n', rng.below(NOUNS)))
                    .into_node(),
            );
        }
    }
    np
}

/// VP → VB NP? PP? | VB SBAR
fn gen_vp(rng: &mut Rng, depth: u32) -> Element {
    let mut vp = Element::new("VP");
    vp.children.push(
        Element::new("VB")
            .with_text(vocab('v', rng.below(VERBS)))
            .into_node(),
    );
    if depth > 0 && rng.below(5) == 0 {
        // Clausal complement: the deep-recursion branch (`//` stress).
        vp.children.push(
            Element::new("SBAR")
                .with_child(Element::new("IN").with_text(INS[rng.below(6) as usize].to_string()))
                .with_child(gen_s(rng, depth - 1))
                .into_node(),
        );
        return vp;
    }
    if rng.below(3) > 0 {
        vp.children
            .push(gen_np(rng, depth.saturating_sub(1)).into_node());
    }
    if depth > 0 && rng.below(3) == 0 {
        vp.children.push(gen_pp(rng, depth - 1).into_node());
    }
    vp
}

/// PP → IN NP
fn gen_pp(rng: &mut Rng, depth: u32) -> Element {
    Element::new("PP")
        .with_child(Element::new("IN").with_text(INS[rng.below(6) as usize].to_string()))
        .with_child(gen_np(rng, depth.saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn treebank_is_deterministic() {
        let opts = vx_xml::WriteOptions::compact();
        assert_eq!(
            vx_xml::write_document(&treebank(9, 30), &opts),
            vx_xml::write_document(&treebank(9, 30), &opts)
        );
        assert_ne!(
            vx_xml::write_document(&treebank(10, 30), &opts),
            vx_xml::write_document(&treebank(9, 30), &opts)
        );
    }

    fn collect_paths(e: &Element, prefix: &str, out: &mut BTreeSet<String>) {
        let path = format!("{prefix}/{}", e.name);
        if e.children
            .iter()
            .any(|c| matches!(c, vx_xml::Node::Text(_)))
        {
            out.insert(path.clone());
        }
        for child in e.child_elements() {
            collect_paths(child, &path, out);
        }
    }

    #[test]
    fn paths_explode_with_recursion() {
        // The defining TreeBank property: distinct text paths grow far
        // beyond the tag vocabulary (12 tags here) because recursion
        // multiplies contexts.
        let doc = treebank(1, 400);
        let mut paths = BTreeSet::new();
        collect_paths(&doc.root, "", &mut paths);
        assert!(
            paths.len() > 200,
            "expected an exploding path set, got {}",
            paths.len()
        );
        // And every sentence is rooted the same way.
        assert!(doc.root.child_elements().all(|s| s.name == "S"));
    }
}
