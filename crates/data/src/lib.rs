//! `vx-data` — deterministic test-corpus generators (DESIGN.md row 8).
//!
//! The paper evaluates VX on four corpora: XMark (auction site, rich
//! references, the join benchmark), TreeBank (parsed English, recursive
//! grammar, the vector-explosion stress case), MedLine (bibliographic,
//! deep and regular), and SkyServer (astronomical, wide and flat). The
//! original dumps are not redistributable, so tests and benchmarks use
//! generators that mimic their shapes. Generation is fully
//! deterministic: the same seed always yields the same document, so
//! stores built from them are reproducible byte-for-byte.
//!
//! [`workload`] carries the paper's 13 benchmark queries (Table 2),
//! adapted to the supported XQ fragment.

mod treebank;
mod workload;
mod xmark;

pub use treebank::treebank;
pub use workload::{workload, QuerySpec};
pub use xmark::xmark;

use vx_xml::{Document, Element};

/// A deterministic xorshift64* PRNG. Not cryptographic; stable across
/// platforms and rust versions, which is all test data needs.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zeros fixed point.
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// A lowercase ASCII word of the given length.
    pub fn word(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (b'a' + self.below(26) as u8) as char)
            .collect()
    }
}

const LANGUAGES: [&str; 4] = ["ENG", "FRE", "GER", "SPA"];
const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// A MedLine-like document: `MedlineCitationSet` with `citations`
/// citation records, matching the tag vocabulary of the checked-in
/// `bench_results/stores/ml-*` stores.
pub fn medline(seed: u64, citations: usize) -> Document {
    let mut rng = Rng::new(seed);
    let mut set = Element::new("MedlineCitationSet");
    for i in 0..citations {
        let mut citation = Element::new("MedlineCitation");
        citation.children.push(
            Element::new("PMID")
                .with_text(format!("{}", 10_000_000 + i as u64))
                .into_node(),
        );
        let mut article = Element::new("Article");
        article.children.push(
            Element::new("ArticleTitle")
                .with_text(title(&mut rng))
                .into_node(),
        );
        if rng.below(4) > 0 {
            article.children.push(
                Element::new("Abstract")
                    .with_child(Element::new("AbstractText").with_text(sentence(&mut rng, 12)))
                    .into_node(),
            );
        }
        let mut authors = Element::new("AuthorList");
        for _ in 0..rng.range(1, 4) {
            authors.children.push(
                Element::new("Author")
                    .with_child(Element::new("LastName").with_text(capitalized(&mut rng)))
                    .with_child(Element::new("Initials").with_text(rng.word(2).to_uppercase()))
                    .into_node(),
            );
        }
        article.children.push(authors.into_node());
        citation.children.push(article.into_node());
        citation.children.push(
            Element::new("PubData")
                .with_child(Element::new("Year").with_text(format!("{}", rng.range(1970, 2004))))
                .with_child(
                    Element::new("Month").with_text(MONTHS[rng.below(12) as usize].to_string()),
                )
                .into_node(),
        );
        citation.children.push(
            Element::new("Language")
                .with_text(LANGUAGES[rng.below(4) as usize].to_string())
                .into_node(),
        );
        set.children.push(citation.into_node());
    }
    Document::from_root(set)
}

/// A SkyServer-like document: a flat `PhotoObjAll` table of `rows`
/// fixed-schema rows — the shape where vectors compress best (few paths,
/// very long vectors, heavy run-lengths in the skeleton).
pub fn skyserver(seed: u64, rows: usize) -> Document {
    let mut rng = Rng::new(seed);
    let mut table = Element::new("PhotoObjAll");
    for i in 0..rows {
        let row = Element::new("PhotoObj")
            .with_child(
                Element::new("objID").with_text(format!("{}", 587_000_000_000u64 + i as u64)),
            )
            .with_child(Element::new("ra").with_text(fixed_point(&mut rng, 360)))
            .with_child(Element::new("dec").with_text(fixed_point(&mut rng, 90)))
            .with_child(Element::new("type").with_text(format!("{}", rng.below(7))))
            .with_child(Element::new("u").with_text(fixed_point(&mut rng, 30)))
            .with_child(Element::new("g").with_text(fixed_point(&mut rng, 30)))
            .with_child(Element::new("r").with_text(fixed_point(&mut rng, 30)));
        table.children.push(row.into_node());
    }
    Document::from_root(table)
}

pub(crate) fn title(rng: &mut Rng) -> String {
    let words = rng.range(3, 8);
    let mut out = capitalized(rng);
    for _ in 1..words {
        let len = rng.range(3, 9) as usize;
        out.push(' ');
        out.push_str(&rng.word(len));
    }
    out
}

pub(crate) fn sentence(rng: &mut Rng, words: u64) -> String {
    let mut out = capitalized(rng);
    for _ in 1..words {
        let len = rng.range(2, 10) as usize;
        out.push(' ');
        out.push_str(&rng.word(len));
    }
    out.push('.');
    out
}

pub(crate) fn capitalized(rng: &mut Rng) -> String {
    let len = rng.range(4, 9) as usize;
    let w = rng.word(len);
    let mut chars = w.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().chain(chars).collect(),
        None => w,
    }
}

/// A non-negative decimal with 5 fractional digits, below `whole`.
fn fixed_point(rng: &mut Rng, whole: u64) -> String {
    format!("{}.{:05}", rng.below(whole), rng.below(100_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = medline(7, 5);
        let b = medline(7, 5);
        let opts = vx_xml::WriteOptions::compact();
        assert_eq!(
            vx_xml::write_document(&a, &opts),
            vx_xml::write_document(&b, &opts)
        );
        assert_ne!(
            vx_xml::write_document(&medline(8, 5), &opts),
            vx_xml::write_document(&a, &opts)
        );
    }

    #[test]
    fn medline_has_expected_shape() {
        let doc = medline(1, 10);
        assert_eq!(doc.root.name, "MedlineCitationSet");
        assert_eq!(doc.root.child_elements().count(), 10);
        let citation = doc.root.child("MedlineCitation").unwrap();
        assert!(citation.child("PMID").is_some());
        assert!(citation.child("Language").is_some());
    }

    #[test]
    fn skyserver_is_flat_and_regular() {
        let doc = skyserver(2, 25);
        assert_eq!(doc.root.child_elements().count(), 25);
        for row in doc.root.child_elements() {
            assert_eq!(row.child_elements().count(), 7);
        }
    }
}
