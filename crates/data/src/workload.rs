//! The paper's query workload (Table 2), adapted to the XQ[*,//]
//! fragment this engine evaluates.
//!
//! The paper benchmarks 13 queries over its four corpora: KQ1–KQ4 are
//! XMark Q5/Q11/Q12/Q13, TQ1–TQ3 and MQ1–MQ2 come from its Appendix A,
//! SQ1–SQ4 are SkyServer Q3/Q6/SX6/SX13. Our fragment has no arithmetic,
//! ordering comparisons, or aggregation, so each query is adapted to the
//! nearest equality/exists form that exercises the same evaluation
//! mechanism — the mapping is recorded per query in
//! [`QuerySpec::adaptation`]. Every query is differentially tested
//! against the naive DOM oracle (`crates/engine/tests/differential.rs`)
//! and timed by the `table3` bench binary.

/// One benchmark query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpec {
    /// Paper name: KQ1–KQ4, TQ1–TQ3, MQ1–MQ2, SQ1–SQ4.
    pub name: &'static str,
    /// The `doc("…")` name it queries: "xk", "tb", "ml", or "ss".
    pub dataset: &'static str,
    /// What the paper's query asks, and how ours adapts it.
    pub adaptation: &'static str,
    /// The XQ source, within the supported fragment.
    pub xq: &'static str,
}

/// The 13-query workload in paper order.
pub fn workload() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            name: "KQ1",
            dataset: "xk",
            adaptation: "XMark Q5 counts sold items above a price; without \
                         arithmetic we keep the selective single-filter scan \
                         over region items (location equality).",
            xq: r#"for $i in doc("xk")/site/regions/*/item
                   where $i/location = "United States"
                   return $i/name"#,
        },
        QuerySpec {
            name: "KQ2",
            dataset: "xk",
            adaptation: "XMark Q11 joins people with open auctions; ours joins \
                         on the seller reference attribute instead of the \
                         income arithmetic factor.",
            xq: r#"for $p in doc("xk")/site/people/person,
                       $o in doc("xk")/site/open_auctions/open_auction
                   where $o/seller/@person = $p/@id
                   return $p/name"#,
        },
        QuerySpec {
            name: "KQ3",
            dataset: "xk",
            adaptation: "XMark Q12 is Q11 plus a person filter; ours filters \
                         the joined person by country.",
            xq: r#"for $p in doc("xk")/site/people/person,
                       $a in doc("xk")/site/closed_auctions/closed_auction
                   where $a/buyer/@person = $p/@id
                     and $p/address/country = "United States"
                   return $a/price"#,
        },
        QuerySpec {
            name: "KQ4",
            dataset: "xk",
            adaptation: "XMark Q13 reconstructs region items; ours rebuilds a \
                         result element per closed auction (the \
                         reconstruction-cost query).",
            xq: r#"for $a in doc("xk")/site/closed_auctions/closed_auction
                   return <sold>{$a/price}{$a/date}</sold>"#,
        },
        QuerySpec {
            name: "TQ1",
            dataset: "tb",
            adaptation: "Appendix A TQ1: direct child navigation over \
                         sentences (top-level subject nouns).",
            xq: r#"for $s in doc("tb")/FILE/S return $s/NP/NN"#,
        },
        QuerySpec {
            name: "TQ2",
            dataset: "tb",
            adaptation: "Appendix A TQ2: `//` under `//` over the recursive \
                         grammar — the many-vector stress query.",
            xq: r#"for $v in doc("tb")//VP return $v//NN"#,
        },
        QuerySpec {
            name: "TQ3",
            dataset: "tb",
            adaptation: "Appendix A TQ3: a value join between descendant \
                         phrase sets (nouns appearing both as direct NP heads \
                         and inside prepositional phrases).",
            xq: r#"for $a in doc("tb")//NP, $b in doc("tb")//PP
                   where $a/NN = $b/NP/NN
                   return $a/NN"#,
        },
        QuerySpec {
            name: "MQ1",
            dataset: "ml",
            adaptation: "Appendix A MQ1: language-filtered title projection.",
            xq: r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation
                   where $c/Language = "ENG"
                   return $c/Article/ArticleTitle"#,
        },
        QuerySpec {
            name: "MQ2",
            dataset: "ml",
            adaptation: "Appendix A MQ2: the citation self-join on publication \
                         year, restricted on one side — the worst-case VX \
                         query in the paper.",
            xq: r#"for $a in doc("ml")//MedlineCitation,
                       $b in doc("ml")//MedlineCitation
                   where $a/Language = "FRE"
                     and $a/PubData/Year = $b/PubData/Year
                   return $b/PMID"#,
        },
        QuerySpec {
            name: "SQ1",
            dataset: "ss",
            adaptation: "SkyServer Q3 filters on object class; `type` equality \
                         replaces the magnitude range predicate.",
            xq: r#"for $p in doc("ss")/PhotoObjAll/PhotoObj
                   where $p/type = "3"
                   return $p/objID"#,
        },
        QuerySpec {
            name: "SQ2",
            dataset: "ss",
            adaptation: "SkyServer Q6 projects several columns of the filtered \
                         rows; ours rebuilds an element per matching row.",
            xq: r#"for $p in doc("ss")/PhotoObjAll/PhotoObj
                   where $p/type = "6"
                   return <obj>{$p/ra}{$p/dec}</obj>"#,
        },
        QuerySpec {
            name: "SQ3",
            dataset: "ss",
            adaptation: "SkyServer SX6 is an index-nested-loop self-join; ours \
                         hash-joins the table with itself on the object id \
                         key.",
            xq: r#"for $a in doc("ss")//PhotoObj, $b in doc("ss")//PhotoObj
                   where $a/objID = $b/objID
                   return $b/ra"#,
        },
        QuerySpec {
            name: "SQ4",
            dataset: "ss",
            adaptation: "SkyServer SX13 combines existence and class \
                         predicates over the wide table.",
            xq: r#"for $p in doc("ss")/PhotoObjAll/PhotoObj
                   where exists($p/u) and $p/type = "0"
                   return $p/objID"#,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_the_papers_thirteen() {
        let w = workload();
        assert_eq!(w.len(), 13);
        let names: Vec<&str> = w.iter().map(|q| q.name).collect();
        assert_eq!(
            names,
            [
                "KQ1", "KQ2", "KQ3", "KQ4", "TQ1", "TQ2", "TQ3", "MQ1", "MQ2", "SQ1", "SQ2", "SQ3",
                "SQ4"
            ]
        );
        for q in &w {
            assert!(["xk", "tb", "ml", "ss"].contains(&q.dataset), "{}", q.name);
            assert!(
                q.xq.contains(&format!("doc(\"{}\")", q.dataset)),
                "{}",
                q.name
            );
            // Every query parses within the XQ grammar.
            vx_xquery::parse_query(q.xq)
                .unwrap_or_else(|e| panic!("{}: does not parse: {e}", q.name));
        }
    }
}
