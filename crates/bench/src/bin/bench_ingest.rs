//! Ingest-throughput micro-bench: docs/sec and MB/s for the DOM and
//! streaming ingest paths over generated MedLine- and SkyServer-shaped
//! corpora, emitted as `BENCH_ingest.json`.
//!
//! ```text
//! bench_ingest [--ml N,N,...] [--ss N,N,...] [--iters K] [--out FILE]
//! ```
//!
//! Defaults: `--ml 200,1000 --ss 500,2500 --iters 3 --out BENCH_ingest.json`.

use std::path::PathBuf;
use std::process::exit;
use vx_bench::{time_append, time_ingest, StoreSizes};
use vx_core::json::{to_string_pretty, Json};
use vx_xml::WriteOptions;

struct Config {
    medline_sizes: Vec<usize>,
    skyserver_sizes: Vec<usize>,
    iters: u32,
    out: PathBuf,
}

fn parse_sizes(flag: &str, value: &str) -> Vec<usize> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bench_ingest: bad {flag} size `{s}`");
                exit(1);
            })
        })
        .collect()
}

fn parse_args() -> Config {
    let mut config = Config {
        medline_sizes: vec![200, 1000],
        skyserver_sizes: vec![500, 2500],
        iters: 3,
        out: PathBuf::from("BENCH_ingest.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("bench_ingest: {flag} needs a value");
                exit(1);
            })
        };
        match flag.as_str() {
            "--ml" => config.medline_sizes = parse_sizes("--ml", &value("--ml")),
            "--ss" => config.skyserver_sizes = parse_sizes("--ss", &value("--ss")),
            "--iters" => {
                config.iters = value("--iters").parse().unwrap_or_else(|_| {
                    eprintln!("bench_ingest: bad --iters value");
                    exit(1);
                })
            }
            "--out" => config.out = PathBuf::from(value("--out")),
            other => {
                eprintln!("bench_ingest: unknown flag `{other}`");
                eprintln!(
                    "usage: bench_ingest [--ml N,N,...] [--ss N,N,...] [--iters K] [--out FILE]"
                );
                exit(1);
            }
        }
    }
    config
}

fn main() {
    let config = parse_args();
    let scratch = std::env::temp_dir().join(format!("vx-bench-ingest-{}", std::process::id()));
    let write_opts = WriteOptions::compact();

    let mut corpora: Vec<(&str, usize, vx_xml::Document)> = Vec::new();
    for &n in &config.medline_sizes {
        corpora.push(("medline", n, vx_data::medline(42, n)));
    }
    for &n in &config.skyserver_sizes {
        corpora.push(("skyserver", n, vx_data::skyserver(42, n)));
    }

    let mut runs = Vec::new();
    for (corpus, records, doc) in &corpora {
        let xml = vx_xml::write_document(doc, &write_opts);
        let dir = scratch.join(format!("{corpus}-{records}"));
        let timing = match time_ingest(&dir, &xml, config.iters) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_ingest: {corpus}-{records}: {e}");
                exit(2);
            }
        };
        let mb = timing.input_bytes as f64 / 1_000_000.0;
        println!(
            "{corpus:>9} {records:>6} records  {:>8.3} MB  \
             dom {:>8.1} rec/s {:>7.2} MB/s  stream {:>8.1} rec/s {:>7.2} MB/s  \
             (pipeline {:.3}s + write {:.3}s, {} spill pages)",
            mb,
            *records as f64 / timing.dom_secs,
            mb / timing.dom_secs,
            *records as f64 / timing.stream_secs,
            mb / timing.stream_secs,
            timing.pipeline_secs,
            timing.write_secs,
            timing.spill_pages,
        );
        // Append path: journal a ~5% batch into the WAL over the freshly
        // ingested base, reopen through replay, and compact it away.
        let extra_records = (*records / 20).max(1);
        let extra = match *corpus {
            "medline" => vx_data::medline(43, extra_records),
            _ => vx_data::skyserver(43, extra_records),
        };
        let batch = vec![vx_xml::write_document(&extra, &write_opts).into_bytes()];
        let append_dir = scratch.join(format!("{corpus}-{records}-append"));
        let append = match time_append(&append_dir, &xml, &batch, config.iters) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_ingest: {corpus}-{records} append: {e}");
                exit(2);
            }
        };
        println!(
            "{:>9} {extra_records:>6} records  {:>8.3} MB  \
             wal {:>8.1} rec/s ({:.4}s{})  reopen {:.4}s  compact {:.4}s",
            "+append",
            append.append_bytes as f64 / 1_000_000.0,
            extra_records as f64 / append.append_secs,
            append.append_secs,
            if append.synced { "" } else { ", unsynced" },
            append.reopen_secs,
            append.compact_secs,
        );

        // Both ingest paths leave their stores behind; the streaming one
        // carries the persisted structural index like any other save.
        let sizes = StoreSizes::measure(&dir.join("stream")).unwrap_or_else(|e| {
            eprintln!("bench_ingest: {corpus}-{records}: measuring store: {e}");
            exit(2);
        });

        runs.push(Json::Object(vec![
            ("corpus".into(), Json::Str(corpus.to_string())),
            ("records".into(), Json::Num(*records as f64)),
            ("input_bytes".into(), Json::Num(timing.input_bytes as f64)),
            ("store_bytes".into(), Json::Num(sizes.total() as f64)),
            ("index_bytes".into(), Json::Num(sizes.index_bytes as f64)),
            ("dom_secs".into(), Json::Num(timing.dom_secs)),
            ("stream_secs".into(), Json::Num(timing.stream_secs)),
            (
                "dom_records_per_sec".into(),
                Json::Num(*records as f64 / timing.dom_secs),
            ),
            (
                "stream_records_per_sec".into(),
                Json::Num(*records as f64 / timing.stream_secs),
            ),
            ("dom_mb_per_sec".into(), Json::Num(mb / timing.dom_secs)),
            (
                "stream_mb_per_sec".into(),
                Json::Num(mb / timing.stream_secs),
            ),
            // Streaming-path phase split (best repetition) and the
            // deterministic pipeline / spill-pool tallies.
            (
                "stream_phases".into(),
                Json::Object(vec![
                    ("pipeline_secs".into(), Json::Num(timing.pipeline_secs)),
                    ("write_secs".into(), Json::Num(timing.write_secs)),
                ]),
            ),
            (
                "pipeline".into(),
                Json::Object(vec![
                    ("events".into(), Json::Num(timing.events as f64)),
                    ("elements".into(), Json::Num(timing.elements as f64)),
                    ("values".into(), Json::Num(timing.values as f64)),
                ]),
            ),
            (
                "spill_pool".into(),
                Json::Object(vec![
                    ("spill_pages".into(), Json::Num(timing.spill_pages as f64)),
                    ("pager_hits".into(), Json::Num(timing.pager_hits as f64)),
                    ("pager_misses".into(), Json::Num(timing.pager_misses as f64)),
                    (
                        "pager_evictions".into(),
                        Json::Num(timing.pager_evictions as f64),
                    ),
                ]),
            ),
            ("spill_pages".into(), Json::Num(timing.spill_pages as f64)),
            // Append-path row: WAL journaling, replay-on-open, and
            // compaction cost for a ~5% batch over this base corpus.
            (
                "append".into(),
                Json::Object(vec![
                    ("records".into(), Json::Num(extra_records as f64)),
                    ("docs".into(), Json::Num(append.append_docs as f64)),
                    ("batch_bytes".into(), Json::Num(append.append_bytes as f64)),
                    ("wal_bytes".into(), Json::Num(append.wal_bytes as f64)),
                    ("append_secs".into(), Json::Num(append.append_secs)),
                    ("reopen_secs".into(), Json::Num(append.reopen_secs)),
                    ("compact_secs".into(), Json::Num(append.compact_secs)),
                    (
                        "append_records_per_sec".into(),
                        Json::Num(extra_records as f64 / append.append_secs),
                    ),
                    ("synced".into(), Json::Bool(append.synced)),
                ]),
            ),
        ]));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let report = Json::Object(vec![
        ("bench".into(), Json::Str("ingest".into())),
        ("iters".into(), Json::Num(config.iters as f64)),
        ("runs".into(), Json::Array(runs)),
    ]);
    if let Err(e) = std::fs::write(&config.out, to_string_pretty(&report)) {
        eprintln!("bench_ingest: writing {}: {e}", config.out.display());
        exit(2);
    }
    println!("wrote {}", config.out.display());
}
