//! Table 3 — cold evaluation times for the paper's 13-query workload
//! over the four bench corpora, emitted as `BENCH_table3.json`.
//!
//! ```text
//! table3 [--xk N] [--tb N] [--ml N] [--ss N] [--iters K] [--out FILE]
//! ```
//!
//! Scales default from `BenchScales::DEFAULT`, overridable by the
//! `VX_BENCH_XK`/`VX_BENCH_TB`/`VX_BENCH_ML`/`VX_BENCH_SS` environment
//! and then by flags; `--iters` (default 3, env `VX_BENCH_ITERS`) sets
//! the repetitions per query. Every repetition re-opens the store from
//! disk, so no decoded skeleton or vector state survives between runs —
//! "process-cold". Only the VX engine is timed: the paper's four
//! comparison systems exist here as interface stubs (`vx-baselines`),
//! so the comparative rows of the paper's table are out of scope until
//! those stand-ins are rebuilt (see ROADMAP.md).

use std::path::PathBuf;
use std::process::exit;
use vx_bench::{
    build_corpus_store, profile_json, profile_query, time_query, BenchScales, DATASETS,
};
use vx_core::json::{to_string_pretty, Json};

struct Config {
    scales: BenchScales,
    iters: u32,
    out: PathBuf,
}

fn parse_args() -> Config {
    let mut config = Config {
        scales: BenchScales::from_env(),
        iters: std::env::var("VX_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3),
        out: PathBuf::from("BENCH_table3.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("table3: {flag} needs a value");
                exit(2);
            })
        };
        let parse_num = |flag: &str, v: String| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("table3: bad {flag} value `{v}`");
                exit(2);
            })
        };
        match flag.as_str() {
            "--xk" => config.scales.xk_items = parse_num("--xk", value("--xk")),
            "--tb" => config.scales.tb_sentences = parse_num("--tb", value("--tb")),
            "--ml" => config.scales.ml_citations = parse_num("--ml", value("--ml")),
            "--ss" => config.scales.ss_rows = parse_num("--ss", value("--ss")),
            "--iters" => config.iters = parse_num("--iters", value("--iters")) as u32,
            "--out" => config.out = PathBuf::from(value("--out")),
            other => {
                eprintln!("table3: unknown flag `{other}`");
                eprintln!(
                    "usage: table3 [--xk N] [--tb N] [--ml N] [--ss N] [--iters K] [--out FILE]"
                );
                exit(2);
            }
        }
    }
    config
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{:.0}\u{00b5}s", secs * 1e6)
    }
}

fn main() {
    let config = parse_args();
    let scratch = std::env::temp_dir().join(format!("vx-table3-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Build all four stores once; queries then open them cold per rep.
    let mut store_rows = Vec::new();
    for dataset in DATASETS {
        let records = config.scales.records(dataset);
        let build =
            build_corpus_store(&scratch.join(dataset), dataset, records).unwrap_or_else(|e| {
                eprintln!("table3: building {dataset}: {e}");
                exit(1);
            });
        println!(
            "built {dataset:>2}: {:>8} records, {:>9.2} MB in {:.2}s",
            records,
            build.input_bytes as f64 / 1e6,
            build.ingest_secs
        );
        store_rows.push(Json::Object(vec![
            ("dataset".into(), Json::Str(dataset.into())),
            ("records".into(), Json::Num(records as f64)),
            ("input_bytes".into(), Json::Num(build.input_bytes as f64)),
            ("ingest_secs".into(), Json::Num(build.ingest_secs)),
        ]));
    }

    let mut query_rows = Vec::new();
    for spec in vx_data::workload() {
        let dir = scratch.join(spec.dataset);
        let timing = time_query(&dir, spec.dataset, spec.xq, config.iters).unwrap_or_else(|e| {
            eprintln!("table3: {}: {e}", spec.name);
            exit(1);
        });
        // One extra instrumented repetition for the per-operation
        // breakdown; the timed repetitions above stay unprofiled so
        // best/mean numbers carry no instrumentation overhead.
        let (profile_card, profile) =
            profile_query(&dir, spec.dataset, spec.xq).unwrap_or_else(|e| {
                eprintln!("table3: {} (profile): {e}", spec.name);
                exit(1);
            });
        if profile_card != timing.cardinality {
            eprintln!(
                "table3: {}: profiled run returned {profile_card} results, timed runs {}",
                spec.name, timing.cardinality
            );
            exit(1);
        }
        println!(
            "{:>3} ({:>2})  best {:>9}  mean {:>9}  open {:>9}  {:>9} results",
            spec.name,
            spec.dataset,
            human(timing.best_secs),
            human(timing.mean_secs),
            human(timing.open_secs),
            timing.cardinality,
        );
        query_rows.push(Json::Object(vec![
            ("query".into(), Json::Str(spec.name.into())),
            ("dataset".into(), Json::Str(spec.dataset.into())),
            ("cardinality".into(), Json::Num(timing.cardinality as f64)),
            ("open_secs".into(), Json::Num(timing.open_secs)),
            ("best_secs".into(), Json::Num(timing.best_secs)),
            ("mean_secs".into(), Json::Num(timing.mean_secs)),
            ("profile".into(), profile_json(&profile)),
        ]));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let report = Json::Object(vec![
        ("bench".into(), Json::Str("table3".into())),
        ("seed".into(), Json::Num(42.0)),
        ("iters".into(), Json::Num(f64::from(config.iters))),
        (
            "default_scale".into(),
            Json::Bool(config.scales.is_default()),
        ),
        (
            "cold".into(),
            Json::Str(
                "store fully re-decoded from disk before every repetition; \
                 OS page cache not dropped (unprivileged harness)"
                    .into(),
            ),
        ),
        ("stores".into(), Json::Array(store_rows)),
        ("queries".into(), Json::Array(query_rows)),
    ]);
    if let Err(e) = std::fs::write(&config.out, to_string_pretty(&report)) {
        eprintln!("table3: writing {}: {e}", config.out.display());
        exit(1);
    }
    println!("wrote {}", config.out.display());
}
