//! Table 1 — dataset and store statistics for the four bench corpora,
//! emitted as `BENCH_table1.json` and asserted against the paper's shape
//! claims.
//!
//! ```text
//! table1 [--xk N] [--tb N] [--ml N] [--ss N] [--out FILE]
//! ```
//!
//! Scales default from `BenchScales::DEFAULT`, overridable by the
//! `VX_BENCH_XK`/`VX_BENCH_TB`/`VX_BENCH_ML`/`VX_BENCH_SS` environment
//! (the CI smoke configuration) and then by flags. Two shape checks are
//! scale-free and always enforced (SkyServer's skeleton does not grow
//! with rows; TreeBank shatters into more vectors than any other
//! corpus); the 5x vector explosion and the node/skeleton
//! compression-ratio ordering are additionally enforced at the default
//! scale, where the committed numbers live.

use std::path::PathBuf;
use std::process::exit;
use vx_bench::{build_corpus_store, BenchScales, StoreSizes, DATASETS};
use vx_core::json::{to_string_pretty, Json};

struct Config {
    scales: BenchScales,
    out: PathBuf,
}

fn parse_args() -> Config {
    let mut config = Config {
        scales: BenchScales::from_env(),
        out: PathBuf::from("BENCH_table1.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("table1: {flag} needs a value");
                exit(2);
            })
        };
        let parse_scale = |flag: &str, v: String| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("table1: bad {flag} value `{v}`");
                exit(2);
            })
        };
        match flag.as_str() {
            "--xk" => config.scales.xk_items = parse_scale("--xk", value("--xk")),
            "--tb" => config.scales.tb_sentences = parse_scale("--tb", value("--tb")),
            "--ml" => config.scales.ml_citations = parse_scale("--ml", value("--ml")),
            "--ss" => config.scales.ss_rows = parse_scale("--ss", value("--ss")),
            "--out" => config.out = PathBuf::from(value("--out")),
            other => {
                eprintln!("table1: unknown flag `{other}`");
                eprintln!("usage: table1 [--xk N] [--tb N] [--ml N] [--ss N] [--out FILE]");
                exit(2);
            }
        }
    }
    config
}

struct Row {
    dataset: &'static str,
    records: usize,
    input_bytes: u64,
    node_count: u64,
    text_bytes: u64,
    skeleton_nodes: usize,
    names: usize,
    vectors: usize,
    sizes: StoreSizes,
    ingest_secs: f64,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.node_count as f64 / self.skeleton_nodes as f64
    }
}

fn measure(dir: &std::path::Path, dataset: &'static str, records: usize) -> Row {
    let build = build_corpus_store(dir, dataset, records).unwrap_or_else(|e| {
        eprintln!("table1: building {dataset}: {e}");
        exit(1);
    });
    // Skeleton statistics come from the persisted store, not the
    // in-memory build — the table describes what is on disk.
    let skeleton_bytes = std::fs::read(dir.join("skeleton.vxsk")).unwrap_or_else(|e| {
        eprintln!("table1: {dataset}: reading skeleton: {e}");
        exit(1);
    });
    let (skeleton, _root) = vx_skeleton::read(&skeleton_bytes).unwrap_or_else(|e| {
        eprintln!("table1: {dataset}: decoding skeleton: {e}");
        exit(1);
    });
    let sizes = StoreSizes::measure(dir).unwrap_or_else(|e| {
        eprintln!("table1: {dataset}: measuring store: {e}");
        exit(1);
    });
    Row {
        dataset,
        records,
        input_bytes: build.input_bytes,
        node_count: build.catalog.node_count,
        text_bytes: build.catalog.text_bytes,
        skeleton_nodes: skeleton.len(),
        names: skeleton.names().len(),
        vectors: build.catalog.vectors.len(),
        sizes,
        ingest_secs: build.ingest_secs,
    }
}

fn main() {
    let config = parse_args();
    let scratch = std::env::temp_dir().join(format!("vx-table1-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut rows = Vec::new();
    for dataset in DATASETS {
        let records = config.scales.records(dataset);
        let row = measure(&scratch.join(dataset), dataset, records);
        println!(
            "{:>2}  {:>8} records  {:>9.2} MB  {:>10} nodes  {:>7} skel. nodes ({:>9.1}x)  \
             {:>5} vectors  {:>9.2} MB store",
            row.dataset,
            row.records,
            row.input_bytes as f64 / 1e6,
            row.node_count,
            row.skeleton_nodes,
            row.ratio(),
            row.vectors,
            row.sizes.total() as f64 / 1e6,
        );
        rows.push(row);
    }

    // Scale-free check 1: SkyServer's skeleton is constant-size in the
    // row count (Fig. 2(c)) — rebuild at half scale and compare.
    let half_rows = (config.scales.ss_rows / 2).max(1);
    let ss_half = measure(&scratch.join("ss-half"), "ss", half_rows);
    let ss = rows.iter().find(|r| r.dataset == "ss").unwrap();
    let ss_constant = ss_half.skeleton_nodes == ss.skeleton_nodes;

    // Scale-free check 2: TreeBank shatters into more vectors than any
    // other corpus (the paper's 221,545 vs at most 410). The recursion
    // needs room to unfold, so the full 5x explosion is only required at
    // the default scale.
    let tb = rows.iter().find(|r| r.dataset == "tb").unwrap();
    let max_other = rows
        .iter()
        .filter(|r| r.dataset != "tb")
        .map(|r| r.vectors)
        .max()
        .unwrap();
    let tb_most = tb.vectors > max_other;
    let tb_explodes = tb.vectors > 5 * max_other;

    // Default-scale check: the node/skeleton compression-ratio ordering
    // TB < XK < ML < SS (paper: 15 < 23 < 61 << 14e6). Tiny smoke scales
    // distort the ratios, so this is only enforced where the committed
    // numbers are produced.
    let ratio = |d: &str| rows.iter().find(|r| r.dataset == d).unwrap().ratio();
    let ratio_ordered =
        ratio("tb") < ratio("xk") && ratio("xk") < ratio("ml") && ratio("ml") < ratio("ss");

    let _ = std::fs::remove_dir_all(&scratch);

    let checks = [
        ("ss_skeleton_constant_in_rows", ss_constant, true),
        ("tb_most_vectors", tb_most, true),
        (
            "tb_vector_explosion_5x",
            tb_explodes,
            config.scales.is_default(),
        ),
        (
            "compression_ratio_ordering_tb_xk_ml_ss",
            ratio_ordered,
            config.scales.is_default(),
        ),
    ];
    let mut failed = false;
    for (name, pass, enforced) in checks {
        let status = if pass {
            "ok"
        } else if enforced {
            failed = true;
            "FAILED"
        } else {
            "skipped (non-default scale)"
        };
        println!("check {name}: {status}");
    }

    let json_rows = rows
        .iter()
        .map(|r| {
            Json::Object(vec![
                ("dataset".into(), Json::Str(r.dataset.into())),
                ("records".into(), Json::Num(r.records as f64)),
                ("input_bytes".into(), Json::Num(r.input_bytes as f64)),
                ("node_count".into(), Json::Num(r.node_count as f64)),
                ("text_bytes".into(), Json::Num(r.text_bytes as f64)),
                ("skeleton_nodes".into(), Json::Num(r.skeleton_nodes as f64)),
                ("skeleton_names".into(), Json::Num(r.names as f64)),
                ("vectors".into(), Json::Num(r.vectors as f64)),
                ("compression_ratio".into(), Json::Num(r.ratio())),
                (
                    "skeleton_bytes".into(),
                    Json::Num(r.sizes.skeleton_bytes as f64),
                ),
                (
                    "vector_bytes".into(),
                    Json::Num(r.sizes.vector_bytes as f64),
                ),
                (
                    "catalog_bytes".into(),
                    Json::Num(r.sizes.catalog_bytes as f64),
                ),
                ("index_bytes".into(), Json::Num(r.sizes.index_bytes as f64)),
                ("store_bytes".into(), Json::Num(r.sizes.total() as f64)),
                ("ingest_secs".into(), Json::Num(r.ingest_secs)),
            ])
        })
        .collect();
    let json_checks = checks
        .iter()
        .map(|(name, pass, enforced)| {
            Json::Object(vec![
                ("name".into(), Json::Str((*name).into())),
                ("pass".into(), Json::Bool(*pass)),
                ("enforced".into(), Json::Bool(*enforced)),
            ])
        })
        .collect();
    let report = Json::Object(vec![
        ("bench".into(), Json::Str("table1".into())),
        ("seed".into(), Json::Num(42.0)),
        (
            "default_scale".into(),
            Json::Bool(config.scales.is_default()),
        ),
        ("rows".into(), Json::Array(json_rows)),
        ("checks".into(), Json::Array(json_checks)),
    ]);
    if let Err(e) = std::fs::write(&config.out, to_string_pretty(&report)) {
        eprintln!("table1: writing {}: {e}", config.out.display());
        exit(1);
    }
    println!("wrote {}", config.out.display());
    if failed {
        eprintln!("table1: a shape check failed (see above)");
        exit(1);
    }
}
