//! `vx-bench` — measurement harness (DESIGN.md row 10).
//!
//! Carries size accounting for a store directory, the ingest-throughput
//! stopwatch behind the `bench_ingest` binary (`BENCH_ingest.json`), and
//! the paper's evaluation tables: `table1` measures dataset/store
//! statistics over all four corpora (`BENCH_table1.json`), `table3`
//! measures cold query times for the 13-query workload
//! (`BENCH_table3.json`). EXPERIMENTS.md is written from those files.

use std::path::Path;
use std::time::Instant;
use vx_core::json::Json;
use vx_core::{CoreError, IngestOptions, Store, VecDoc};
use vx_engine::{Query, QueryOutput, QueryProfile};

/// Size breakdown of one persisted store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSizes {
    /// Bytes of `skeleton.vxsk`.
    pub skeleton_bytes: u64,
    /// Bytes across all `v*.vec` files.
    pub vector_bytes: u64,
    /// Bytes of `catalog.json`.
    pub catalog_bytes: u64,
    /// Bytes of `index.vxpi` (the persisted structural self-index;
    /// 0 for pre-v9 stores, which rebuild it at open time).
    pub index_bytes: u64,
    /// Bytes across `wal/seg-*.wal` (appended-but-uncompacted data).
    pub wal_bytes: u64,
}

impl StoreSizes {
    /// Bytes of the active generation's store files (the WAL is journal
    /// overhead on top, reported separately).
    pub fn total(&self) -> u64 {
        self.skeleton_bytes + self.vector_bytes + self.catalog_bytes + self.index_bytes
    }

    /// Measures a store directory on disk (no decoding). Generational
    /// stores (a `CURRENT` manifest pointing at `gen-NNNN/`) are
    /// measured at their active generation; the WAL directory, if any,
    /// is tallied separately.
    pub fn measure(dir: &Path) -> std::io::Result<StoreSizes> {
        let base = Store::base_dir(dir).map_err(|e| match e {
            CoreError::Io(e) => e,
            other => std::io::Error::other(other.to_string()),
        })?;
        let mut sizes = StoreSizes::measure_flat(&base)?;
        let wal_dir = dir.join(vx_wal::WAL_DIR);
        if wal_dir.is_dir() {
            for entry in std::fs::read_dir(&wal_dir)? {
                let entry = entry?;
                if entry.file_name().to_string_lossy().ends_with(".wal") {
                    sizes.wal_bytes += entry.metadata()?.len();
                }
            }
        }
        Ok(sizes)
    }

    /// Measures one directory's store files with no layout resolution.
    fn measure_flat(dir: &Path) -> std::io::Result<StoreSizes> {
        let mut sizes = StoreSizes {
            skeleton_bytes: 0,
            vector_bytes: 0,
            catalog_bytes: 0,
            index_bytes: 0,
            wal_bytes: 0,
        };
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let len = entry.metadata()?.len();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == "skeleton.vxsk" {
                sizes.skeleton_bytes = len;
            } else if name == "catalog.json" {
                sizes.catalog_bytes = len;
            } else if name == "index.vxpi" {
                sizes.index_bytes = len;
            } else if name.ends_with(".vec") {
                sizes.vector_bytes += len;
            }
        }
        Ok(sizes)
    }
}

/// Builds a store from a generated corpus and reports its sizes —
/// the vectorize half of the paper's Table 1 experiment.
pub fn build_and_measure(
    dir: &Path,
    doc: &vx_xml::Document,
) -> std::result::Result<StoreSizes, CoreError> {
    let vec_doc = vx_core::vectorize(doc)?;
    Store::save(dir, &vec_doc, vx_core::Compaction::Auto)?;
    StoreSizes::measure(dir).map_err(CoreError::Io)
}

/// Wall-clock comparison of the two ingest paths over one XML text,
/// with the streaming path's phase split and pipeline/pager tallies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestTiming {
    /// Bytes of the XML input text.
    pub input_bytes: u64,
    /// Best-of-`iters` seconds for `parse` + `vectorize` + `Store::save`.
    pub dom_secs: f64,
    /// Best-of-`iters` seconds for `Store::ingest_stream`.
    pub stream_secs: f64,
    /// Spill pages the streaming path allocated (0 = fit in tail pages).
    pub spill_pages: u64,
    /// Parse/cons/spill seconds of the best streaming repetition.
    pub pipeline_secs: f64,
    /// Skeleton/vector/catalog write seconds of the best streaming rep.
    pub write_secs: f64,
    /// Reader events the streaming pipeline consumed (deterministic).
    pub events: u64,
    /// Elements the streaming pipeline opened (deterministic).
    pub elements: u64,
    /// Text + attribute values appended (deterministic).
    pub values: u64,
    /// Spill-pool frame-cache hits during the streaming path.
    pub pager_hits: u64,
    /// Spill-pool frame-cache misses (page loads / re-reads).
    pub pager_misses: u64,
    /// Spill-pool frame evictions.
    pub pager_evictions: u64,
}

/// Times both ingest paths over `xml`, best of `iters` runs each, building
/// into `dir/dom` and `dir/stream`. Each iteration rebuilds from scratch;
/// timings include all store I/O, matching how the paper reports
/// vectorization cost (input to durable store).
pub fn time_ingest(dir: &Path, xml: &str, iters: u32) -> Result<IngestTiming, CoreError> {
    let iters = iters.max(1);
    let dom_dir = dir.join("dom");
    let stream_dir = dir.join("stream");
    let options = IngestOptions::default();

    let mut timing = IngestTiming {
        input_bytes: xml.len() as u64,
        dom_secs: f64::INFINITY,
        stream_secs: f64::INFINITY,
        spill_pages: 0,
        pipeline_secs: 0.0,
        write_secs: 0.0,
        events: 0,
        elements: 0,
        values: 0,
        pager_hits: 0,
        pager_misses: 0,
        pager_evictions: 0,
    };
    for _ in 0..iters {
        let _ = std::fs::remove_dir_all(&dom_dir);
        let start = Instant::now();
        let doc = vx_xml::parse(xml)?;
        let vec_doc = vx_core::vectorize(&doc)?;
        Store::save(&dom_dir, &vec_doc, vx_core::Compaction::None)?;
        timing.dom_secs = timing.dom_secs.min(start.elapsed().as_secs_f64());

        let _ = std::fs::remove_dir_all(&stream_dir);
        let start = Instant::now();
        let report = Store::ingest_stream(&stream_dir, xml.as_bytes(), &options)?;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < timing.stream_secs {
            // Keep the phase split of the best repetition so the parts
            // belong to the same run as the reported total.
            timing.stream_secs = elapsed;
            timing.pipeline_secs = report.pipeline_secs;
            timing.write_secs = report.write_secs;
        }
        // Counters and page traffic are deterministic per input, so
        // taking them from the last repetition loses nothing.
        timing.spill_pages = report.spill_pages;
        timing.events = report.stats.events;
        timing.elements = report.stats.elements;
        timing.values = report.stats.values();
        timing.pager_hits = report.pager.hits;
        timing.pager_misses = report.pager.misses;
        timing.pager_evictions = report.pager.evictions;
    }
    Ok(timing)
}

/// Wall-clock timings for the append path: WAL journaling, replay-on-open,
/// and compaction into a fresh generation. Each phase is best-of-`iters`
/// over a freshly rebuilt base store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendTiming {
    /// Documents per appended batch.
    pub append_docs: u64,
    /// XML bytes of the appended batch.
    pub append_bytes: u64,
    /// Best-of-`iters` seconds for `Store::append_batch` (validate +
    /// journal + sync, per `VX_WAL_SYNC`).
    pub append_secs: f64,
    /// Best-of-`iters` seconds for `Store::open_report` with the batch
    /// pending in the WAL (replay + overlay rebuild).
    pub reopen_secs: f64,
    /// Best-of-`iters` seconds for `Store::compact` folding the WAL into
    /// a fresh generation.
    pub compact_secs: f64,
    /// WAL frame bytes the batch occupied before compaction.
    pub wal_bytes: u64,
    /// Whether the journal was fsync'd (false under `VX_WAL_SYNC=off`).
    pub synced: bool,
}

/// Times the append path over a base corpus: per iteration the base store
/// is rebuilt from scratch (untimed), then `append_batch`, a replaying
/// `open_report`, and `compact` are each timed.
pub fn time_append(
    dir: &Path,
    base_xml: &str,
    batch: &[Vec<u8>],
    iters: u32,
) -> Result<AppendTiming, CoreError> {
    let iters = iters.max(1);
    let doc = vx_xml::parse(base_xml)?;
    let vec_doc = vx_core::vectorize(&doc)?;
    let options = vx_core::AppendOptions::default();

    let mut timing = AppendTiming {
        append_docs: batch.len() as u64,
        append_bytes: batch.iter().map(|b| b.len() as u64).sum(),
        append_secs: f64::INFINITY,
        reopen_secs: f64::INFINITY,
        compact_secs: f64::INFINITY,
        wal_bytes: 0,
        synced: false,
    };
    for _ in 0..iters {
        let _ = std::fs::remove_dir_all(dir);
        Store::save(dir, &vec_doc, vx_core::Compaction::None)?;

        let start = Instant::now();
        let report = Store::append_batch(dir, batch, &options)?;
        timing.append_secs = timing.append_secs.min(start.elapsed().as_secs_f64());
        timing.wal_bytes = report.wal_bytes;
        timing.synced = report.synced;

        let start = Instant::now();
        let open = Store::open_report(dir)?;
        timing.reopen_secs = timing.reopen_secs.min(start.elapsed().as_secs_f64());
        debug_assert_eq!(open.wal.pending_docs, batch.len() as u64);

        let start = Instant::now();
        Store::compact(dir, vx_core::Compaction::None)?;
        timing.compact_secs = timing.compact_secs.min(start.elapsed().as_secs_f64());
    }
    Ok(timing)
}

/// The four bench datasets in paper order, keyed by the `doc("…")` names
/// the workload queries use.
pub const DATASETS: [&str; 4] = ["xk", "tb", "ml", "ss"];

/// Per-corpus record counts for a bench run. "Records" means items for
/// XMark, sentences for TreeBank, citations for MedLine, and rows for
/// SkyServer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchScales {
    pub xk_items: usize,
    pub tb_sentences: usize,
    pub ml_citations: usize,
    pub ss_rows: usize,
}

impl BenchScales {
    /// The committed-numbers scale: roughly 1/100 of the paper's
    /// gigabyte-scale corpora, sized so a full `table1` + `table3` run
    /// finishes in minutes on a laptop.
    pub const DEFAULT: BenchScales = BenchScales {
        xk_items: 2000,
        tb_sentences: 10_000,
        ml_citations: 20_000,
        ss_rows: 20_000,
    };

    /// Reads `VX_BENCH_XK`/`VX_BENCH_TB`/`VX_BENCH_ML`/`VX_BENCH_SS`
    /// over the defaults — the env parameterization the CI smoke step
    /// uses to run the harness at tiny scales.
    pub fn from_env() -> BenchScales {
        let get = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let d = BenchScales::DEFAULT;
        BenchScales {
            xk_items: get("VX_BENCH_XK", d.xk_items),
            tb_sentences: get("VX_BENCH_TB", d.tb_sentences),
            ml_citations: get("VX_BENCH_ML", d.ml_citations),
            ss_rows: get("VX_BENCH_SS", d.ss_rows),
        }
    }

    pub fn is_default(&self) -> bool {
        *self == BenchScales::DEFAULT
    }

    /// The scale for one dataset key ("xk" | "tb" | "ml" | "ss").
    pub fn records(&self, dataset: &str) -> usize {
        match dataset {
            "xk" => self.xk_items,
            "tb" => self.tb_sentences,
            "ml" => self.ml_citations,
            "ss" => self.ss_rows,
            other => panic!("unknown dataset `{other}`"),
        }
    }
}

/// Generates one bench corpus at the given scale. Seed 42 everywhere:
/// the committed numbers must be reproducible bit for bit.
pub fn corpus(dataset: &str, records: usize) -> vx_xml::Document {
    match dataset {
        "xk" => vx_data::xmark(42, records),
        "tb" => vx_data::treebank(42, records),
        "ml" => vx_data::medline(42, records),
        "ss" => vx_data::skyserver(42, records),
        other => panic!("unknown dataset `{other}`"),
    }
}

/// Generates, serializes, and stream-ingests one corpus into `dir`
/// (with per-vector dictionary compaction, the paper's compacted-store
/// configuration), returning the input size and ingest wall time.
pub fn build_corpus_store(
    dir: &Path,
    dataset: &str,
    records: usize,
) -> Result<CorpusBuild, CoreError> {
    let doc = corpus(dataset, records);
    let xml = vx_xml::write_document(&doc, &vx_xml::WriteOptions::compact());
    let _ = std::fs::remove_dir_all(dir);
    let options = IngestOptions {
        compaction: vx_core::Compaction::Auto,
        ..IngestOptions::default()
    };
    let start = Instant::now();
    let report = Store::ingest_stream(dir, xml.as_bytes(), &options)?;
    Ok(CorpusBuild {
        input_bytes: xml.len() as u64,
        ingest_secs: start.elapsed().as_secs_f64(),
        catalog: report.catalog,
    })
}

/// The result of [`build_corpus_store`].
pub struct CorpusBuild {
    pub input_bytes: u64,
    pub ingest_secs: f64,
    pub catalog: vx_core::Catalog,
}

/// One cold timing of one workload query: the store is re-opened (fully
/// re-decoded from disk) for every repetition, so no vector or skeleton
/// state survives between runs — process-cold, as close as a
/// userspace-only harness gets to the paper's "cold numbers".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryTiming {
    /// Output values produced (identical across repetitions; the
    /// differential suite pins correctness at test scale).
    pub cardinality: u64,
    /// Best-of-reps store open (decode) seconds.
    pub open_secs: f64,
    /// Best-of-reps evaluation seconds.
    pub best_secs: f64,
    /// Mean evaluation seconds over the repetitions.
    pub mean_secs: f64,
}

/// Times `xq` against the store in `dir` (registered under `dataset` for
/// `doc("…")` resolution), cold, best and mean of `reps` runs.
pub fn time_query(
    dir: &Path,
    dataset: &str,
    xq: &str,
    reps: u32,
) -> Result<QueryTiming, vx_engine::EngineError> {
    let reps = reps.max(1);
    let compiled = Query::new(xq)?;
    let mut open_secs = f64::INFINITY;
    let mut best_secs = f64::INFINITY;
    let mut total_secs = 0.0;
    let mut cardinality = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        let (doc, _catalog) = Store::open(dir)?;
        open_secs = open_secs.min(start.elapsed().as_secs_f64());

        let corpus: Vec<(&str, &VecDoc)> = vec![(dataset, &doc)];
        let start = Instant::now();
        let output = compiled
            .run_with(&corpus[..], &vx_engine::RunOptions::default())?
            .output;
        let elapsed = start.elapsed().as_secs_f64();
        best_secs = best_secs.min(elapsed);
        total_secs += elapsed;
        // Materialization (counting values / reconstructing constructor
        // results) happens outside the timed window on purpose: the
        // paper times evaluation, and `strings()` on a Document output
        // rebuilds a DOM the engine itself never builds.
        cardinality = match &output {
            QueryOutput::Values(values) => values.len() as u64,
            QueryOutput::Document(_) => output.strings().len() as u64,
        };
    }
    Ok(QueryTiming {
        cardinality,
        open_secs,
        best_secs,
        mean_secs: total_secs / f64::from(reps),
    })
}

/// Runs `xq` once against the store in `dir` with engine instrumentation
/// on, returning the output cardinality and the [`QueryProfile`]. Used
/// for the per-query operation breakdowns embedded in `BENCH_*.json`;
/// timed repetitions stay unprofiled.
pub fn profile_query(
    dir: &Path,
    dataset: &str,
    xq: &str,
) -> Result<(u64, QueryProfile), vx_engine::EngineError> {
    let compiled = Query::new(xq)?;
    let (doc, _catalog) = Store::open(dir)?;
    let corpus: Vec<(&str, &VecDoc)> = vec![(dataset, &doc)];
    let options = vx_engine::RunOptions {
        profile: true,
        ..Default::default()
    };
    let outcome = compiled.run_with(&corpus[..], &options)?;
    let (output, profile) = (outcome.output, outcome.profile.expect("profile requested"));
    let cardinality = match &output {
        QueryOutput::Values(values) => values.len() as u64,
        QueryOutput::Document(_) => output.strings().len() as u64,
    };
    Ok((cardinality, profile))
}

/// Serializes a [`QueryProfile`] to the JSON shape shared by `vx query
/// --profile-json` and the breakdowns in the committed `BENCH_*.json`
/// files: `{"total_secs", "steps": [{"step","secs"}…], "counters":
/// {…}, "variables": [{"var","occurrences"}…]}`.
pub fn profile_json(profile: &QueryProfile) -> Json {
    let steps = profile
        .steps
        .iter()
        .map(|s| {
            Json::Object(vec![
                ("step".into(), Json::Str(s.name.clone())),
                ("secs".into(), Json::Num(s.secs)),
            ])
        })
        .collect();
    let counters = profile
        .counters
        .iter()
        .map(|(name, value)| (name.to_string(), Json::Num(value as f64)))
        .collect();
    let variables = profile
        .variables
        .iter()
        .map(|v| {
            Json::Object(vec![
                ("var".into(), Json::Str(v.name.clone())),
                ("occurrences".into(), Json::Num(v.occurrences as f64)),
            ])
        })
        .collect();
    Json::Object(vec![
        ("total_secs".into(), Json::Num(profile.total_secs)),
        ("steps".into(), Json::Array(steps)),
        ("counters".into(), Json::Object(counters)),
        ("variables".into(), Json::Array(variables)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_measures_a_generated_store() {
        let dir = std::env::temp_dir().join("vx-bench-test-store");
        let _ = std::fs::remove_dir_all(&dir);
        let doc = vx_data::medline(42, 8);
        let sizes = build_and_measure(&dir, &doc).unwrap();
        assert!(sizes.skeleton_bytes > 0);
        assert!(sizes.vector_bytes > 0);
        assert!(sizes.catalog_bytes > 0);
        assert_eq!(sizes.total(), StoreSizes::measure(&dir).unwrap().total());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn times_both_ingest_paths() {
        let dir = std::env::temp_dir().join("vx-bench-test-timing");
        let _ = std::fs::remove_dir_all(&dir);
        let doc = vx_data::skyserver(3, 50);
        let xml = vx_xml::write_document(&doc, &vx_xml::WriteOptions::compact());
        let timing = time_ingest(&dir, &xml, 2).unwrap();
        assert_eq!(timing.input_bytes, xml.len() as u64);
        assert!(timing.dom_secs > 0.0 && timing.dom_secs.is_finite());
        assert!(timing.stream_secs > 0.0 && timing.stream_secs.is_finite());
        // The streaming phase split covers the whole measured interval.
        assert!(timing.pipeline_secs > 0.0 && timing.write_secs > 0.0);
        assert!(timing.pipeline_secs + timing.write_secs <= timing.stream_secs + 1e-9);
        assert!(timing.events > timing.elements && timing.elements >= 50);
        assert!(timing.values > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn builds_and_times_every_bench_corpus() {
        let base = std::env::temp_dir().join(format!("vx-bench-corpora-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let scales = BenchScales {
            xk_items: 24,
            tb_sentences: 30,
            ml_citations: 40,
            ss_rows: 50,
        };
        assert!(!scales.is_default());
        for dataset in DATASETS {
            let dir = base.join(dataset);
            let build = build_corpus_store(&dir, dataset, scales.records(dataset)).unwrap();
            assert!(build.input_bytes > 0 && !build.catalog.vectors.is_empty());
            // Each dataset's workload queries run cold against its store.
            for spec in vx_data::workload().iter().filter(|q| q.dataset == dataset) {
                let timing = time_query(&dir, dataset, spec.xq, 1)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                assert!(timing.best_secs.is_finite(), "{}", spec.name);
                assert!(
                    timing.best_secs <= timing.mean_secs + 1e-12,
                    "{}",
                    spec.name
                );
            }
        }
        let _ = std::fs::remove_dir_all(&base);
    }
}
