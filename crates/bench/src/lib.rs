//! `vx-bench` — measurement harness (DESIGN.md row 10).
//!
//! Produced the checked-in `bench_results/` (stores built from MedLine-
//! and SkyServer-shaped corpora at several sizes). This build carries
//! only the pieces the rest of the workspace needs: size accounting for
//! a store directory and a stopwatch-free summary type — timing runs and
//! plots return in a later PR (see ROADMAP.md).

use std::path::Path;
use vx_core::{CoreError, Store};

/// Size breakdown of one persisted store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSizes {
    /// Bytes of `skeleton.vxsk`.
    pub skeleton_bytes: u64,
    /// Bytes across all `v*.vec` files.
    pub vector_bytes: u64,
    /// Bytes of `catalog.json`.
    pub catalog_bytes: u64,
}

impl StoreSizes {
    pub fn total(&self) -> u64 {
        self.skeleton_bytes + self.vector_bytes + self.catalog_bytes
    }

    /// Measures a store directory on disk (no decoding).
    pub fn measure(dir: &Path) -> std::io::Result<StoreSizes> {
        let mut sizes = StoreSizes {
            skeleton_bytes: 0,
            vector_bytes: 0,
            catalog_bytes: 0,
        };
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let len = entry.metadata()?.len();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == "skeleton.vxsk" {
                sizes.skeleton_bytes = len;
            } else if name == "catalog.json" {
                sizes.catalog_bytes = len;
            } else if name.ends_with(".vec") {
                sizes.vector_bytes += len;
            }
        }
        Ok(sizes)
    }
}

/// Builds a store from a generated corpus and reports its sizes —
/// the vectorize half of the paper's Table 1 experiment.
pub fn build_and_measure(
    dir: &Path,
    doc: &vx_xml::Document,
) -> std::result::Result<StoreSizes, CoreError> {
    let vec_doc = vx_core::vectorize(doc)?;
    Store::save(dir, &vec_doc, vx_core::Compaction::Auto)?;
    StoreSizes::measure(dir).map_err(CoreError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_measures_a_generated_store() {
        let dir = std::env::temp_dir().join("vx-bench-test-store");
        let _ = std::fs::remove_dir_all(&dir);
        let doc = vx_data::medline(42, 8);
        let sizes = build_and_measure(&dir, &doc).unwrap();
        assert!(sizes.skeleton_bytes > 0);
        assert!(sizes.vector_bytes > 0);
        assert!(sizes.catalog_bytes > 0);
        assert_eq!(sizes.total(), StoreSizes::measure(&dir).unwrap().total());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
