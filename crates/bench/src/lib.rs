//! `vx-bench` — measurement harness (DESIGN.md row 10).
//!
//! Produced the checked-in `bench_results/` (stores built from MedLine-
//! and SkyServer-shaped corpora at several sizes). This build carries
//! size accounting for a store directory plus the ingest-throughput
//! stopwatch behind the `bench_ingest` binary (which emits
//! `BENCH_ingest.json`); query-side timing and plots return in a later
//! PR (see ROADMAP.md).

use std::path::Path;
use std::time::Instant;
use vx_core::{CoreError, IngestOptions, Store};

/// Size breakdown of one persisted store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSizes {
    /// Bytes of `skeleton.vxsk`.
    pub skeleton_bytes: u64,
    /// Bytes across all `v*.vec` files.
    pub vector_bytes: u64,
    /// Bytes of `catalog.json`.
    pub catalog_bytes: u64,
}

impl StoreSizes {
    pub fn total(&self) -> u64 {
        self.skeleton_bytes + self.vector_bytes + self.catalog_bytes
    }

    /// Measures a store directory on disk (no decoding).
    pub fn measure(dir: &Path) -> std::io::Result<StoreSizes> {
        let mut sizes = StoreSizes {
            skeleton_bytes: 0,
            vector_bytes: 0,
            catalog_bytes: 0,
        };
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let len = entry.metadata()?.len();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == "skeleton.vxsk" {
                sizes.skeleton_bytes = len;
            } else if name == "catalog.json" {
                sizes.catalog_bytes = len;
            } else if name.ends_with(".vec") {
                sizes.vector_bytes += len;
            }
        }
        Ok(sizes)
    }
}

/// Builds a store from a generated corpus and reports its sizes —
/// the vectorize half of the paper's Table 1 experiment.
pub fn build_and_measure(
    dir: &Path,
    doc: &vx_xml::Document,
) -> std::result::Result<StoreSizes, CoreError> {
    let vec_doc = vx_core::vectorize(doc)?;
    Store::save(dir, &vec_doc, vx_core::Compaction::Auto)?;
    StoreSizes::measure(dir).map_err(CoreError::Io)
}

/// Wall-clock comparison of the two ingest paths over one XML text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestTiming {
    /// Bytes of the XML input text.
    pub input_bytes: u64,
    /// Best-of-`iters` seconds for `parse` + `vectorize` + `Store::save`.
    pub dom_secs: f64,
    /// Best-of-`iters` seconds for `Store::ingest_stream`.
    pub stream_secs: f64,
    /// Spill pages the streaming path allocated (0 = fit in tail pages).
    pub spill_pages: u64,
}

/// Times both ingest paths over `xml`, best of `iters` runs each, building
/// into `dir/dom` and `dir/stream`. Each iteration rebuilds from scratch;
/// timings include all store I/O, matching how the paper reports
/// vectorization cost (input to durable store).
pub fn time_ingest(dir: &Path, xml: &str, iters: u32) -> Result<IngestTiming, CoreError> {
    let iters = iters.max(1);
    let dom_dir = dir.join("dom");
    let stream_dir = dir.join("stream");
    let options = IngestOptions::default();

    let mut dom_secs = f64::INFINITY;
    let mut stream_secs = f64::INFINITY;
    let mut spill_pages = 0;
    for _ in 0..iters {
        let _ = std::fs::remove_dir_all(&dom_dir);
        let start = Instant::now();
        let doc = vx_xml::parse(xml)?;
        let vec_doc = vx_core::vectorize(&doc)?;
        Store::save(&dom_dir, &vec_doc, vx_core::Compaction::None)?;
        dom_secs = dom_secs.min(start.elapsed().as_secs_f64());

        let _ = std::fs::remove_dir_all(&stream_dir);
        let start = Instant::now();
        let report = Store::ingest_stream(&stream_dir, xml.as_bytes(), &options)?;
        stream_secs = stream_secs.min(start.elapsed().as_secs_f64());
        spill_pages = report.spill_pages;
    }
    Ok(IngestTiming {
        input_bytes: xml.len() as u64,
        dom_secs,
        stream_secs,
        spill_pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_measures_a_generated_store() {
        let dir = std::env::temp_dir().join("vx-bench-test-store");
        let _ = std::fs::remove_dir_all(&dir);
        let doc = vx_data::medline(42, 8);
        let sizes = build_and_measure(&dir, &doc).unwrap();
        assert!(sizes.skeleton_bytes > 0);
        assert!(sizes.vector_bytes > 0);
        assert!(sizes.catalog_bytes > 0);
        assert_eq!(sizes.total(), StoreSizes::measure(&dir).unwrap().total());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn times_both_ingest_paths() {
        let dir = std::env::temp_dir().join("vx-bench-test-timing");
        let _ = std::fs::remove_dir_all(&dir);
        let doc = vx_data::skyserver(3, 50);
        let xml = vx_xml::write_document(&doc, &vx_xml::WriteOptions::compact());
        let timing = time_ingest(&dir, &xml, 2).unwrap();
        assert_eq!(timing.input_bytes, xml.len() as u64);
        assert!(timing.dom_secs > 0.0 && timing.dom_secs.is_finite());
        assert!(timing.stream_secs > 0.0 && timing.stream_secs.is_finite());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
