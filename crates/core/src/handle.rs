//! `StoreHandle` — an opened store as a shared immutable value.
//!
//! The paper's stores are read-mostly and the skeleton is tiny by
//! design, which makes an opened store ideal for many concurrent
//! readers. A [`StoreHandle`] packages everything the read path needs —
//! the hash-consed skeleton (inside the [`VecDoc`]), the fully decoded
//! data vectors, the [`Catalog`], and the precomputed [`PathIndex`] —
//! behind one `Arc`. Cloning a handle is a reference-count bump; the
//! store directory is read **once**, at [`StoreHandle::open`] time, and
//! never touched again.
//!
//! The split the engine relies on:
//!
//! * **Shared immutable** (this type): skeleton DAG, data vectors,
//!   catalog, per-node text layout. `Send + Sync` is enforced at compile
//!   time below, so a handle can be captured by any number of worker
//!   threads (`vx serve`, the parallel reduce loop, the bench harness).
//! * **Per-query scratch** (owned by each evaluation): NFA machine
//!   states, per-path cursors, extended-vector rows, join indexes. The
//!   engine allocates those per call; nothing in this type is ever
//!   mutated by a query.

use crate::append::WalStatus;
use crate::store::{Catalog, Store};
use crate::vecdoc::VecDoc;
use crate::{CoreError, Result};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vx_skeleton::{NodeId, PathIndex, Skeleton, StructIndex};

/// Everything derived from one store directory, immutable after open.
struct StoreInner {
    /// Directory the store was opened from; empty for in-memory handles.
    dir: PathBuf,
    /// Directory the active generation's files were read from (`dir`
    /// for flat stores, `dir/gen-NNNN` after a compaction; empty for
    /// in-memory handles).
    base_dir: PathBuf,
    /// Default `doc("…")` name: the directory's file name (or an
    /// explicit override for in-memory handles).
    name: String,
    doc: VecDoc,
    catalog: Catalog,
    /// The on-disk catalog of the active generation (equal to `catalog`
    /// when no WAL overlay was replayed at open).
    base_catalog: Catalog,
    /// Active generation (0 = flat layout / in-memory).
    generation: u32,
    /// WAL state observed at open time (all zeros for in-memory
    /// handles and stores without a `wal/` directory).
    wal: WalStatus,
    index: PathIndex,
    /// Whether the structural self-index came from a persisted
    /// `index.vxpi` (false = rebuilt from the skeleton at open).
    structural_loaded: bool,
}

/// A shared, immutable, opened store. See the module docs for the
/// concurrency contract. Cheap to clone (`Arc` bump).
#[derive(Clone)]
pub struct StoreHandle {
    inner: Arc<StoreInner>,
}

/// The whole read path must be shareable across threads without locks:
/// a handle that stopped being `Send + Sync` (say, a cache slipped in a
/// `Cell`) is a compile error here, not a runtime surprise.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<StoreHandle>();

impl StoreHandle {
    /// Opens the store in `dir` once: strict [`Store::open`] (every
    /// vector file must decode and agree with the catalog), then the
    /// skeleton/vector integrity gate, then the path-index precompute.
    /// The returned handle never reads the directory again.
    pub fn open(dir: &Path) -> Result<StoreHandle> {
        let report = Store::open_report(dir)?;
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        Self::assemble(
            dir.to_path_buf(),
            report.base_dir,
            name,
            report.doc,
            report.catalog,
            report.base_catalog,
            report.generation,
            report.wal,
            report.structural,
        )
    }

    /// Wraps an in-memory [`VecDoc`] (e.g. freshly vectorized, never
    /// saved) as a handle named `name`. The catalog is synthesized from
    /// the document; there is no backing directory.
    pub fn from_doc(name: &str, doc: VecDoc) -> Result<StoreHandle> {
        let catalog = Catalog {
            vectors: doc
                .vectors()
                .iter()
                .enumerate()
                .map(|(i, v)| crate::store::CatalogEntry {
                    path: v.path.clone(),
                    file: format!("v{i:06}.vec"),
                    count: v.values.len() as u64,
                    data_bytes: v.values.iter().map(|b| b.len() as u64).sum(),
                    version: 0,
                })
                .collect(),
            node_count: doc.node_count(),
            text_bytes: doc.text_bytes(),
        };
        let base_catalog = catalog.clone();
        Self::assemble(
            PathBuf::new(),
            PathBuf::new(),
            name.to_string(),
            doc,
            catalog,
            base_catalog,
            0,
            WalStatus::default(),
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        dir: PathBuf,
        base_dir: PathBuf,
        name: String,
        doc: VecDoc,
        catalog: Catalog,
        base_catalog: Catalog,
        generation: u32,
        wal: WalStatus,
        structural: Option<StructIndex>,
    ) -> Result<StoreHandle> {
        let root = doc
            .root
            .ok_or_else(|| CoreError::Corrupt("store has no root node".into()))?;
        let structural_loaded = structural.is_some();
        let index = match structural {
            // A persisted `index.vxpi` that passed the staleness gate at
            // open time replaces the per-open rebuild.
            Some(structural) => PathIndex::with_structural(&doc.skeleton, root, structural),
            None => PathIndex::new(&doc.skeleton, root),
        };

        // Integrity gate, hoisted out of the engine's per-query path:
        // every root-to-text path the skeleton counts must be backed by a
        // vector of exactly that many values, or queries over this
        // handle could silently return partial answers.
        for (rel, count) in index.text_paths(&doc.skeleton) {
            let path: String = rel
                .iter()
                .map(|&n| doc.skeleton.name(n))
                .collect::<Vec<_>>()
                .join("/");
            match doc.vector(&path) {
                None => {
                    return Err(CoreError::Corrupt(format!(
                        "no vector for path {path} (skeleton counts {count})"
                    )));
                }
                Some(vector) if vector.values.len() as u64 != count => {
                    return Err(CoreError::Corrupt(format!(
                        "vector {path} has {} values, skeleton counts {count}",
                        vector.values.len()
                    )));
                }
                Some(_) => {}
            }
        }

        Ok(StoreHandle {
            inner: Arc::new(StoreInner {
                dir,
                base_dir,
                name,
                doc,
                catalog,
                base_catalog,
                generation,
                wal,
                index,
                structural_loaded,
            }),
        })
    }

    /// The directory this handle was opened from (empty for
    /// [`StoreHandle::from_doc`] handles).
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The handle's default `doc("…")` name (directory basename).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The decoded vectorized document.
    pub fn doc(&self) -> &VecDoc {
        &self.inner.doc
    }

    /// The store's skeleton DAG.
    pub fn skeleton(&self) -> &Skeleton {
        &self.inner.doc.skeleton
    }

    /// The skeleton root.
    pub fn root(&self) -> NodeId {
        self.inner.index.root()
    }

    /// The parsed catalog (synthesized for in-memory handles). With a
    /// WAL overlay this describes the *served* document; see
    /// [`StoreHandle::base_catalog`] for the on-disk generation.
    pub fn catalog(&self) -> &Catalog {
        &self.inner.catalog
    }

    /// The on-disk catalog of the active generation, verbatim (equal to
    /// [`StoreHandle::catalog`] without a WAL overlay).
    pub fn base_catalog(&self) -> &Catalog {
        &self.inner.base_catalog
    }

    /// Directory the active generation's files were read from — the
    /// store dir itself for flat stores, `dir/gen-NNNN` after a
    /// compaction (empty for in-memory handles).
    pub fn base_dir(&self) -> &Path {
        &self.inner.base_dir
    }

    /// Active generation number (0 = flat layout / in-memory).
    pub fn generation(&self) -> u32 {
        self.inner.generation
    }

    /// WAL state observed when the handle was opened.
    pub fn wal(&self) -> &WalStatus {
        &self.inner.wal
    }

    /// The precomputed per-node text layout, shared by every query that
    /// runs over this handle.
    pub fn index(&self) -> &PathIndex {
        &self.inner.index
    }

    /// Whether the structural self-index was loaded from a persisted
    /// `index.vxpi` rather than rebuilt from the skeleton at open time.
    pub fn structural_loaded(&self) -> bool {
        self.inner.structural_loaded
    }
}

impl std::fmt::Debug for StoreHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHandle")
            .field("dir", &self.inner.dir)
            .field("name", &self.inner.name)
            .field("vectors", &self.inner.doc.vectors().len())
            .field("node_count", &self.inner.catalog.node_count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Compaction;
    use crate::vectorize::vectorize;
    use std::fs;
    use vx_xml::parse;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vx-handle-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_clone_and_share() {
        let doc = parse("<lib><book><t>A</t></book><book><t>B</t></book></lib>").unwrap();
        let v = vectorize(&doc).unwrap();
        let dir = temp_dir("share");
        Store::save(&dir, &v, Compaction::None).unwrap();
        let handle = StoreHandle::open(&dir).unwrap();
        assert_eq!(handle.catalog().vectors.len(), 1);
        assert!(handle.name().starts_with("vx-handle-"));

        // Clones share the same inner store; threads may hold them.
        let clone = handle.clone();
        let joined = std::thread::spawn(move || clone.doc().text_count())
            .join()
            .unwrap();
        assert_eq!(joined, handle.doc().text_count());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_doc_synthesizes_catalog() {
        let doc = parse("<a><b>1</b><b>2</b><c>x</c></a>").unwrap();
        let v = vectorize(&doc).unwrap();
        let handle = StoreHandle::from_doc("mem", v).unwrap();
        assert_eq!(handle.name(), "mem");
        assert_eq!(handle.catalog().vectors.len(), 2);
        assert_eq!(handle.catalog().vectors[0].count, 2);
        assert_eq!(handle.dir(), Path::new(""));
    }

    #[test]
    fn structural_index_loads_and_degrades_to_rebuild() {
        let doc = parse("<lib><book><t>A</t></book><book><t>B</t></book></lib>").unwrap();
        let v = vectorize(&doc).unwrap();
        let dir = temp_dir("vxpi");
        Store::save(&dir, &v, Compaction::None).unwrap();

        // Fresh save persists the index and open adopts it.
        let handle = StoreHandle::open(&dir).unwrap();
        assert!(handle.structural_loaded());
        let baseline = handle.index().structural().clone();

        // Truncated, corrupted, and missing `.vxpi` files all degrade to
        // a rebuild that produces the identical index — never an error.
        let vxpi = dir.join("index.vxpi");
        let bytes = fs::read(&vxpi).unwrap();
        for damage in [bytes[..bytes.len() / 2].to_vec(), {
            let mut b = bytes.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0xff;
            b
        }] {
            fs::write(&vxpi, damage).unwrap();
            let degraded = StoreHandle::open(&dir).unwrap();
            assert!(!degraded.structural_loaded());
            assert_eq!(degraded.index().structural(), &baseline);
        }
        fs::remove_file(&vxpi).unwrap();
        let rebuilt = StoreHandle::open(&dir).unwrap();
        assert!(!rebuilt.structural_loaded());
        assert_eq!(rebuilt.index().structural(), &baseline);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_structural_index_is_not_adopted() {
        // Persist store A's index into store B's directory: the
        // staleness gate must reject it and rebuild B's own.
        let a = vectorize(&parse("<lib><x><y>1</y></x></lib>").unwrap()).unwrap();
        let b = vectorize(&parse("<lib><p>1</p><q>2</q><r>3</r></lib>").unwrap()).unwrap();
        let dir_a = temp_dir("stale-a");
        let dir_b = temp_dir("stale-b");
        Store::save(&dir_a, &a, Compaction::None).unwrap();
        Store::save(&dir_b, &b, Compaction::None).unwrap();
        fs::copy(dir_a.join("index.vxpi"), dir_b.join("index.vxpi")).unwrap();
        let handle = StoreHandle::open(&dir_b).unwrap();
        assert!(!handle.structural_loaded());
        let fresh = PathIndex::new(handle.skeleton(), handle.root());
        assert_eq!(handle.index().structural(), fresh.structural());
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn open_rejects_vector_count_mismatch() {
        let doc = parse("<a><b>1</b><b>2</b></a>").unwrap();
        let mut v = vectorize(&doc).unwrap();
        // Drop a value behind the skeleton's back.
        let path = v.vectors()[0].path.clone();
        v.insert_vector(crate::vecdoc::PathVector {
            path,
            values: vec![b"1".to_vec()],
        });
        assert!(StoreHandle::from_doc("bad", v).is_err());
    }
}
