//! Streaming store construction: `Store::ingest_stream`.
//!
//! This is the bounded-memory twin of `vectorize` + [`Store::save`]. The
//! reader is consumed through `vx-xml`'s pull parser and `vx-ingest`'s
//! event pipeline — no [`vx_xml::Document`] ever exists — and the
//! resulting store directory is **byte-identical** to what the DOM path
//! produces for the same input and options (`tests/ingest_stream.rs` at
//! the workspace root pins this differentially).
//!
//! Memory model: compressed skeleton DAG + open-element stack + one 8 KiB
//! tail page per distinct path + the spill pool's frames. Vector values
//! spill to a temporary `.ingest.spill` file inside the store directory
//! (removed on completion or failure); the catalog is written atomically
//! last, so a crash mid-ingest can never leave a store whose catalog
//! points at half-written vectors.

use crate::store::{write_catalog_atomic, Catalog, CatalogEntry, Compaction, Store};
use crate::{CoreError, Result};
use std::fs;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use vx_ingest::{IngestOutput, PipelineOptions};
use vx_skeleton::format as skformat;
use vx_storage::pager::PagerStats;
use vx_vector::SpillPool;
use vx_xml::{Event, Events};

/// Streaming-ingest policy.
#[derive(Debug, Clone, Copy)]
pub struct IngestOptions {
    /// Vector compaction on save, as in [`Store::save`].
    pub compaction: Compaction,
    /// Drop comments/PIs inside the tree instead of erroring, as in
    /// `VectorizeOptions::drop_unrepresentable`.
    pub drop_unrepresentable: bool,
    /// Buffer-pool frames for the spill file — the paging budget of the
    /// whole ingest, independent of document size.
    pub spill_frames: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            compaction: Compaction::None,
            drop_unrepresentable: false,
            spill_frames: 64,
        }
    }
}

/// What a streaming ingest produced, plus how the spill pool behaved.
#[derive(Debug, Clone)]
pub struct IngestReport {
    pub catalog: Catalog,
    /// Pages the spill file grew to (0 when everything fit in tail pages).
    pub spill_pages: u64,
    /// Spill-pool buffer statistics (misses ≈ page re-reads at finish).
    pub pager: PagerStats,
    /// Event-pipeline tallies (elements, values, events consumed).
    pub stats: vx_ingest::PipelineStats,
    /// Seconds in the parse/cons/spill phase (reader → `IngestOutput`).
    pub pipeline_secs: f64,
    /// Seconds in the write phase (skeleton + vectors + catalog to disk).
    pub write_secs: f64,
}

impl From<vx_ingest::IngestError> for CoreError {
    fn from(e: vx_ingest::IngestError) -> Self {
        match e {
            vx_ingest::IngestError::Xml(e) => CoreError::Xml(e),
            vx_ingest::IngestError::Storage(e) => CoreError::Storage(e),
            vx_ingest::IngestError::Skeleton(e) => CoreError::Skeleton(e),
            vx_ingest::IngestError::Vector(e) => CoreError::Vector(e),
            vx_ingest::IngestError::Unsupported(m) => CoreError::Unsupported(m),
        }
    }
}

impl Store {
    /// Ingests XML from `reader` straight into a store directory without
    /// building a DOM. Output is byte-identical to
    /// `Store::save(dir, &vectorize_with(&parse(..)?, ..)?, ..)`.
    pub fn ingest_stream<R: Read>(
        dir: &Path,
        reader: R,
        options: &IngestOptions,
    ) -> Result<IngestReport> {
        Store::ingest_events(dir, Events::new(reader), options)
    }

    /// Same, over an already-constructed parse-event stream.
    pub fn ingest_events(
        dir: &Path,
        events: impl Iterator<Item = vx_xml::Result<Event>>,
        options: &IngestOptions,
    ) -> Result<IngestReport> {
        fs::create_dir_all(dir)?;
        let pool = SpillPool::create(&dir.join(".ingest.spill"), options.spill_frames.max(1))
            .map_err(vx_ingest::IngestError::Vector)?;
        let pipeline_options = PipelineOptions {
            drop_unrepresentable: options.drop_unrepresentable,
        };
        let timer = vx_obs::Timer::start();
        let output = vx_ingest::run(events, pool, pipeline_options)?;
        let pipeline_secs = timer.secs();
        write_output(dir, output, options, pipeline_secs)
    }
}

fn write_output(
    dir: &Path,
    output: IngestOutput,
    options: &IngestOptions,
    pipeline_secs: f64,
) -> Result<IngestReport> {
    let timer = vx_obs::Timer::start();
    let IngestOutput {
        skeleton,
        root,
        vectors,
        mut pool,
        stats,
    } = output;
    let skeleton_bytes = skformat::write(&skeleton, root);
    fs::write(dir.join("skeleton.vxsk"), &skeleton_bytes)?;
    // Built from the file bytes so streaming and DOM ingests stay
    // byte-identical (see `store::write_structural_index`).
    crate::store::write_structural_index(dir, &skeleton_bytes)?;

    let mut entries = Vec::with_capacity(vectors.len());
    let mut text_bytes = 0u64;
    for (i, (path, spill)) in vectors.into_iter().enumerate() {
        let file = format!("v{i:06}.vec");
        let mut writer = BufWriter::new(fs::File::create(dir.join(&file))?);
        let stats = match options.compaction {
            Compaction::None => spill.finish_plain(&mut pool, &mut writer),
            Compaction::Auto => spill.finish_auto(&mut pool, &mut writer),
        }
        .map_err(vx_ingest::IngestError::Vector)?;
        writer.flush()?;
        text_bytes += stats.value_bytes;
        entries.push(CatalogEntry {
            path,
            file,
            count: stats.count,
            data_bytes: stats.data_bytes,
            version: stats.version,
        });
    }

    let catalog = Catalog {
        vectors: entries,
        node_count: skeleton.expanded_size(root),
        text_bytes,
    };
    // Vectors and skeleton are durable; only now does the catalog appear,
    // atomically, making the store visible as a whole.
    write_catalog_atomic(dir, &catalog)?;
    let report = IngestReport {
        catalog,
        spill_pages: pool.page_count(),
        pager: pool.stats(),
        stats,
        pipeline_secs,
        write_secs: timer.secs(),
    };
    drop(pool); // removes the spill file
    if vx_obs::log_enabled() {
        vx_obs::event(
            "core.ingest",
            &[
                ("dir", vx_obs::Value::Str(&dir.display().to_string())),
                ("pipeline_secs", vx_obs::Value::F64(report.pipeline_secs)),
                ("write_secs", vx_obs::Value::F64(report.write_secs)),
                ("events", vx_obs::Value::U64(report.stats.events)),
                ("elements", vx_obs::Value::U64(report.stats.elements)),
                ("values", vx_obs::Value::U64(report.stats.values())),
                (
                    "vectors",
                    vx_obs::Value::U64(report.catalog.vectors.len() as u64),
                ),
                ("spill_pages", vx_obs::Value::U64(report.spill_pages)),
                ("pager_hits", vx_obs::Value::U64(report.pager.hits)),
                ("pager_misses", vx_obs::Value::U64(report.pager.misses)),
                (
                    "pager_evictions",
                    vx_obs::Value::U64(report.pager.evictions),
                ),
                (
                    "pager_writebacks",
                    vx_obs::Value::U64(report.pager.writebacks),
                ),
            ],
        );
    }
    Ok(report)
}
