//! Appends, generations, and crash recovery (DESIGN.md §11).
//!
//! A store starts life **flat** — `skeleton.vxsk`, `v*.vec`,
//! `catalog.json` directly in the store directory (generation 0, the
//! layout every ingest writes). Appending documents never rewrites
//! those files; instead:
//!
//! * [`Store::append_stream`] / [`Store::append_batch`] validate each
//!   appended document (well-formed XML, root tag equal to the store's
//!   root, no root attributes, representable content) and journal its
//!   raw bytes to the checksummed WAL (`wal/seg-*.wal`, see `vx-wal`),
//!   group-committed with one `fdatasync`.
//! * [`Store::open`] replays the WAL tail: every record newer than the
//!   manifest's `wal_applied` is parsed and its root's children are
//!   spliced after the base document's, then the combined document is
//!   re-vectorized — the **log-backed overlay**. New tag paths appearing
//!   only in appended documents extend the catalog and (through
//!   `StoreHandle`) the `PathIndex` in place.
//! * [`Store::compact`] folds the overlay into a fresh
//!   `gen-NNNN/` directory holding a complete, self-contained store —
//!   byte-identical to a from-scratch ingest of the combined document —
//!   then atomically swaps the `CURRENT` manifest and purges the
//!   applied WAL segments.
//!
//! The `CURRENT` manifest (`{"generation": "gen-0001",
//! "wal_applied": N}`) is the only mutable pointer: it is written with
//! the same temp-file + rename discipline as `catalog.json`, so a crash
//! at any step leaves either the old generation (with the WAL intact —
//! replay reproduces the appended state) or the new one (replay skips
//! records with `seq <= wal_applied`, so nothing is applied twice).
//! Recovery is therefore always to *exactly* the pre-append or
//! post-append document, never a torn mix.

use crate::json::{self, Json};
use crate::store::{Catalog, CatalogEntry, Compaction, Store};
use crate::vecdoc::VecDoc;
use crate::vectorize::{vectorize_with, VectorizeOptions};
use crate::{CoreError, Result};
use std::collections::HashMap;
use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};
use vx_skeleton::format as skformat;
use vx_wal::{Record, SyncMode, Wal, FLAG_DROP_UNREPRESENTABLE, KIND_APPEND_DOC};

/// Name of the generation manifest file.
pub const CURRENT_FILE: &str = "CURRENT";

/// Directory name of generation `n` (`n >= 1`).
pub fn generation_dir_name(generation: u32) -> String {
    format!("gen-{generation:04}")
}

/// Where a store's current files live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreLayout {
    /// The store directory itself.
    pub dir: PathBuf,
    /// Active generation: 0 = flat legacy layout (files at top level),
    /// `n >= 1` = `gen-NNNN/` subdirectory named by `CURRENT`.
    pub generation: u32,
    /// Last WAL sequence number folded into the on-disk generation;
    /// replay skips records at or below it.
    pub wal_applied: u64,
}

impl StoreLayout {
    /// The directory holding the active generation's
    /// `skeleton.vxsk`/`v*.vec`/`catalog.json`.
    pub fn base(&self) -> PathBuf {
        if self.generation == 0 {
            self.dir.clone()
        } else {
            self.dir.join(generation_dir_name(self.generation))
        }
    }
}

/// Reads the `CURRENT` manifest (absent = flat generation-0 layout).
pub fn resolve_layout(dir: &Path) -> Result<StoreLayout> {
    let path = dir.join(CURRENT_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(StoreLayout {
                dir: dir.to_path_buf(),
                generation: 0,
                wal_applied: 0,
            });
        }
        Err(e) => return Err(e.into()),
    };
    let value =
        json::parse(&text).map_err(|e| CoreError::Corrupt(format!("bad CURRENT manifest: {e}")))?;
    let gen_name = value
        .get("generation")
        .and_then(Json::as_str)
        .ok_or_else(|| CoreError::Corrupt("CURRENT manifest: missing `generation`".into()))?;
    let generation: u32 = gen_name
        .strip_prefix("gen-")
        .and_then(|s| s.parse().ok())
        .filter(|&g| g >= 1)
        .ok_or_else(|| {
            CoreError::Corrupt(format!("CURRENT manifest: bad generation `{gen_name}`"))
        })?;
    let wal_applied = value
        .get("wal_applied")
        .and_then(Json::as_u64)
        .ok_or_else(|| CoreError::Corrupt("CURRENT manifest: missing `wal_applied`".into()))?;
    Ok(StoreLayout {
        dir: dir.to_path_buf(),
        generation,
        wal_applied,
    })
}

/// Writes the `CURRENT` manifest atomically (temp + rename, directory
/// fsync'd under the durable sync mode).
fn write_current_atomic(
    dir: &Path,
    generation: u32,
    wal_applied: u64,
    sync: SyncMode,
) -> Result<()> {
    let text = json::to_string_pretty(&Json::Object(vec![
        (
            "generation".into(),
            Json::Str(generation_dir_name(generation)),
        ),
        ("wal_applied".into(), Json::Num(wal_applied as f64)),
    ]));
    let tmp = dir.join("CURRENT.tmp");
    fs::write(&tmp, text)?;
    if sync == SyncMode::Data {
        if let Ok(file) = fs::File::open(&tmp) {
            let _ = file.sync_all();
        }
    }
    if let Err(e) = fs::rename(&tmp, dir.join(CURRENT_FILE)) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    if sync == SyncMode::Data {
        vx_wal::sync_dir(dir);
    }
    Ok(())
}

/// The WAL's state as seen at open time.
#[derive(Debug, Clone, Default)]
pub struct WalStatus {
    /// Segment files on disk.
    pub segments: u64,
    /// Total bytes across segments.
    pub wal_bytes: u64,
    /// Records newer than the manifest's `wal_applied` (the overlay).
    pub pending_records: u64,
    /// Appended documents among the pending records.
    pub pending_docs: u64,
    /// Body bytes of pending records.
    pub pending_bytes: u64,
    /// Unreadable tail bytes dropped by torn-tail tolerance.
    pub torn_bytes: u64,
    /// Highest sequence number folded into the in-memory document
    /// (manifest's `wal_applied`, advanced by replay).
    pub applied_seq: u64,
}

/// Everything [`Store::open_report`] learns about a store.
#[derive(Debug)]
pub struct OpenReport {
    /// The document, with any WAL overlay already merged in.
    pub doc: VecDoc,
    /// Catalog describing [`OpenReport::doc`]. Without pending WAL
    /// records this is exactly the on-disk catalog; with an overlay,
    /// extended vectors keep their file name but re-count, and paths
    /// introduced by appended documents gain entries with an empty
    /// `file` (they have no on-disk vector until compaction).
    pub catalog: Catalog,
    /// The on-disk catalog of the active generation, verbatim.
    pub base_catalog: Catalog,
    /// Active generation number (0 = flat layout).
    pub generation: u32,
    /// Directory the generation's files were read from.
    pub base_dir: PathBuf,
    /// WAL state (all zeros for a store with no `wal/` directory).
    pub wal: WalStatus,
    /// Stale temp files/directories removed before opening (crash
    /// leftovers: `catalog.json.tmp`, `CURRENT.tmp`, `.ingest.spill`,
    /// superseded generations, fully-applied WAL segments).
    pub cleaned: Vec<String>,
    /// The persisted structural self-index (`index.vxpi`), when present,
    /// valid for [`OpenReport::doc`]'s skeleton, and no WAL overlay was
    /// merged (replay builds a fresh arena the persisted ids cannot
    /// describe). `None` means "rebuild from the skeleton".
    pub structural: Option<vx_skeleton::StructIndex>,
}

/// Append policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct AppendOptions {
    /// Accept comments/PIs in appended documents by dropping them
    /// (recorded per WAL record so replay vectorizes identically).
    pub drop_unrepresentable: bool,
    /// Overrides the `VX_WAL_SYNC` environment sync policy.
    pub sync: Option<SyncMode>,
}

/// What an append journaled.
#[derive(Debug, Clone)]
pub struct AppendReport {
    pub docs: u64,
    /// Frame bytes written to the WAL.
    pub wal_bytes: u64,
    pub first_seq: u64,
    pub last_seq: u64,
    /// Segment file the batch went to.
    pub segment: String,
    /// Whether the batch was fsync'd before returning.
    pub synced: bool,
}

/// What a compaction did.
#[derive(Debug, Clone)]
pub struct CompactReport {
    /// False when the WAL had nothing pending (no-op).
    pub compacted: bool,
    /// Active generation after the call.
    pub generation: u32,
    /// WAL records folded into the new generation.
    pub records_applied: u64,
    /// Appended documents among them.
    pub docs_merged: u64,
    /// The new generation's directory (the old base if no-op).
    pub gen_dir: PathBuf,
}

impl Store {
    /// The directory holding the active generation's files — `dir`
    /// itself for flat stores, `dir/gen-NNNN` after a compaction.
    pub fn base_dir(dir: &Path) -> Result<PathBuf> {
        Ok(resolve_layout(dir)?.base())
    }

    /// Opens the store with full layout/WAL detail; [`Store::open`] is
    /// this minus the report. Cleans stale temp files, loads the active
    /// generation strictly, then replays any WAL tail into the
    /// in-memory overlay.
    pub fn open_report(dir: &Path) -> Result<OpenReport> {
        let layout = resolve_layout(dir)?;
        let mut cleaned = cleanup_stale(&layout);
        let base = layout.base();
        let (doc, base_catalog) = Store::load_base(&base)?;
        let structural = load_structural(&base, &doc);

        let wal = Wal::open(dir);
        // A crash between the CURRENT swap and compaction's purge
        // leaves fully-applied segments behind; the next compact
        // no-ops, so drop them here (best-effort, like the rest of the
        // salvage) or they are rescanned on every open forever.
        if layout.wal_applied > 0 {
            if let Ok(purged) = wal.purge_upto(layout.wal_applied) {
                if purged > 0 {
                    cleaned.push(format!("wal: {purged} applied segment(s)"));
                }
            }
        }
        let scan = wal.scan().map_err(wal_error)?;
        let pending: Vec<&Record> = scan
            .records
            .iter()
            .filter(|r| r.seq > layout.wal_applied && r.kind == KIND_APPEND_DOC)
            .collect();
        let mut status = WalStatus {
            segments: scan.segments.len() as u64,
            wal_bytes: scan.bytes,
            pending_records: pending.len() as u64,
            pending_docs: pending.len() as u64,
            pending_bytes: pending.iter().map(|r| r.body.len() as u64).sum(),
            torn_bytes: scan.torn_bytes,
            applied_seq: layout.wal_applied,
        };

        let (doc, catalog, structural) = if pending.is_empty() {
            let catalog = base_catalog.clone();
            (doc, catalog, structural)
        } else {
            status.applied_seq = pending.iter().map(|r| r.seq).max().unwrap_or(0);
            let merged = merge_pending(&doc, &pending)?;
            let catalog = overlay_catalog(&base_catalog, &merged);
            if vx_obs::log_enabled() {
                vx_obs::event(
                    "wal.replay",
                    &[
                        ("dir", vx_obs::Value::Str(&dir.display().to_string())),
                        ("records", vx_obs::Value::U64(status.pending_records)),
                        ("docs", vx_obs::Value::U64(status.pending_docs)),
                        ("bytes", vx_obs::Value::U64(status.pending_bytes)),
                        ("torn_bytes", vx_obs::Value::U64(status.torn_bytes)),
                        ("applied_seq", vx_obs::Value::U64(status.applied_seq)),
                    ],
                );
            }
            // Replay re-vectorizes into a fresh arena whose node ids
            // have nothing to do with the base generation's — the
            // persisted index is stale for the merged document.
            (merged, catalog, None)
        };

        Ok(OpenReport {
            doc,
            catalog,
            base_catalog,
            generation: layout.generation,
            base_dir: base,
            wal: status,
            cleaned,
            structural,
        })
    }

    /// Journals one XML document read from `reader` to the store's WAL.
    /// The document becomes part of the store's answer set on the next
    /// open (or server reload) and is folded into the on-disk files by
    /// [`Store::compact`]. Validation happens *before* journaling: the
    /// bytes must be well-formed XML whose root element carries the
    /// store's root tag and no attributes, and whose content
    /// vectorizes under `options`.
    pub fn append_stream<R: Read>(
        dir: &Path,
        mut reader: R,
        options: &AppendOptions,
    ) -> Result<AppendReport> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Store::append_batch(dir, &[bytes], options)
    }

    /// As [`Store::append_stream`] for several documents in one batch:
    /// all are validated, then journaled and group-committed with a
    /// single fsync — either every document is durable or none is.
    pub fn append_batch(
        dir: &Path,
        docs: &[Vec<u8>],
        options: &AppendOptions,
    ) -> Result<AppendReport> {
        if docs.is_empty() {
            return Err(CoreError::Unsupported("append of zero documents".into()));
        }
        let layout = resolve_layout(dir)?;
        let base = layout.base();
        let root_name = store_root_name(&base)?;
        let vectorize_options = VectorizeOptions {
            drop_unrepresentable: options.drop_unrepresentable,
        };
        for bytes in docs {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| CoreError::Unsupported("appended document is not UTF-8".into()))?;
            let parsed = vx_xml::parse(text)?;
            if parsed.root.name != root_name {
                return Err(CoreError::Unsupported(format!(
                    "appended document root `{}` does not match store root `{root_name}`",
                    parsed.root.name
                )));
            }
            if !parsed.root.attributes.is_empty() {
                return Err(CoreError::Unsupported(
                    "appended document root must not carry attributes".into(),
                ));
            }
            // Full vectorization validates representability (comments,
            // PIs) with exactly the replay-time options.
            vectorize_with(&parsed, &vectorize_options)?;
        }

        let sync = options.sync.unwrap_or_else(SyncMode::from_env);
        let wal = Wal::with_sync(dir, sync);
        let flags = if options.drop_unrepresentable {
            FLAG_DROP_UNREPRESENTABLE
        } else {
            0
        };
        let entries: Vec<(u8, u8, &[u8])> = docs
            .iter()
            .map(|bytes| (KIND_APPEND_DOC, flags, bytes.as_slice()))
            .collect();
        let appended = wal
            .append(layout.wal_applied + 1, &entries)
            .map_err(wal_error)?;
        if vx_obs::log_enabled() {
            vx_obs::event(
                "wal.append",
                &[
                    ("dir", vx_obs::Value::Str(&dir.display().to_string())),
                    ("docs", vx_obs::Value::U64(docs.len() as u64)),
                    ("bytes", vx_obs::Value::U64(appended.bytes)),
                    ("first_seq", vx_obs::Value::U64(appended.first_seq)),
                    ("last_seq", vx_obs::Value::U64(appended.last_seq)),
                    ("segment", vx_obs::Value::Str(&appended.segment)),
                    ("synced", vx_obs::Value::Bool(appended.synced)),
                ],
            );
        }
        Ok(AppendReport {
            docs: docs.len() as u64,
            wal_bytes: appended.bytes,
            first_seq: appended.first_seq,
            last_seq: appended.last_seq,
            segment: appended.segment,
            synced: appended.synced,
        })
    }

    /// Folds the WAL overlay into a fresh generation: writes
    /// `gen-NNNN/` as a complete store (byte-identical to a
    /// from-scratch ingest of the combined document), fsyncs it,
    /// atomically swaps the `CURRENT` manifest, then purges applied WAL
    /// segments and the superseded generation. A crash anywhere leaves
    /// a store that opens to either the same appended state (old
    /// generation + WAL) or the identical new generation — never both
    /// and never neither. No-op when the WAL has nothing pending.
    pub fn compact(dir: &Path, compaction: Compaction) -> Result<CompactReport> {
        let report = Store::open_report(dir)?;
        if report.wal.pending_records == 0 {
            return Ok(CompactReport {
                compacted: false,
                generation: report.generation,
                records_applied: 0,
                docs_merged: 0,
                gen_dir: report.base_dir,
            });
        }
        let sync = SyncMode::from_env();
        let new_generation = report.generation + 1;
        let gen_dir = dir.join(generation_dir_name(new_generation));
        vx_obs::crash_point("compact.before_gen");
        if gen_dir.exists() {
            // Leftover from a compaction that crashed before the
            // manifest swap; rebuild it from scratch.
            fs::remove_dir_all(&gen_dir)?;
        }
        Store::save(&gen_dir, &report.doc, compaction)?;
        if sync == SyncMode::Data {
            for entry in fs::read_dir(&gen_dir)? {
                let entry = entry?;
                if let Ok(file) = fs::File::open(entry.path()) {
                    let _ = file.sync_all();
                }
            }
            vx_wal::sync_dir(&gen_dir);
            vx_wal::sync_dir(dir);
        }
        vx_obs::crash_point("compact.before_current");
        write_current_atomic(dir, new_generation, report.wal.applied_seq, sync)?;
        vx_obs::crash_point("compact.after_current");

        // Past the commit point: everything below is cleanup that the
        // next open redoes if we die here.
        let wal = Wal::with_sync(dir, sync);
        let _ = wal.purge_upto(report.wal.applied_seq);
        if report.generation == 0 {
            let _ = remove_flat_files(dir);
        } else {
            let _ = fs::remove_dir_all(dir.join(generation_dir_name(report.generation)));
        }
        if vx_obs::log_enabled() {
            vx_obs::event(
                "store.compact",
                &[
                    ("dir", vx_obs::Value::Str(&dir.display().to_string())),
                    ("generation", vx_obs::Value::U64(new_generation as u64)),
                    ("records", vx_obs::Value::U64(report.wal.pending_records)),
                    ("docs", vx_obs::Value::U64(report.wal.pending_docs)),
                    ("applied_seq", vx_obs::Value::U64(report.wal.applied_seq)),
                    (
                        "vectors",
                        vx_obs::Value::U64(report.catalog.vectors.len() as u64),
                    ),
                ],
            );
        }
        Ok(CompactReport {
            compacted: true,
            generation: new_generation,
            records_applied: report.wal.pending_records,
            docs_merged: report.wal.pending_docs,
            gen_dir,
        })
    }
}

fn wal_error(e: vx_wal::WalError) -> CoreError {
    match e {
        vx_wal::WalError::Io(e) => CoreError::Io(e),
        other => CoreError::Corrupt(other.to_string()),
    }
}

/// The store's root element name, read from the active generation's
/// skeleton (cheap: the skeleton is the compressed DAG, not the data).
fn store_root_name(base: &Path) -> Result<String> {
    // A real store must have a catalog; the check distinguishes "not a
    // store" from deeper damage that open would diagnose.
    if !base.join("catalog.json").exists() {
        return Err(CoreError::Corrupt(format!(
            "{} is not a store (no catalog.json)",
            base.display()
        )));
    }
    let bytes = fs::read(base.join("skeleton.vxsk"))?;
    let (skeleton, root) = skformat::read(&bytes)?;
    let name_id = skeleton
        .node(root)
        .name
        .ok_or_else(|| CoreError::Corrupt("store root is a text node".into()))?;
    Ok(skeleton.name(name_id).to_string())
}

/// Splices the pending appended documents after the base document's
/// root children and re-vectorizes the combination. This *is* the
/// recovery semantics: the overlay is exactly `VEC` of the document a
/// from-scratch ingest of base + appends would build, so query results
/// and a later compaction agree byte-for-byte.
fn merge_pending(base: &VecDoc, pending: &[&Record]) -> Result<VecDoc> {
    let mut dom = crate::reconstruct::reconstruct(base)?;
    let mut drop_unrepresentable = false;
    for record in pending {
        let text = std::str::from_utf8(&record.body).map_err(|_| {
            CoreError::Corrupt(format!("WAL record {}: body is not UTF-8", record.seq))
        })?;
        let appended = vx_xml::parse(text)
            .map_err(|e| CoreError::Corrupt(format!("WAL record {}: {e}", record.seq)))?;
        if appended.root.name != dom.root.name {
            return Err(CoreError::Corrupt(format!(
                "WAL record {}: root `{}` does not match store root `{}`",
                record.seq, appended.root.name, dom.root.name
            )));
        }
        dom.root.children.extend(appended.root.children);
        drop_unrepresentable |= record.flags & FLAG_DROP_UNREPRESENTABLE != 0;
    }
    vectorize_with(
        &dom,
        &VectorizeOptions {
            drop_unrepresentable,
        },
    )
}

/// Synthesizes the catalog of a merged (overlay) document: untouched
/// vectors keep their on-disk row, extended vectors re-count with
/// `version` 0, and WAL-only paths get file-less rows (extending the
/// catalog in place for schema evolution under appends).
fn overlay_catalog(base: &Catalog, doc: &VecDoc) -> Catalog {
    let by_path: HashMap<&str, &CatalogEntry> =
        base.vectors.iter().map(|e| (e.path.as_str(), e)).collect();
    let vectors = doc
        .vectors()
        .iter()
        .map(|v| match by_path.get(v.path.as_str()) {
            Some(e) if e.count == v.values.len() as u64 => (*e).clone(),
            Some(e) => CatalogEntry {
                path: v.path.clone(),
                file: e.file.clone(),
                count: v.values.len() as u64,
                data_bytes: v.values.iter().map(|b| b.len() as u64).sum(),
                version: 0,
            },
            None => CatalogEntry {
                path: v.path.clone(),
                file: String::new(),
                count: v.values.len() as u64,
                data_bytes: v.values.iter().map(|b| b.len() as u64).sum(),
                version: 0,
            },
        })
        .collect();
    Catalog {
        vectors,
        node_count: doc.node_count(),
        text_bytes: doc.text_bytes(),
    }
}

/// Removes crash leftovers before a strict open: orphaned temp files
/// from interrupted atomic writes, the streaming-ingest spill file, and
/// storage superseded by the `CURRENT` manifest (old generations, stale
/// flat files). Generations *newer* than `CURRENT` are left alone — an
/// in-flight compaction owns them. Best-effort: cleanup failures never
/// Best-effort load of the persisted structural index. Absent, damaged,
/// or stale (`matches` fails) files all mean "rebuild from the
/// skeleton"; a broken `.vxpi` is never an open failure, mirroring how
/// `.vec` salvage degrades instead of refusing.
fn load_structural(base: &Path, doc: &crate::vecdoc::VecDoc) -> Option<vx_skeleton::StructIndex> {
    let bytes = fs::read(base.join("index.vxpi")).ok()?;
    let index = vx_skeleton::read_index(&bytes).ok()?;
    index.matches(&doc.skeleton, doc.root?).then_some(index)
}

/// fail the open.
fn cleanup_stale(layout: &StoreLayout) -> Vec<String> {
    fn remove_file(cleaned: &mut Vec<String>, path: PathBuf) {
        if path.is_file() && fs::remove_file(&path).is_ok() {
            cleaned.push(
                path.file_name()
                    .unwrap_or_default()
                    .to_string_lossy()
                    .into_owned(),
            );
        }
    }
    let mut cleaned = Vec::new();
    remove_file(&mut cleaned, layout.dir.join("catalog.json.tmp"));
    remove_file(&mut cleaned, layout.dir.join("CURRENT.tmp"));
    remove_file(&mut cleaned, layout.dir.join(".ingest.spill"));
    if layout.generation > 0 {
        remove_file(&mut cleaned, layout.base().join("catalog.json.tmp"));
        // Flat files and older generations are superseded storage: a
        // crash between the manifest swap and compaction's cleanup
        // leaves them behind.
        for name in ["skeleton.vxsk", "index.vxpi", "catalog.json"] {
            remove_file(&mut cleaned, layout.dir.join(name));
        }
        if let Ok(entries) = fs::read_dir(&layout.dir) {
            for entry in entries.filter_map(|e| e.ok()) {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".vec") {
                    remove_file(&mut cleaned, layout.dir.join(&name));
                } else if let Some(number) = name
                    .strip_prefix("gen-")
                    .and_then(|s| s.parse::<u32>().ok())
                {
                    if number < layout.generation && fs::remove_dir_all(entry.path()).is_ok() {
                        cleaned.push(name);
                    }
                }
            }
        }
    }
    if !cleaned.is_empty() && vx_obs::log_enabled() {
        vx_obs::event(
            "store.salvage_cleanup",
            &[
                ("dir", vx_obs::Value::Str(&layout.dir.display().to_string())),
                ("removed", vx_obs::Value::U64(cleaned.len() as u64)),
                ("names", vx_obs::Value::Str(&cleaned.join(","))),
            ],
        );
    }
    cleaned
}

/// Deletes a superseded flat (generation-0) store's files from the top
/// level of `dir` — called after the `CURRENT` swap made `gen-0001`
/// authoritative.
fn remove_flat_files(dir: &Path) -> std::io::Result<()> {
    for name in ["skeleton.vxsk", "index.vxpi", "catalog.json"] {
        let _ = fs::remove_file(dir.join(name));
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".vec") {
            let _ = fs::remove_file(entry.path());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruct::reconstruct;
    use crate::vectorize::vectorize;

    const BASE: &str = "<lib><book><title>T1</title><author>A</author></book></lib>";
    const ADD1: &str = "<lib><book><title>T2</title><author>B</author></book></lib>";
    const ADD2: &str = "<lib><book><title>T3</title><year>2005</year></book></lib>";

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vx-append-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn save_fresh(dir: &Path, xml: &str) {
        let doc = vx_xml::parse(xml).unwrap();
        Store::save(dir, &vectorize(&doc).unwrap(), Compaction::None).unwrap();
    }

    /// The document a from-scratch ingest of base + appends would see.
    fn combined(parts: &[&str]) -> vx_xml::Document {
        let mut dom = vx_xml::parse(parts[0]).unwrap();
        for part in &parts[1..] {
            let extra = vx_xml::parse(part).unwrap();
            dom.root.children.extend(extra.root.children);
        }
        dom
    }

    fn dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file())
            .map(|e| {
                (
                    e.file_name().to_string_lossy().into_owned(),
                    fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    }

    #[test]
    fn append_then_open_serves_the_overlay() {
        let dir = temp_dir("overlay");
        save_fresh(&dir, BASE);
        let report =
            Store::append_batch(&dir, &[ADD1.into(), ADD2.into()], &AppendOptions::default())
                .unwrap();
        assert_eq!((report.docs, report.first_seq, report.last_seq), (2, 1, 2));

        let open = Store::open_report(&dir).unwrap();
        assert_eq!(open.generation, 0);
        assert_eq!(open.wal.pending_docs, 2);
        assert_eq!(open.wal.applied_seq, 2);
        assert_eq!(
            reconstruct(&open.doc).unwrap().root,
            combined(&[BASE, ADD1, ADD2]).root
        );
        // Extended vector keeps its file name but re-counts; the path
        // introduced only by ADD2 gets a file-less entry.
        let title = open
            .catalog
            .vectors
            .iter()
            .find(|e| e.path.ends_with("title"))
            .unwrap();
        assert_eq!((title.count, title.file.as_str()), (3, "v000000.vec"));
        let year = open
            .catalog
            .vectors
            .iter()
            .find(|e| e.path.ends_with("year"))
            .unwrap();
        assert_eq!((year.count, year.file.as_str()), (1, ""));
        // The on-disk base is untouched.
        assert_eq!(open.base_catalog.vectors.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_matches_fresh_ingest_byte_for_byte() {
        let dir = temp_dir("compact");
        save_fresh(&dir, BASE);
        Store::append_batch(&dir, &[ADD1.into()], &AppendOptions::default()).unwrap();
        Store::append_batch(&dir, &[ADD2.into()], &AppendOptions::default()).unwrap();
        let report = Store::compact(&dir, Compaction::None).unwrap();
        assert!(report.compacted);
        assert_eq!(report.generation, 1);
        assert_eq!(report.records_applied, 2);

        // gen-0001 must be byte-identical to a from-scratch save of the
        // combined document.
        let fresh = temp_dir("compact-fresh");
        let dom = combined(&[BASE, ADD1, ADD2]);
        Store::save(&fresh, &vectorize(&dom).unwrap(), Compaction::None).unwrap();
        assert_eq!(dir_bytes(&report.gen_dir), dir_bytes(&fresh));

        // The flat files are gone, the WAL is purged, and a reopen sees
        // the same document with nothing pending.
        assert!(!dir.join("catalog.json").exists());
        let open = Store::open_report(&dir).unwrap();
        assert_eq!(open.generation, 1);
        assert_eq!(open.wal.pending_records, 0);
        assert_eq!(reconstruct(&open.doc).unwrap().root, dom.root);

        // Appending after compaction keeps sequences monotonic and a
        // second compaction advances the generation.
        Store::append_batch(&dir, &[ADD1.into()], &AppendOptions::default()).unwrap();
        let open = Store::open_report(&dir).unwrap();
        assert_eq!(open.wal.pending_records, 1);
        assert_eq!(open.wal.applied_seq, 3);
        let report = Store::compact(&dir, Compaction::None).unwrap();
        assert_eq!(report.generation, 2);
        assert!(!dir.join(generation_dir_name(1)).exists());
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&fresh);
    }

    #[test]
    fn compact_without_pending_records_is_a_noop() {
        let dir = temp_dir("noop");
        save_fresh(&dir, BASE);
        let report = Store::compact(&dir, Compaction::None).unwrap();
        assert!(!report.compacted);
        assert_eq!(report.generation, 0);
        assert!(dir.join("catalog.json").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_validates_before_journaling() {
        let dir = temp_dir("validate");
        save_fresh(&dir, BASE);
        for bad in [
            "<shelf><book/></shelf>",                // wrong root tag
            "<lib edition=\"2\"><book/></lib>",      // root attributes
            "<lib><book><!-- note --></book></lib>", // unrepresentable, strict
            "<lib><book>",                           // malformed
        ] {
            assert!(
                Store::append_batch(&dir, &[bad.into()], &AppendOptions::default()).is_err(),
                "append accepted {bad:?}"
            );
        }
        // Nothing was journaled by the failures.
        let open = Store::open_report(&dir).unwrap();
        assert_eq!(open.wal.pending_records, 0);
        // drop_unrepresentable makes the comment case acceptable, and the
        // flag round-trips through replay.
        Store::append_batch(
            &dir,
            &["<lib><book><!-- note --><title>T4</title></book></lib>".into()],
            &AppendOptions {
                drop_unrepresentable: true,
                ..Default::default()
            },
        )
        .unwrap();
        let open = Store::open_report(&dir).unwrap();
        assert_eq!(open.wal.pending_docs, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_cleans_stale_temp_files() {
        let dir = temp_dir("stale");
        save_fresh(&dir, BASE);
        fs::write(dir.join("catalog.json.tmp"), b"{").unwrap();
        fs::write(dir.join("CURRENT.tmp"), b"{").unwrap();
        fs::write(dir.join(".ingest.spill"), b"junk").unwrap();
        let open = Store::open_report(&dir).unwrap();
        let mut cleaned = open.cleaned.clone();
        cleaned.sort();
        assert_eq!(
            cleaned,
            [".ingest.spill", "CURRENT.tmp", "catalog.json.tmp"]
        );
        assert!(!dir.join("catalog.json.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_cleans_superseded_flat_files_after_generation_swap() {
        let dir = temp_dir("swap");
        save_fresh(&dir, BASE);
        Store::append_batch(&dir, &[ADD1.into()], &AppendOptions::default()).unwrap();
        Store::compact(&dir, Compaction::None).unwrap();
        // Simulate a crash that left flat files behind: recreate them.
        fs::write(dir.join("catalog.json"), b"{}").unwrap();
        fs::write(dir.join("skeleton.vxsk"), b"junk").unwrap();
        fs::write(dir.join("v000000.vec"), b"junk").unwrap();
        let open = Store::open_report(&dir).unwrap();
        assert!(open.cleaned.contains(&"catalog.json".to_string()));
        assert!(!dir.join("v000000.vec").exists());
        assert_eq!(
            reconstruct(&open.doc).unwrap().root,
            combined(&[BASE, ADD1]).root
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_purges_applied_wal_segments_left_by_a_crashed_compaction() {
        let dir = temp_dir("purge-on-open");
        save_fresh(&dir, BASE);
        Store::append_batch(&dir, &[ADD1.into()], &AppendOptions::default()).unwrap();
        Store::compact(&dir, Compaction::None).unwrap();
        // Simulate a crash between the CURRENT swap and the purge: put
        // a segment holding only already-applied records (seq 1 <=
        // wal_applied) back into wal/.
        let wal = vx_wal::Wal::with_sync(&dir, SyncMode::Off);
        wal.append(1, &[(KIND_APPEND_DOC, 0, ADD1.as_bytes())])
            .unwrap();

        // Open drops the applied segment instead of rescanning it on
        // every open forever; answers are unaffected.
        let open = Store::open_report(&dir).unwrap();
        assert_eq!(open.wal.pending_records, 0);
        assert_eq!(open.wal.segments, 0, "applied segment must be purged");
        assert!(open.cleaned.iter().any(|c| c.starts_with("wal:")));
        assert_eq!(fs::read_dir(wal.dir()).unwrap().count(), 0);
        assert_eq!(
            reconstruct(&open.doc).unwrap().root,
            combined(&[BASE, ADD1]).root
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn current_manifest_round_trips_and_rejects_damage() {
        let dir = temp_dir("manifest");
        fs::create_dir_all(&dir).unwrap();
        write_current_atomic(&dir, 3, 17, SyncMode::Off).unwrap();
        let layout = resolve_layout(&dir).unwrap();
        assert_eq!((layout.generation, layout.wal_applied), (3, 17));
        assert_eq!(layout.base(), dir.join("gen-0003"));
        fs::write(dir.join(CURRENT_FILE), b"{\"generation\": \"gen-zero\"}").unwrap();
        assert!(resolve_layout(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
