//! The in-memory vectorized document `VEC(T) = (S, V)`.

use std::collections::HashMap;
use vx_skeleton::{NodeId, Skeleton};

/// One data vector: every text value of one root-to-text tag path, in
/// document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathVector {
    /// Tag path joined with `/`, e.g. `MedlineCitationSet/MedlineCitation/PMID`.
    /// Attributes appear as a final `@name` component.
    pub path: String,
    pub values: Vec<Vec<u8>>,
}

/// A vectorized document: compressed skeleton + data vectors.
///
/// Vectors are kept in *first-occurrence document order* — the order the
/// catalog lists them in and the order `v{NNNNNN}.vec` files are numbered.
#[derive(Debug, Clone, Default)]
pub struct VecDoc {
    pub skeleton: Skeleton,
    pub root: Option<NodeId>,
    vectors: Vec<PathVector>,
    lookup: HashMap<String, usize>,
    /// Persistent value indexes, keyed by vector index: record positions
    /// sorted by `(value bytes, position)`. Populated from version-3
    /// `.vec` files at store-open time; in-memory documents have none.
    sorted: HashMap<usize, Vec<u32>>,
}

impl VecDoc {
    pub fn new(skeleton: Skeleton, root: Option<NodeId>) -> Self {
        VecDoc {
            skeleton,
            root,
            vectors: Vec::new(),
            lookup: HashMap::new(),
            sorted: HashMap::new(),
        }
    }

    /// The vectors in catalog order.
    pub fn vectors(&self) -> &[PathVector] {
        &self.vectors
    }

    /// Vector index for a path, creating an empty vector on first use.
    pub fn vector_index(&mut self, path: &str) -> usize {
        if let Some(&i) = self.lookup.get(path) {
            return i;
        }
        let i = self.vectors.len();
        self.vectors.push(PathVector {
            path: path.to_string(),
            values: Vec::new(),
        });
        self.lookup.insert(path.to_string(), i);
        i
    }

    /// Appends a value to the vector of `path`.
    pub fn push_value(&mut self, path: &str, value: Vec<u8>) {
        let i = self.vector_index(path);
        self.vectors[i].values.push(value);
    }

    /// Inserts a whole vector (store loading); replaces an existing path.
    /// Replacement drops any persistent value index recorded for the
    /// slot — the new values make it stale.
    pub fn insert_vector(&mut self, vector: PathVector) {
        match self.lookup.get(&vector.path) {
            Some(&i) => {
                self.sorted.remove(&i);
                self.vectors[i] = vector;
            }
            None => {
                self.lookup.insert(vector.path.clone(), self.vectors.len());
                self.vectors.push(vector);
            }
        }
    }

    /// Records the persistent value index for the vector at `vec_index`
    /// (store loading, version-3 files).
    pub fn set_sorted_run(&mut self, vec_index: usize, order: Vec<u32>) {
        debug_assert_eq!(order.len(), self.vectors[vec_index].values.len());
        self.sorted.insert(vec_index, order);
    }

    /// The persistent value index for the vector at `vec_index`, if one
    /// was loaded: record positions ordered by value bytes ascending,
    /// ties in document order.
    pub fn sorted_run(&self, vec_index: usize) -> Option<&[u32]> {
        self.sorted.get(&vec_index).map(|v| v.as_slice())
    }

    /// Vector lookup by path.
    pub fn vector(&self, path: &str) -> Option<&PathVector> {
        self.lookup.get(path).map(|&i| &self.vectors[i])
    }

    /// Index of the vector for `path` in [`VecDoc::vectors`], if present.
    pub fn vector_position(&self, path: &str) -> Option<usize> {
        self.lookup.get(path).copied()
    }

    /// Total text bytes across all vectors.
    pub fn text_bytes(&self) -> u64 {
        self.vectors
            .iter()
            .flat_map(|v| v.values.iter())
            .map(|v| v.len() as u64)
            .sum()
    }

    /// Total number of text occurrences across all vectors.
    pub fn text_count(&self) -> u64 {
        self.vectors.iter().map(|v| v.values.len() as u64).sum()
    }

    /// Expanded (uncompressed) node count of the document: elements plus
    /// text nodes, runs multiplied out. The catalog's `node_count`.
    pub fn node_count(&self) -> u64 {
        self.root.map_or(0, |r| self.skeleton.expanded_size(r))
    }
}
