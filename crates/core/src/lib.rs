//! `vx-core` — vectorization and the persistent store (DESIGN.md row 6).
//!
//! Implements the paper's §2 end-to-end:
//!
//! * [`vectorize`] — `VEC(T) = (S, V)`: one linear pass over the DOM that
//!   hash-conses the skeleton bottom-up and appends every text value to the
//!   data vector of its root-to-text tag path (Prop 2.1, `O(|T|)`).
//! * [`reconstruct`] — the inverse: one skeleton walk that pulls values
//!   from per-path cursors in document order (Prop 2.2, `O(|T|)`,
//!   lossless).
//! * [`Store`] — the on-disk layout used by the surviving
//!   `bench_results/stores/`: a directory with `skeleton.vxsk`,
//!   `v{NNNNNN}.vec`, and `catalog.json`, plus a salvage loader for stores
//!   damaged by the seed capture's byte-dropping sanitizer.

mod append;
mod builder;
mod handle;
mod ingest;
pub mod json;
mod reconstruct;
mod store;
mod vecdoc;
mod vectorize;

pub use append::{
    generation_dir_name, resolve_layout, AppendOptions, AppendReport, CompactReport, OpenReport,
    StoreLayout, WalStatus, CURRENT_FILE,
};
pub use builder::VecDocBuilder;
pub use handle::StoreHandle;
pub use ingest::{IngestOptions, IngestReport};
pub use reconstruct::{reconstruct, reconstruct_salvage, ReconstructReport};
pub use store::{Catalog, CatalogEntry, Compaction, SalvageStore, Store};
pub use vecdoc::{PathVector, VecDoc};
pub use vectorize::{vectorize, vectorize_with, VectorizeOptions};

use std::fmt;

/// Errors produced by the core layer (converging point for the layers
/// below; `xmlvec::Error` wraps this one level further up).
#[derive(Debug)]
pub enum CoreError {
    Xml(vx_xml::XmlError),
    Storage(vx_storage::StorageError),
    Skeleton(vx_skeleton::SkeletonError),
    Vector(vx_vector::VectorError),
    Io(std::io::Error),
    /// Malformed `catalog.json`.
    Catalog(String),
    /// Input DOM contains a construct vectorization cannot represent
    /// losslessly (comments / processing instructions) in strict mode.
    Unsupported(String),
    /// Cross-file inconsistency in a store (counts, missing vectors, …).
    Corrupt(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Xml(e) => write!(f, "{e}"),
            CoreError::Storage(e) => write!(f, "{e}"),
            CoreError::Skeleton(e) => write!(f, "{e}"),
            CoreError::Vector(e) => write!(f, "{e}"),
            CoreError::Io(e) => write!(f, "store I/O error: {e}"),
            CoreError::Catalog(m) => write!(f, "bad catalog.json: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported content: {m}"),
            CoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<vx_xml::XmlError> for CoreError {
    fn from(e: vx_xml::XmlError) -> Self {
        CoreError::Xml(e)
    }
}

impl From<vx_storage::StorageError> for CoreError {
    fn from(e: vx_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<vx_skeleton::SkeletonError> for CoreError {
    fn from(e: vx_skeleton::SkeletonError) -> Self {
        CoreError::Skeleton(e)
    }
}

impl From<vx_vector::VectorError> for CoreError {
    fn from(e: vx_vector::VectorError) -> Self {
        CoreError::Vector(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
