//! The persistent store: a directory with `skeleton.vxsk`, numbered
//! `v{NNNNNN}.vec` files, and `catalog.json`.
//!
//! ```json
//! {
//!   "vectors": [
//!     {"path": "…/PMID", "file": "v000000.vec", "count": 4000,
//!      "data_bytes": 36000, "version": 3},
//!     …
//!   ],
//!   "node_count": 168129,
//!   "text_bytes": 1620783
//! }
//! ```
//!
//! `count` is the number of text occurrences of the path, `data_bytes` the
//! byte length of the `.vec` record/code stream, `node_count` the expanded
//! (uncompressed) element+text node count of the document, and
//! `text_bytes` the sum of raw value lengths. This matches the surviving
//! `bench_results/stores/` catalogs in structure. `version` records each
//! file's `.vec` format version so mixed v1/v2/v3 stores open cleanly;
//! catalogs written before it existed parse with version 0 ("unrecorded")
//! and the file's own header stays authoritative.

use crate::json::{self, Json};
use crate::vecdoc::{PathVector, VecDoc};
use crate::{CoreError, Result};
use std::fs;
use std::path::{Path, PathBuf};
use vx_skeleton::format as skformat;
use vx_vector::{Vector, Writer as VectorWriter};

/// One catalog row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    pub path: String,
    pub file: String,
    pub count: u64,
    pub data_bytes: u64,
    /// `.vec` format version of the file (1 plain, 2 dict, 3 indexed).
    /// 0 means the catalog predates this field; the file header decides.
    pub version: u8,
}

/// The parsed `catalog.json`.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    pub vectors: Vec<CatalogEntry>,
    pub node_count: u64,
    pub text_bytes: u64,
}

impl Catalog {
    pub fn parse(text: &str) -> Result<Catalog> {
        let value = json::parse(text).map_err(CoreError::Catalog)?;
        let vectors_json = value
            .get("vectors")
            .and_then(Json::as_array)
            .ok_or_else(|| CoreError::Catalog("missing `vectors` array".into()))?;
        let mut vectors = Vec::with_capacity(vectors_json.len());
        for (i, row) in vectors_json.iter().enumerate() {
            let field = |name: &str| {
                row.get(name)
                    .ok_or_else(|| CoreError::Catalog(format!("vector {i}: missing `{name}`")))
            };
            vectors.push(CatalogEntry {
                path: field("path")?
                    .as_str()
                    .ok_or_else(|| CoreError::Catalog(format!("vector {i}: `path` not a string")))?
                    .to_string(),
                file: field("file")?
                    .as_str()
                    .ok_or_else(|| CoreError::Catalog(format!("vector {i}: `file` not a string")))?
                    .to_string(),
                count: field("count")?
                    .as_u64()
                    .ok_or_else(|| CoreError::Catalog(format!("vector {i}: bad `count`")))?,
                data_bytes: field("data_bytes")?
                    .as_u64()
                    .ok_or_else(|| CoreError::Catalog(format!("vector {i}: bad `data_bytes`")))?,
                // Absent in catalogs written before the field existed
                // (golden stores) — tolerate, don't error.
                version: row.get("version").and_then(Json::as_u64).unwrap_or(0) as u8,
            });
        }
        let u64_field = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| CoreError::Catalog(format!("missing or bad `{name}`")))
        };
        Ok(Catalog {
            vectors,
            node_count: u64_field("node_count")?,
            text_bytes: u64_field("text_bytes")?,
        })
    }

    pub fn to_json(&self) -> String {
        let vectors = self
            .vectors
            .iter()
            .map(|e| {
                Json::Object(vec![
                    ("path".into(), Json::Str(e.path.clone())),
                    ("file".into(), Json::Str(e.file.clone())),
                    ("count".into(), Json::Num(e.count as f64)),
                    ("data_bytes".into(), Json::Num(e.data_bytes as f64)),
                    ("version".into(), Json::Num(e.version as f64)),
                ])
            })
            .collect();
        json::to_string_pretty(&Json::Object(vec![
            ("vectors".into(), Json::Array(vectors)),
            ("node_count".into(), Json::Num(self.node_count as f64)),
            ("text_bytes".into(), Json::Num(self.text_bytes as f64)),
        ]))
    }
}

/// Vector file compaction policy on save.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compaction {
    /// Always write plain (version 1) vectors.
    #[default]
    None,
    /// Per vector, write the dictionary form when it is smaller (§6's
    /// compacted-store extension; the `ss-1500-compact` golden store).
    Auto,
}

/// Persistent store operations.
pub struct Store;

impl Store {
    /// Writes `doc` as a store directory (created if needed). Existing
    /// vector files in the directory are not deleted first; the catalog is
    /// the source of truth for which files belong to the store.
    pub fn save(dir: &Path, doc: &VecDoc, compaction: Compaction) -> Result<Catalog> {
        let root = doc
            .root
            .ok_or_else(|| CoreError::Corrupt("cannot save a document with no root".into()))?;
        fs::create_dir_all(dir)?;
        let skeleton_bytes = skformat::write(&doc.skeleton, root);
        fs::write(dir.join("skeleton.vxsk"), &skeleton_bytes)?;
        write_structural_index(dir, &skeleton_bytes)?;
        vx_obs::crash_point("store.mid_save");

        let mut entries = Vec::new();
        for (i, vector) in doc.vectors().iter().enumerate() {
            let mut writer = VectorWriter::new();
            for value in &vector.values {
                writer.push(value);
            }
            let bytes = match compaction {
                Compaction::None => writer.encode_plain(),
                Compaction::Auto => writer.encode_auto(),
            };
            // data stream = everything between the 5-byte header and the
            // 28-byte trailer minus the skip index; recompute from a strict
            // decode for an exact catalog.
            let decoded = Vector::decode(&bytes)?;
            let file = format!("v{i:06}.vec");
            fs::write(dir.join(&file), &bytes)?;
            entries.push(CatalogEntry {
                path: vector.path.clone(),
                file,
                count: vector.values.len() as u64,
                data_bytes: decoded.stats().data_bytes,
                version: decoded.stats().version,
            });
        }
        let catalog = Catalog {
            vectors: entries,
            node_count: doc.node_count(),
            text_bytes: doc.text_bytes(),
        };
        write_catalog_atomic(dir, &catalog)?;
        Ok(catalog)
    }

    /// Strict load: every file of the active generation must decode
    /// cleanly and agree with the catalog, then any WAL tail is replayed
    /// into the in-memory document (see `append.rs`). The returned
    /// catalog describes the document *including* the overlay; use
    /// [`Store::open_report`] for the on-disk base catalog and WAL
    /// detail.
    pub fn open(dir: &Path) -> Result<(VecDoc, Catalog)> {
        let report = Store::open_report(dir)?;
        Ok((report.doc, report.catalog))
    }

    /// Loads one generation directory strictly, with no layout
    /// resolution or WAL replay.
    pub(crate) fn load_base(dir: &Path) -> Result<(VecDoc, Catalog)> {
        let catalog = read_catalog(dir)?;
        let skeleton_bytes = fs::read(dir.join("skeleton.vxsk"))?;
        let (skeleton, root) = skformat::read(&skeleton_bytes)?;
        let mut doc = VecDoc::new(skeleton, Some(root));
        for entry in &catalog.vectors {
            let vector = Vector::open(&dir.join(&entry.file))?;
            if vector.len() != entry.count {
                return Err(CoreError::Corrupt(format!(
                    "vector `{}`: catalog says {} records, file has {}",
                    entry.path,
                    entry.count,
                    vector.len()
                )));
            }
            if vector.stats().data_bytes != entry.data_bytes {
                return Err(CoreError::Corrupt(format!(
                    "vector `{}`: catalog says {} data bytes, file has {}",
                    entry.path,
                    entry.data_bytes,
                    vector.stats().data_bytes
                )));
            }
            doc.insert_vector(PathVector {
                path: entry.path.clone(),
                values: vector.iter().map(<[u8]>::to_vec).collect(),
            });
            if let Some(order) = vector.sorted_order() {
                let pos = doc.vector_position(&entry.path).expect("just inserted");
                doc.set_sorted_run(pos, order.to_vec());
            }
        }
        Ok((doc, catalog))
    }

    /// Salvage load for the damaged golden stores: drives every reader in
    /// lenient mode off the catalog, tolerates missing vector files, and
    /// reports exactly what was recovered. Strictly read-only (so no
    /// stale-temp cleanup and no WAL replay; the active generation's
    /// files are still resolved through `CURRENT`).
    pub fn open_salvage(dir: &Path) -> Result<SalvageStore> {
        let dir = &Store::base_dir(dir)?;
        let catalog = read_catalog(dir)?;
        let skeleton_bytes = fs::read(dir.join("skeleton.vxsk"))?;
        let (raw, skeleton_report) = skformat::read_lenient(&skeleton_bytes)?;
        // The sanitizer shrank the root's damaged edge-count varint, so the
        // true root record is not necessarily last; pick the record with
        // the most edges (the root fans out to every top-level subtree).
        let root_record = raw
            .nodes
            .iter()
            .enumerate()
            .max_by_key(|(i, n)| (n.edges.len(), *i))
            .map(|(i, _)| i)
            .ok_or_else(|| CoreError::Corrupt("skeleton has no node records".into()))?;
        let (skeleton, root) = skformat::rebuild_lenient(&raw, root_record)?;
        let mut doc = VecDoc::new(skeleton, Some(root));
        let mut missing_files = Vec::new();
        let mut damaged_files = Vec::new();
        let mut loaded = 0usize;
        for entry in &catalog.vectors {
            let path: PathBuf = dir.join(&entry.file);
            if !path.exists() {
                missing_files.push(entry.file.clone());
                doc.insert_vector(PathVector {
                    path: entry.path.clone(),
                    values: Vec::new(),
                });
                continue;
            }
            // A damaged record-length varint can throw the whole stream
            // off; keep whatever the reader managed and carry on.
            let (values, sorted) = match Vector::open_salvage(&path, entry.count) {
                Ok(vector) => {
                    loaded += 1;
                    let sorted = vector.sorted_order().map(<[u32]>::to_vec);
                    (vector.iter().map(<[u8]>::to_vec).collect(), sorted)
                }
                Err(e) => {
                    damaged_files.push((entry.file.clone(), e.to_string()));
                    (Vec::new(), None)
                }
            };
            doc.insert_vector(PathVector {
                path: entry.path.clone(),
                values,
            });
            if let Some(order) = sorted {
                let pos = doc.vector_position(&entry.path).expect("just inserted");
                doc.set_sorted_run(pos, order);
            }
        }
        Ok(SalvageStore {
            doc,
            catalog,
            skeleton_report,
            raw_skeleton: raw,
            missing_files,
            damaged_files,
            vectors_loaded: loaded,
        })
    }
}

fn read_catalog(dir: &Path) -> Result<Catalog> {
    let text = fs::read_to_string(dir.join("catalog.json"))?;
    Catalog::parse(&text)
}

/// Writes `index.vxpi` — the persisted structural self-index — next to a
/// just-written `skeleton.vxsk`. The index must be built from the
/// *canonical* skeleton decoded back out of the file bytes, not from the
/// in-memory arena: the writer garbage-collects unreachable nodes and
/// densely renumbers the rest, so only the re-read arena's node ids match
/// what a later `Store::open` will see. Building from bytes also makes
/// the DOM and streaming ingest paths produce byte-identical `.vxpi`
/// files.
pub(crate) fn write_structural_index(dir: &Path, skeleton_bytes: &[u8]) -> Result<()> {
    let (canonical, root) = skformat::read(skeleton_bytes)?;
    let index = vx_skeleton::StructIndex::build(&canonical, root);
    fs::write(dir.join("index.vxpi"), vx_skeleton::write_index(&index))?;
    Ok(())
}

/// Writes `catalog.json` atomically: full content to a temp file in the
/// same directory, then rename over the final name. A crash mid-write can
/// therefore never leave a valid-looking catalog pointing at half-written
/// vectors — the store either has its previous catalog or the new one.
pub(crate) fn write_catalog_atomic(dir: &Path, catalog: &Catalog) -> Result<()> {
    let tmp = dir.join("catalog.json.tmp");
    fs::write(&tmp, catalog.to_json())?;
    if let Err(e) = fs::rename(&tmp, dir.join("catalog.json")) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// The result of a lenient store load.
pub struct SalvageStore {
    pub doc: VecDoc,
    pub catalog: Catalog,
    pub skeleton_report: skformat::SalvageReport,
    pub raw_skeleton: skformat::RawSkeleton,
    /// Catalog entries whose `.vec` file is absent on disk.
    pub missing_files: Vec<String>,
    /// Files present but undecodable even leniently, with the error.
    pub damaged_files: Vec<(String, String)>,
    pub vectors_loaded: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruct::reconstruct;
    use crate::vectorize::vectorize;
    use vx_xml::parse;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vx-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_open_reconstruct() {
        let src = "<lib><book><title>T1</title><author>A</author></book>\
                   <book><title>T2</title><author>B</author></book></lib>";
        let doc = parse(src).unwrap();
        let v = vectorize(&doc).unwrap();
        let dir = temp_dir("basic");
        let saved = Store::save(&dir, &v, Compaction::None).unwrap();
        assert_eq!(saved.vectors.len(), 2);
        assert_eq!(saved.vectors[0].file, "v000000.vec");
        assert_eq!(saved.node_count, doc.root.node_count());

        let (loaded, catalog) = Store::open(&dir).unwrap();
        assert_eq!(catalog.vectors, saved.vectors);
        let back = reconstruct(&loaded).unwrap();
        assert_eq!(back.root, doc.root);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compacted_store_round_trips() {
        // A low-cardinality column triggers dictionary compaction.
        let mut src = String::from("<t>");
        for i in 0..400 {
            src.push_str(&format!("<r><type>{}</type></r>", i % 5));
        }
        src.push_str("</t>");
        let doc = parse(&src).unwrap();
        let v = vectorize(&doc).unwrap();
        let dir = temp_dir("compact");
        let catalog = Store::save(&dir, &v, Compaction::Auto).unwrap();
        // Dictionary form: data_bytes == count (one code byte per record).
        assert_eq!(catalog.vectors[0].count, 400);
        assert_eq!(catalog.vectors[0].data_bytes, 400);
        let (loaded, _) = Store::open(&dir).unwrap();
        assert_eq!(reconstruct(&loaded).unwrap().root, doc.root);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn indexed_store_round_trips_with_sorted_run() {
        // High-cardinality column (no dictionary possible, count ≥ 64)
        // triggers the version-3 value index under Auto compaction.
        let mut src = String::from("<t>");
        for i in 0..200 {
            src.push_str(&format!("<r><id>{}</id></r>", (i * 37) % 200));
        }
        src.push_str("</t>");
        let doc = parse(&src).unwrap();
        let v = vectorize(&doc).unwrap();
        let dir = temp_dir("indexed");
        let catalog = Store::save(&dir, &v, Compaction::Auto).unwrap();
        assert_eq!(catalog.vectors[0].version, 3);

        let (loaded, reread) = Store::open(&dir).unwrap();
        assert_eq!(reread.vectors, catalog.vectors);
        let pos = loaded.vector_position(&catalog.vectors[0].path).unwrap();
        let order = loaded
            .sorted_run(pos)
            .expect("v3 store populates sorted run");
        assert_eq!(order.len(), 200);
        let values = &loaded.vectors()[pos].values;
        assert!(order
            .windows(2)
            .all(|w| values[w[0] as usize] < values[w[1] as usize]));
        assert_eq!(reconstruct(&loaded).unwrap().root, doc.root);

        // Plain saves of the same doc record version 1 and load no run.
        let dir2 = temp_dir("indexed-plain");
        let plain = Store::save(&dir2, &v, Compaction::None).unwrap();
        assert_eq!(plain.vectors[0].version, 1);
        let (loaded2, _) = Store::open(&dir2).unwrap();
        assert!(loaded2.sorted_run(pos).is_none());
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn catalog_without_version_field_parses_as_zero() {
        let text = r#"{
  "vectors": [
    {"path": "a/b", "file": "v000000.vec", "count": 2, "data_bytes": 4}
  ],
  "node_count": 5,
  "text_bytes": 2
}"#;
        let catalog = Catalog::parse(text).unwrap();
        assert_eq!(catalog.vectors[0].version, 0);
    }

    #[test]
    fn strict_open_rejects_count_mismatch() {
        let doc = parse("<a><b>1</b><b>2</b></a>").unwrap();
        let v = vectorize(&doc).unwrap();
        let dir = temp_dir("mismatch");
        Store::save(&dir, &v, Compaction::None).unwrap();
        // Tamper with the catalog's count.
        let catalog_path = dir.join("catalog.json");
        let text = fs::read_to_string(&catalog_path)
            .unwrap()
            .replace("\"count\": 2", "\"count\": 3");
        fs::write(&catalog_path, text).unwrap();
        assert!(Store::open(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn salvage_tolerates_missing_vector_file() {
        let doc = parse("<a><b>1</b><c>2</c></a>").unwrap();
        let v = vectorize(&doc).unwrap();
        let dir = temp_dir("salvage");
        Store::save(&dir, &v, Compaction::None).unwrap();
        fs::remove_file(dir.join("v000001.vec")).unwrap();
        let salvage = Store::open_salvage(&dir).unwrap();
        assert_eq!(salvage.missing_files, vec!["v000001.vec".to_string()]);
        assert_eq!(salvage.vectors_loaded, 1);
        assert!(salvage.skeleton_report.is_clean());
        let (back, report) = crate::reconstruct_salvage(&salvage.doc).unwrap();
        assert_eq!(back.root.name, "a");
        assert_eq!(report.missing_values, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
