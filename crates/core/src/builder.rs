//! Streaming construction of a [`VecDoc`] — `(S, V)` built from events.
//!
//! The query engine's element construction emits result documents as a
//! stream of `begin_element` / `text` / `end_element` events, never
//! materializing a DOM. The builder hash-conses the output skeleton
//! bottom-up exactly like [`crate::vectorize`] does for parsed input, and
//! appends each text value to the vector of its root-to-text tag path, so
//! the emitted document obeys every `VecDoc` invariant (vectors in
//! first-occurrence document order, values in document order, shared
//! subtrees collapsed, consecutive repeats run-length encoded).

use crate::vecdoc::VecDoc;
use crate::{CoreError, Result};
use vx_skeleton::arena::{push_child, Edge, NodeId};

/// An in-progress element: its interned name and the child edges built so
/// far.
struct Frame {
    name_id: vx_skeleton::NameId,
    edges: Vec<Edge>,
    /// Length of the builder's path string before this element was
    /// opened (for truncation on close).
    parent_path_len: usize,
}

/// Event-driven [`VecDoc`] builder.
///
/// ```
/// use vx_core::VecDocBuilder;
/// let mut b = VecDocBuilder::new();
/// b.begin_element("r");
/// for word in ["a", "b"] {
///     b.begin_element("e");
///     b.text(word.as_bytes().to_vec());
///     b.end_element();
/// }
/// b.end_element();
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.vector("r/e").unwrap().values.len(), 2);
/// // Both `<e>` subtrees differ only in text: one shared DAG node.
/// assert_eq!(doc.skeleton.len(), 3); // '#', e, r
/// ```
#[derive(Default)]
pub struct VecDocBuilder {
    doc: VecDoc,
    stack: Vec<Frame>,
    path: String,
    root: Option<NodeId>,
}

impl VecDocBuilder {
    pub fn new() -> Self {
        VecDocBuilder::default()
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Opens an element. Attribute children use the `@name` tag
    /// convention and must wrap exactly one text value.
    pub fn begin_element(&mut self, tag: &str) {
        let name_id = self.doc.skeleton.intern(tag);
        let parent_path_len = self.path.len();
        if !self.path.is_empty() {
            self.path.push('/');
        }
        self.path.push_str(tag);
        self.stack.push(Frame {
            name_id,
            edges: Vec::new(),
            parent_path_len,
        });
    }

    /// Appends a text value under the open element.
    pub fn text(&mut self, value: Vec<u8>) {
        let text_node = self.doc.skeleton.text_node();
        match self.stack.last_mut() {
            Some(frame) => {
                push_child(&mut frame.edges, text_node);
            }
            None => {
                // Text outside any element cannot be represented; callers
                // (the engine) never do this, but fail loudly in finish().
                self.root = Some(text_node);
                return;
            }
        }
        self.doc.push_value(&self.path, value);
    }

    /// Closes the innermost open element, hash-consing it into the
    /// skeleton.
    pub fn end_element(&mut self) {
        let frame = self
            .stack
            .pop()
            .expect("end_element without matching begin_element");
        let node = self.doc.skeleton.cons(frame.name_id, frame.edges);
        self.path.truncate(frame.parent_path_len);
        match self.stack.last_mut() {
            Some(parent) => push_child(&mut parent.edges, node),
            None => self.root = Some(node),
        }
    }

    /// Finishes the document. Exactly one top-level element must have
    /// been built, and every `begin_element` must have been closed.
    pub fn finish(self) -> Result<VecDoc> {
        if !self.stack.is_empty() {
            return Err(CoreError::Corrupt(format!(
                "builder finished with {} unclosed element(s)",
                self.stack.len()
            )));
        }
        let root = self
            .root
            .ok_or_else(|| CoreError::Corrupt("builder produced no root element".into()))?;
        if self.doc.skeleton.node(root).name.is_none() {
            return Err(CoreError::Corrupt(
                "builder root is a text node, not an element".into(),
            ));
        }
        let mut doc = self.doc;
        doc.root = Some(root);
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reconstruct, vectorize};
    use vx_xml::{parse, write_document, WriteOptions};

    /// Replaying a parsed document through the builder must produce the
    /// same `VecDoc` as `vectorize` (same skeleton shape, same vectors).
    #[test]
    fn builder_agrees_with_vectorize() {
        let xml = "<lib><book><t>A</t><a>x</a><a>y</a></book><book><t>B</t></book><n>z</n></lib>";
        let dom = parse(xml).unwrap();
        let via_vectorize = vectorize(&dom).unwrap();

        fn replay(b: &mut VecDocBuilder, e: &vx_xml::Element) {
            b.begin_element(&e.name);
            for (name, value) in &e.attributes {
                b.begin_element(&format!("@{name}"));
                b.text(value.clone().into_bytes());
                b.end_element();
            }
            for child in &e.children {
                match child {
                    vx_xml::Node::Element(c) => replay(b, c),
                    vx_xml::Node::Text(t) | vx_xml::Node::CData(t) => {
                        b.text(t.clone().into_bytes())
                    }
                    _ => {}
                }
            }
            b.end_element();
        }
        let mut b = VecDocBuilder::new();
        replay(&mut b, &dom.root);
        let via_builder = b.finish().unwrap();

        assert_eq!(via_builder.skeleton.len(), via_vectorize.skeleton.len());
        assert_eq!(via_builder.vectors(), via_vectorize.vectors());
        let opts = WriteOptions::compact();
        assert_eq!(
            write_document(&reconstruct(&via_builder).unwrap(), &opts),
            write_document(&reconstruct(&via_vectorize).unwrap(), &opts),
        );
    }

    #[test]
    fn builder_round_trips_attributes() {
        let mut b = VecDocBuilder::new();
        b.begin_element("r");
        b.begin_element("@id");
        b.text(b"7".to_vec());
        b.end_element();
        b.text(b"body".to_vec());
        b.end_element();
        let doc = b.finish().unwrap();
        let back = reconstruct(&doc).unwrap();
        assert_eq!(back.root.attr("id"), Some("7"));
        assert_eq!(back.root.text(), "body");
    }

    #[test]
    fn finish_rejects_unbalanced_builds() {
        let mut b = VecDocBuilder::new();
        b.begin_element("r");
        assert!(b.finish().is_err());
        assert!(VecDocBuilder::new().finish().is_err());
    }
}
