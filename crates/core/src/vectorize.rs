//! `VEC(T)`: one linear pass building skeleton + vectors (Prop 2.1).

use crate::vecdoc::VecDoc;
use crate::{CoreError, Result};
use vx_skeleton::arena::{push_child, Edge, NodeId};
use vx_xml::{Document, Element, Node};

/// Vectorization options.
#[derive(Debug, Clone, Default)]
pub struct VectorizeOptions {
    /// When false (default), comments and processing instructions inside
    /// the tree are an error — vectorization cannot represent them, and
    /// silently dropping them would break the lossless-round-trip law.
    /// When true they are dropped.
    pub drop_unrepresentable: bool,
}

/// Vectorizes with default (strict) options.
pub fn vectorize(doc: &Document) -> Result<VecDoc> {
    vectorize_with(doc, &VectorizeOptions::default())
}

/// Vectorizes a document into `(S, V)`.
///
/// * Every text (and CDATA) value is appended to the vector of its
///   root-to-text tag path; the skeleton gets a `#` child in its place.
/// * Attributes are encoded as leading `@name` child elements, so
///   `<a x="1">` contributes path `a/@x`. Reconstruction inverts this.
/// * The skeleton is hash-consed bottom-up with run-length edges.
pub fn vectorize_with(doc: &Document, options: &VectorizeOptions) -> Result<VecDoc> {
    let mut out = VecDoc::default();
    let mut path = String::new();
    let root = vectorize_element(&doc.root, &mut out, &mut path, options)?;
    out.root = Some(root);
    Ok(out)
}

fn vectorize_element(
    element: &Element,
    out: &mut VecDoc,
    path: &mut String,
    options: &VectorizeOptions,
) -> Result<NodeId> {
    // Interning at entry keeps the name table in document pre-order,
    // matching the surviving stores (root tag first).
    let name = out.skeleton.intern(&element.name);
    let parent_len = path.len();
    if !path.is_empty() {
        path.push('/');
    }
    path.push_str(&element.name);

    let mut edges: Vec<Edge> = Vec::new();
    for (attr_name, attr_value) in &element.attributes {
        let attr_tag = format!("@{attr_name}");
        let attr_name_id = out.skeleton.intern(&attr_tag);
        let attr_path = format!("{path}/{attr_tag}");
        out.push_value(&attr_path, attr_value.clone().into_bytes());
        let text = out.skeleton.text_node();
        let attr_node = out.skeleton.cons(
            attr_name_id,
            vec![Edge {
                child: text,
                run: 1,
            }],
        );
        push_child(&mut edges, attr_node);
    }
    for child in &element.children {
        match child {
            Node::Element(e) => {
                let node = vectorize_element(e, out, path, options)?;
                push_child(&mut edges, node);
            }
            Node::Text(t) | Node::CData(t) => {
                out.push_value(path, t.clone().into_bytes());
                push_child(&mut edges, out.skeleton.text_node());
            }
            Node::Comment(_) | Node::ProcessingInstruction { .. } => {
                if !options.drop_unrepresentable {
                    return Err(CoreError::Unsupported(format!(
                        "comment/processing instruction under `{path}`; \
                         vectorization drops these only with drop_unrepresentable"
                    )));
                }
            }
        }
    }
    path.truncate(parent_len);
    Ok(out.skeleton.cons(name, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vx_xml::parse;

    #[test]
    fn paths_counts_and_sharing() {
        let doc = parse(
            "<lib><book><title>T1</title><author>A</author><author>B</author></book>\
             <book><title>T2</title><author>C</author><author>D</author></book></lib>",
        )
        .unwrap();
        let v = vectorize(&doc).unwrap();
        let paths: Vec<_> = v.vectors().iter().map(|p| p.path.as_str()).collect();
        assert_eq!(paths, vec!["lib/book/title", "lib/book/author"]);
        assert_eq!(v.vector("lib/book/author").unwrap().values.len(), 4);
        // Books differ (different titles feed the same '#', so the two
        // book subtrees are structurally identical and must share).
        assert_eq!(v.skeleton.duplicate_nodes(), 0);
        // '#', title, author, book, lib — 5 DAG nodes despite 2 books.
        assert_eq!(v.skeleton.len(), 5);
    }

    #[test]
    fn attributes_become_at_paths() {
        let doc = parse(r#"<r><item id="7">x</item></r>"#).unwrap();
        let v = vectorize(&doc).unwrap();
        assert_eq!(v.vector("r/item/@id").unwrap().values, vec![b"7".to_vec()]);
        assert_eq!(v.vector("r/item").unwrap().values, vec![b"x".to_vec()]);
    }

    #[test]
    fn comments_error_in_strict_mode() {
        let doc = parse("<a><!-- c --></a>").unwrap();
        assert!(matches!(vectorize(&doc), Err(CoreError::Unsupported(_))));
        let opts = VectorizeOptions {
            drop_unrepresentable: true,
        };
        assert!(vectorize_with(&doc, &opts).is_ok());
    }

    #[test]
    fn node_count_matches_dom() {
        let doc = parse("<a><b>t</b><b>t</b><c/></a>").unwrap();
        let v = vectorize(&doc).unwrap();
        assert_eq!(v.node_count(), doc.root.node_count());
    }
}
