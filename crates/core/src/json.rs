//! A minimal JSON reader/writer for `catalog.json`.
//!
//! The build environment is fully offline (no registry cache), so
//! `serde_json` is unavailable; the catalog needs only objects, arrays,
//! strings, and non-negative integers, which this module covers — plus
//! floats, bools, and null for completeness. Object key order is
//! preserved (the catalog is human-diffed in `bench_results/`).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64`; the catalog's counts stay well
    /// under 2^53 so round-trips are exact.
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by the catalog;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Serializes with 2-space indentation.
pub fn to_string_pretty(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, value: &Json, depth: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Json::Str(s) => write_string(out, s),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                indent(out, depth + 1);
                write_value(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Json::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                indent(out, depth + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth * 2 {
        out.push(' ');
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_catalog_shape() {
        let src = r#"{"vectors": [{"path": "a/b", "file": "v000000.vec", "count": 42, "data_bytes": 100}], "node_count": 7}"#;
        let v = parse(src).unwrap();
        let vectors = v.get("vectors").unwrap().as_array().unwrap();
        assert_eq!(vectors[0].get("path").unwrap().as_str(), Some("a/b"));
        assert_eq!(vectors[0].get("count").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("node_count").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn round_trip_preserves_order_and_values() {
        let value = Json::Object(vec![
            ("z".into(), Json::Num(1.0)),
            ("a".into(), Json::Str("x\n\"y\"".into())),
            (
                "list".into(),
                Json::Array(vec![Json::Null, Json::Bool(true), Json::Num(2.5)]),
            ),
            ("empty".into(), Json::Array(vec![])),
        ]);
        let text = to_string_pretty(&value);
        assert_eq!(parse(&text).unwrap(), value);
        // Key order survives.
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated"] {
            assert!(parse(bad).is_err(), "expected failure for {bad:?}");
        }
    }
}
