//! Lossless reconstruction `VEC(T) → T` (Prop 2.2).

use crate::vecdoc::VecDoc;
use crate::{CoreError, Result};
use vx_skeleton::NodeId;
use vx_xml::{Document, Element, Node};

/// What a salvage reconstruction had to invent.
#[derive(Debug, Clone, Default)]
pub struct ReconstructReport {
    /// Text positions whose vector was missing or exhausted; an empty
    /// string was substituted.
    pub missing_values: u64,
    /// Values that were not valid UTF-8 (lossily converted).
    pub non_utf8_values: u64,
}

impl ReconstructReport {
    pub fn is_lossless(&self) -> bool {
        self.missing_values == 0 && self.non_utf8_values == 0
    }
}

/// Strict reconstruction: every `#` position must find its value, every
/// vector must be fully consumed, and all values must be UTF-8.
pub fn reconstruct(doc: &VecDoc) -> Result<Document> {
    let (document, report, cursors) = reconstruct_inner(doc, true)?;
    debug_assert!(report.is_lossless());
    for (i, vector) in doc.vectors().iter().enumerate() {
        if cursors[i] != vector.values.len() {
            return Err(CoreError::Corrupt(format!(
                "vector `{}` has {} values but the skeleton consumed {}",
                vector.path,
                vector.values.len(),
                cursors[i],
            )));
        }
    }
    Ok(document)
}

/// Best-effort reconstruction for salvaged stores: missing values become
/// empty strings and the report says how many were invented.
pub fn reconstruct_salvage(doc: &VecDoc) -> Result<(Document, ReconstructReport)> {
    let (document, report, _) = reconstruct_inner(doc, false)?;
    Ok((document, report))
}

struct Walk<'a> {
    doc: &'a VecDoc,
    /// Next unread value index per vector, parallel to `doc.vectors()`.
    cursors: Vec<usize>,
    report: ReconstructReport,
    strict: bool,
    path: String,
}

fn reconstruct_inner(
    doc: &VecDoc,
    strict: bool,
) -> Result<(Document, ReconstructReport, Vec<usize>)> {
    let root = doc
        .root
        .ok_or_else(|| CoreError::Corrupt("vectorized document has no root".into()))?;
    if doc.skeleton.node(root).name.is_none() {
        return Err(CoreError::Corrupt("root node is a text marker".into()));
    }
    let mut walk = Walk {
        doc,
        cursors: vec![0; doc.vectors().len()],
        report: ReconstructReport::default(),
        strict,
        path: String::new(),
    };
    let element = build_element(&mut walk, root)?;
    Ok((Document::from_root(element), walk.report, walk.cursors))
}

fn build_element(walk: &mut Walk<'_>, node: NodeId) -> Result<Element> {
    let data = walk.doc.skeleton.node(node).clone();
    let name_id = data
        .name
        .ok_or_else(|| CoreError::Corrupt("unexpected text marker as element".into()))?;
    let name = walk.doc.skeleton.name(name_id).to_string();
    let parent_len = walk.path.len();
    if !walk.path.is_empty() {
        walk.path.push('/');
    }
    walk.path.push_str(&name);

    let mut element = Element::new(name);
    for edge in &data.edges {
        for _ in 0..edge.run {
            let child = walk.doc.skeleton.node(edge.child);
            match child.name {
                None => {
                    let value = take_value(walk)?;
                    element.children.push(Node::Text(value));
                }
                Some(child_name_id) => {
                    let child_name = walk.doc.skeleton.name(child_name_id).to_string();
                    if let Some(attr_name) = child_name.strip_prefix('@') {
                        // Attribute encoding: `@name` wraps a single '#'.
                        let attr_path_len = walk.path.len();
                        walk.path.push('/');
                        walk.path.push_str(&child_name);
                        let value = take_value(walk)?;
                        walk.path.truncate(attr_path_len);
                        element.attributes.push((attr_name.to_string(), value));
                    } else {
                        element
                            .children
                            .push(Node::Element(build_element(walk, edge.child)?));
                    }
                }
            }
        }
    }
    walk.path.truncate(parent_len);
    Ok(element)
}

fn take_value(walk: &mut Walk<'_>) -> Result<String> {
    let index = walk.doc.vector_position(&walk.path);
    let raw = index.and_then(|i| {
        let position = walk.cursors[i];
        walk.cursors[i] += 1;
        walk.doc.vectors()[i].values.get(position)
    });
    match raw {
        Some(bytes) => match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) if walk.strict => Err(CoreError::Corrupt(format!(
                "non-UTF-8 value in vector `{}`",
                walk.path
            ))),
            Err(_) => {
                walk.report.non_utf8_values += 1;
                Ok(String::from_utf8_lossy(bytes).into_owned())
            }
        },
        None if walk.strict => Err(CoreError::Corrupt(format!(
            "vector `{}` exhausted or missing during reconstruction",
            walk.path
        ))),
        None => {
            walk.report.missing_values += 1;
            Ok(String::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectorize::vectorize;
    use vx_xml::parse;

    fn round_trip(src: &str) {
        let doc = parse(src).unwrap();
        let v = vectorize(&doc).unwrap();
        let back = reconstruct(&v).unwrap();
        assert_eq!(doc.root, back.root, "round trip failed for {src}");
    }

    #[test]
    fn round_trips() {
        round_trip("<a/>");
        round_trip("<a>text</a>");
        round_trip("<a><b>1</b><b>2</b><b>1</b></a>");
        round_trip(r#"<a x="1" y="2"><b z="3">t</b></a>"#);
        round_trip("<p>one <b>two</b> three</p>"); // mixed content
        round_trip("<a><b><c><d>deep</d></c></b></a>");
        round_trip("<a><b></b><b>x</b></a>"); // empty vs non-empty siblings
    }

    #[test]
    fn reconstruction_detects_short_vectors() {
        let doc = parse("<a><b>1</b><b>2</b></a>").unwrap();
        let v = vectorize(&doc).unwrap();
        let mut corrupted = crate::vecdoc::VecDoc::new(v.skeleton.clone(), v.root);
        for vec in v.vectors() {
            let mut vec = vec.clone();
            vec.values.pop();
            corrupted.insert_vector(vec);
        }
        assert!(reconstruct(&corrupted).is_err());
        let (_, report) = reconstruct_salvage(&corrupted).unwrap();
        assert_eq!(report.missing_values, 1);
    }
}
