//! The hash-consing arena.

use std::collections::HashMap;

/// Interned tag name (index into [`Skeleton::names`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

/// A DAG node id. Node 0 is always the `#` text marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// The reserved `#` text-marker node.
pub const TEXT_NODE: NodeId = NodeId(0);

/// One run-length-encoded edge: `run` consecutive occurrences of `child`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    pub child: NodeId,
    pub run: u64,
}

/// Per-node data. `name == None` marks the `#` text node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeData {
    pub name: Option<NameId>,
    pub edges: Vec<Edge>,
}

/// A hash-consed skeleton DAG.
///
/// Nodes are created bottom-up through [`Skeleton::cons`], which returns an
/// existing id whenever an identical `(name, edges)` node already exists —
/// identical subtrees therefore share one node by construction.
#[derive(Debug, Clone)]
pub struct Skeleton {
    names: Vec<String>,
    name_lookup: HashMap<String, NameId>,
    nodes: Vec<NodeData>,
    cons_table: HashMap<(Option<NameId>, Vec<Edge>), NodeId>,
}

impl Default for Skeleton {
    fn default() -> Self {
        Skeleton::new()
    }
}

impl Skeleton {
    /// An empty skeleton containing only the `#` node (id 0).
    pub fn new() -> Self {
        let mut s = Skeleton {
            names: Vec::new(),
            name_lookup: HashMap::new(),
            nodes: Vec::new(),
            cons_table: HashMap::new(),
        };
        s.nodes.push(NodeData {
            name: None,
            edges: Vec::new(),
        });
        s.cons_table.insert((None, Vec::new()), TEXT_NODE);
        s
    }

    /// The `#` text-marker node.
    pub fn text_node(&self) -> NodeId {
        TEXT_NODE
    }

    /// Interns a tag name.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.name_lookup.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.name_lookup.insert(name.to_string(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn name_id(&self, name: &str) -> Option<NameId> {
        self.name_lookup.get(name).copied()
    }

    /// The string for an interned name.
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// All interned names in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of DAG nodes (including `#`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the `#` node exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Node data by id.
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0 as usize]
    }

    /// Iterates `(id, data)` in creation (bottom-up) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeData)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, d)| (NodeId(i as u32), d))
    }

    /// Hash-conses an element node. Children must already exist (bottom-up
    /// construction); consecutive equal children in `edges` are expected to
    /// be run-length merged (see [`push_child`]).
    pub fn cons(&mut self, name: NameId, edges: Vec<Edge>) -> NodeId {
        debug_assert!(edges
            .iter()
            .all(|e| (e.child.0 as usize) < self.nodes.len()));
        debug_assert!(edges.iter().all(|e| e.run > 0));
        let key = (Some(name), edges);
        if let Some(&id) = self.cons_table.get(&key) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            name: Some(name),
            edges: key.1.clone(),
        });
        self.cons_table.insert(key, id);
        id
    }

    /// Verifies the hash-consing invariant: no two nodes share the same
    /// `(name, edges)`. Returns the number of duplicate pairs (0 when the
    /// invariant holds).
    pub fn duplicate_nodes(&self) -> usize {
        let mut seen: HashMap<(Option<NameId>, &[Edge]), NodeId> = HashMap::new();
        let mut dups = 0;
        for (id, data) in self.iter() {
            if seen
                .insert((data.name, data.edges.as_slice()), id)
                .is_some()
            {
                dups += 1;
            }
        }
        dups
    }

    /// Expanded (uncompressed) size in tree nodes of the subtree rooted at
    /// `id`: the element/text node itself plus all descendants, with runs
    /// multiplied out. This is the `|T|`-side count of the paper's
    /// compression ratio.
    pub fn expanded_size(&self, id: NodeId) -> u64 {
        fn go(s: &Skeleton, id: NodeId, memo: &mut HashMap<NodeId, u64>) -> u64 {
            if let Some(&v) = memo.get(&id) {
                return v;
            }
            let mut total = 1u64;
            for e in &s.node(id).edges {
                total += e.run * go(s, e.child, memo);
            }
            memo.insert(id, total);
            total
        }
        go(self, id, &mut HashMap::new())
    }
}

/// Appends `child` to an edge list, merging into the previous edge when it
/// repeats the same child (run-length encoding of consecutive edges).
pub fn push_child(edges: &mut Vec<Edge>, child: NodeId) {
    if let Some(last) = edges.last_mut() {
        if last.child == child {
            last.run += 1;
            return;
        }
    }
    edges.push(Edge { child, run: 1 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_children_run_length_encode() {
        let mut s = Skeleton::new();
        let a = s.intern("a");
        let leaf = s.cons(
            a,
            vec![Edge {
                child: TEXT_NODE,
                run: 1,
            }],
        );
        let mut edges = Vec::new();
        for _ in 0..5 {
            push_child(&mut edges, leaf);
        }
        assert_eq!(
            edges,
            vec![Edge {
                child: leaf,
                run: 5
            }]
        );
    }

    #[test]
    fn identical_subtrees_share_one_node() {
        let mut s = Skeleton::new();
        let a = s.intern("a");
        let n1 = s.cons(
            a,
            vec![Edge {
                child: TEXT_NODE,
                run: 1,
            }],
        );
        let n2 = s.cons(
            a,
            vec![Edge {
                child: TEXT_NODE,
                run: 1,
            }],
        );
        assert_eq!(n1, n2);
        assert_eq!(s.len(), 2); // '#' + one shared leaf
        assert_eq!(s.duplicate_nodes(), 0);
    }

    #[test]
    fn expanded_size_multiplies_runs() {
        let mut s = Skeleton::new();
        let row = s.intern("row");
        let table = s.intern("table");
        let leaf = s.cons(
            row,
            vec![Edge {
                child: TEXT_NODE,
                run: 1,
            }],
        );
        let root = s.cons(
            table,
            vec![Edge {
                child: leaf,
                run: 1000,
            }],
        );
        // root + 1000 * (row + '#')
        assert_eq!(s.expanded_size(root), 1 + 1000 * 2);
        // DAG itself stays tiny.
        assert_eq!(s.len(), 3);
    }
}
