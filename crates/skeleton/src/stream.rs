//! Incremental, bottom-up skeleton construction for streaming ingest.
//!
//! [`SkeletonBuilder`] consumes start-element / attribute / text /
//! end-element notifications (one per parse event) and hash-conses each
//! subtree the moment its end tag arrives, run-length-coalescing
//! consecutive repeated edges as they are appended. Memory is therefore
//! the compressed DAG plus one pending edge list per *open* element —
//! never the document tree.
//!
//! The construction order is identical to `vx-core`'s DOM vectorizer
//! (element name interned on entry, then `@attr` pseudo-children in
//! attribute order, then children in document order), so a builder fed
//! from a parse-event stream produces an arena whose canonical `.vxsk`
//! serialization is byte-identical to the DOM path's.

use crate::arena::{push_child, Edge, NodeId, Skeleton, TEXT_NODE};
use crate::{Result, SkeletonError};

/// One open element: its interned name and the edges consed so far.
type Frame = (crate::arena::NameId, Vec<Edge>);

/// Builds a hash-consed [`Skeleton`] incrementally from parse events.
#[derive(Debug, Default)]
pub struct SkeletonBuilder {
    skeleton: Skeleton,
    stack: Vec<Frame>,
    root: Option<NodeId>,
}

impl SkeletonBuilder {
    /// An empty builder around a fresh arena.
    pub fn new() -> Self {
        SkeletonBuilder::default()
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Read access to the arena being built (names interned so far, etc.).
    pub fn skeleton(&self) -> &Skeleton {
        &self.skeleton
    }

    /// Opens an element. Errors on a second root (the first element after
    /// the root element closed).
    pub fn start_element(&mut self, name: &str) -> Result<()> {
        if self.stack.is_empty() && self.root.is_some() {
            return Err(SkeletonError::Builder(
                "second root element in stream".to_string(),
            ));
        }
        let id = self.skeleton.intern(name);
        self.stack.push((id, Vec::new()));
        Ok(())
    }

    /// Records an attribute of the innermost open element as an `@name`
    /// pseudo-child with a single `#` child (the value itself goes to the
    /// vector layer, not the skeleton).
    pub fn attribute(&mut self, name: &str) -> Result<()> {
        let attr_id = self.skeleton.intern(&format!("@{name}"));
        let node = self.skeleton.cons(
            attr_id,
            vec![Edge {
                child: TEXT_NODE,
                run: 1,
            }],
        );
        let (_, edges) = self
            .stack
            .last_mut()
            .ok_or_else(|| SkeletonError::Builder("attribute outside element".to_string()))?;
        push_child(edges, node);
        Ok(())
    }

    /// Records a text (or CDATA) child of the innermost open element as a
    /// `#` marker.
    pub fn text(&mut self) -> Result<()> {
        let (_, edges) = self
            .stack
            .last_mut()
            .ok_or_else(|| SkeletonError::Builder("text outside element".to_string()))?;
        push_child(edges, TEXT_NODE);
        Ok(())
    }

    /// Closes the innermost open element: its subtree is hash-consed now
    /// and appended (run-length merged) to its parent's edge list.
    pub fn end_element(&mut self) -> Result<()> {
        let (name, edges) = self
            .stack
            .pop()
            .ok_or_else(|| SkeletonError::Builder("end tag without open element".to_string()))?;
        let node = self.skeleton.cons(name, edges);
        match self.stack.last_mut() {
            Some((_, parent_edges)) => push_child(parent_edges, node),
            None => self.root = Some(node),
        }
        Ok(())
    }

    /// Finishes the build, returning the arena and the root node.
    pub fn finish(self) -> Result<(Skeleton, NodeId)> {
        if let Some((open, _)) = self.stack.last() {
            let name = self.skeleton.name(*open).to_string();
            return Err(SkeletonError::Builder(format!(
                "unclosed element `{name}` at end of stream"
            )));
        }
        let root = self
            .root
            .ok_or_else(|| SkeletonError::Builder("empty stream: no root element".to_string()))?;
        Ok((self.skeleton, root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_same_arena_as_manual_bottom_up_cons() {
        // <table><row>#</row><row>#</row></table>, built both ways.
        let mut b = SkeletonBuilder::new();
        b.start_element("table").unwrap();
        for _ in 0..2 {
            b.start_element("row").unwrap();
            b.text().unwrap();
            b.end_element().unwrap();
        }
        b.end_element().unwrap();
        let (built, built_root) = b.finish().unwrap();

        let mut s = Skeleton::new();
        let table = s.intern("table");
        let row = s.intern("row");
        let leaf = s.cons(
            row,
            vec![Edge {
                child: TEXT_NODE,
                run: 1,
            }],
        );
        let root = s.cons(
            table,
            vec![Edge {
                child: leaf,
                run: 2,
            }],
        );

        assert_eq!(built.len(), s.len());
        assert_eq!(built.names(), s.names());
        assert_eq!(built.node(built_root), s.node(root));
        assert_eq!(built.duplicate_nodes(), 0);
    }

    #[test]
    fn attributes_become_pseudo_children_in_order() {
        let mut b = SkeletonBuilder::new();
        b.start_element("e").unwrap();
        b.attribute("x").unwrap();
        b.attribute("y").unwrap();
        b.text().unwrap();
        b.end_element().unwrap();
        let (s, root) = b.finish().unwrap();
        assert_eq!(s.names(), ["e", "@x", "@y"]);
        let edges = &s.node(root).edges;
        assert_eq!(edges.len(), 3); // @x node, @y node, '#'
        assert_eq!(edges[2].child, TEXT_NODE);
    }

    #[test]
    fn runs_coalesce_incrementally() {
        let mut b = SkeletonBuilder::new();
        b.start_element("t").unwrap();
        for _ in 0..1000 {
            b.start_element("r").unwrap();
            b.text().unwrap();
            b.end_element().unwrap();
        }
        b.end_element().unwrap();
        let (s, root) = b.finish().unwrap();
        assert_eq!(s.node(root).edges.len(), 1);
        assert_eq!(s.node(root).edges[0].run, 1000);
        assert_eq!(s.expanded_size(root), 1 + 1000 * 2);
        assert_eq!(s.len(), 3); // '#', r-leaf, root
    }

    #[test]
    fn misuse_is_reported_not_panicked() {
        assert!(SkeletonBuilder::new().end_element().is_err());
        assert!(SkeletonBuilder::new().text().is_err());
        assert!(SkeletonBuilder::new().attribute("a").is_err());
        assert!(SkeletonBuilder::new().finish().is_err());

        let mut unclosed = SkeletonBuilder::new();
        unclosed.start_element("a").unwrap();
        assert!(unclosed.finish().is_err());

        let mut two_roots = SkeletonBuilder::new();
        two_roots.start_element("a").unwrap();
        two_roots.end_element().unwrap();
        assert!(two_roots.start_element("b").is_err());
    }
}
