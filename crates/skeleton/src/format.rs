//! The binary `.vxsk` skeleton format.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! "VXSK"  u8 version(=1)
//! varint name_count
//! name_count × ( varint byte_len, UTF-8 bytes )      -- tag name table
//! varint node_count
//! node_count × node                                   -- bottom-up order
//! node := varint name_code   -- 0 = '#' text marker, else names[code-1]
//!         varint k           -- number of run-length edges
//!         k × ( varint child_node_id, varint run )
//! ```
//!
//! Nodes are emitted in a post-order traversal from the root, so every
//! child id is strictly smaller than its parent's id and the **root is the
//! last node**. Node ids are 0-based positions in the node list; when the
//! document contains text, node 0 is the `#` marker (`name_code` 0, `k` 0).
//!
//! This layout was reconstructed byte-for-byte from the surviving stores in
//! `bench_results/stores/` (the generating source was lost to the seed
//! truncation, and the binary artifacts themselves were damaged by a lossy
//! UTF-8 sanitizer that dropped most bytes ≥ 0x80). [`read_lenient`]
//! tolerates exactly that damage class and reports what it salvaged.

use crate::arena::{Edge, NameId, NodeId, Skeleton};
use crate::{Result, SkeletonError};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use vx_storage::varint;

const MAGIC: &[u8; 4] = b"VXSK";
const VERSION: u8 = 1;

/// Serializes the subtree reachable from `root` (post-order, root last).
///
/// Unreachable arena nodes are garbage-collected; node ids in the file are
/// renumbered densely. Returns the encoded bytes.
pub fn write(skeleton: &Skeleton, root: NodeId) -> Vec<u8> {
    // Post-order over the DAG, each node once.
    let mut order: Vec<NodeId> = Vec::new();
    let mut emitted: HashMap<NodeId, u32> = HashMap::new();
    // Iterative post-order: stack of (node, next_edge_index).
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    while let Some(&(node, next)) = stack.last() {
        let edges = &skeleton.node(node).edges;
        if next < edges.len() {
            stack.last_mut().expect("non-empty").1 += 1;
            let child = edges[next].child;
            if !emitted.contains_key(&child) {
                stack.push((child, 0));
            }
        } else {
            stack.pop();
            if let Entry::Vacant(slot) = emitted.entry(node) {
                slot.insert(order.len() as u32);
                order.push(node);
            }
        }
    }

    // Collect the names actually used, preserving arena id order so the
    // file's name table is stable across rewrites.
    let mut used_names: Vec<NameId> = Vec::new();
    let mut name_code: HashMap<NameId, u64> = HashMap::new();
    for &node in &order {
        if let Some(name) = skeleton.node(node).name {
            if let Entry::Vacant(slot) = name_code.entry(name) {
                slot.insert(0);
                used_names.push(name);
            }
        }
    }
    used_names.sort();
    for (i, &name) in used_names.iter().enumerate() {
        name_code.insert(name, i as u64 + 1);
    }

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    varint::write(&mut out, used_names.len() as u64);
    for &name in &used_names {
        let s = skeleton.name(name);
        varint::write(&mut out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
    varint::write(&mut out, order.len() as u64);
    for &node in &order {
        let data = skeleton.node(node);
        let code = data.name.map_or(0, |n| name_code[&n]);
        varint::write(&mut out, code);
        varint::write(&mut out, data.edges.len() as u64);
        for e in &data.edges {
            varint::write(&mut out, u64::from(emitted[&e.child]));
            varint::write(&mut out, e.run);
        }
    }
    out
}

/// Strict reader: validates magic, version, name codes, bottom-up child
/// references, and that the buffer is fully consumed. Returns the skeleton
/// and its root (the last node).
pub fn read(bytes: &[u8]) -> Result<(Skeleton, NodeId)> {
    let raw = parse(bytes, true)?.0;
    rebuild(&raw)
}

/// Lenient salvage reader for sanitization-damaged files: parses as many
/// well-formed node records as possible, clamps out-of-range references,
/// and never fails on truncation. See [`SalvageReport`].
pub fn read_lenient(bytes: &[u8]) -> Result<(RawSkeleton, SalvageReport)> {
    parse(bytes, false)
}

/// A structurally unvalidated skeleton as read from disk.
#[derive(Debug, Clone)]
pub struct RawSkeleton {
    pub names: Vec<String>,
    /// `name_code` 0 = `#`; `name_code - 1` indexes `names`.
    pub nodes: Vec<RawNode>,
}

/// One parsed node record.
#[derive(Debug, Clone)]
pub struct RawNode {
    pub name_code: u64,
    pub edges: Vec<(u64, u64)>,
}

/// What the lenient reader managed to recover.
#[derive(Debug, Clone, Default)]
pub struct SalvageReport {
    /// Node records parsed completely.
    pub nodes_parsed: usize,
    /// Declared node count from the header varint (possibly damaged).
    pub declared_nodes: u64,
    /// Edges whose child id referenced the current node or a later one
    /// (impossible in an intact bottom-up file; clamped to node 0).
    pub forward_refs_clamped: usize,
    /// Records whose name code exceeded the name table.
    pub bad_name_codes: usize,
    /// Bytes left unparsed at the tail after the last complete record.
    pub trailing_bytes: usize,
}

impl SalvageReport {
    /// True when the file parsed with no anomalies.
    pub fn is_clean(&self) -> bool {
        self.forward_refs_clamped == 0
            && self.bad_name_codes == 0
            && self.trailing_bytes == 0
            && self.nodes_parsed as u64 == self.declared_nodes
    }
}

fn parse(bytes: &[u8], strict: bool) -> Result<(RawSkeleton, SalvageReport)> {
    if bytes.len() < 5 || &bytes[0..4] != MAGIC {
        return Err(SkeletonError::BadHeader("missing VXSK magic".into()));
    }
    if bytes[4] != VERSION {
        return Err(SkeletonError::BadHeader(format!(
            "unsupported version {}",
            bytes[4]
        )));
    }
    let corrupt = |offset: usize, message: &str| SkeletonError::Corrupt {
        offset,
        message: message.to_string(),
    };

    let mut pos = 5usize;
    let (name_count, next) = varint::read(bytes, pos)?;
    pos = next;
    let mut names = Vec::new();
    for _ in 0..name_count {
        let (len, next) = varint::read(bytes, pos)?;
        pos = next;
        let end = pos
            .checked_add(len as usize)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| corrupt(pos, "name runs past end of file"))?;
        let name =
            std::str::from_utf8(&bytes[pos..end]).map_err(|_| corrupt(pos, "name is not UTF-8"))?;
        names.push(name.to_string());
        pos = end;
    }

    let (declared_nodes, next) = varint::read(bytes, pos)?;
    pos = next;

    let mut report = SalvageReport {
        declared_nodes,
        ..SalvageReport::default()
    };
    let mut nodes: Vec<RawNode> = Vec::new();
    while pos < bytes.len() {
        let record_start = pos;
        let parsed: std::result::Result<(RawNode, usize), ()> = (|| {
            let (name_code, next) = varint::read(bytes, pos).map_err(|_| ())?;
            let (k, mut p) = varint::read(bytes, next).map_err(|_| ())?;
            let mut edges = Vec::new();
            for _ in 0..k {
                let (child, n1) = varint::read(bytes, p).map_err(|_| ())?;
                let (run, n2) = varint::read(bytes, n1).map_err(|_| ())?;
                edges.push((child, run));
                p = n2;
            }
            Ok((RawNode { name_code, edges }, p))
        })();
        let (mut node, next) = match parsed {
            Ok(v) => v,
            Err(()) => {
                if strict {
                    return Err(corrupt(record_start, "truncated node record"));
                }
                report.trailing_bytes = bytes.len() - record_start;
                break;
            }
        };
        let id = nodes.len() as u64;
        if node.name_code > name_count {
            if strict {
                return Err(corrupt(record_start, "name code out of range"));
            }
            report.bad_name_codes += 1;
            node.name_code = 0;
        }
        for edge in &mut node.edges {
            if edge.0 >= id {
                if strict {
                    return Err(corrupt(record_start, "child reference not bottom-up"));
                }
                report.forward_refs_clamped += 1;
                edge.0 = 0;
            }
            if edge.1 == 0 {
                if strict {
                    return Err(corrupt(record_start, "zero-length run"));
                }
                edge.1 = 1;
            }
        }
        nodes.push(node);
        pos = next;
        if strict && nodes.len() as u64 == declared_nodes {
            break;
        }
    }
    report.nodes_parsed = nodes.len();
    if strict {
        if nodes.len() as u64 != declared_nodes {
            return Err(corrupt(pos, "fewer node records than declared"));
        }
        if pos != bytes.len() {
            return Err(corrupt(pos, "trailing bytes after last node record"));
        }
        if nodes.is_empty() {
            return Err(corrupt(pos, "skeleton has no nodes"));
        }
    }
    Ok((RawSkeleton { names, nodes }, report))
}

/// Turns a validated [`RawSkeleton`] into an arena. The raw node ids map to
/// arena ids via the returned table implicitly: raw text nodes collapse
/// into arena node 0 and element records are hash-consed (an intact file
/// contains no duplicates, so this is a bijection on element nodes).
fn rebuild(raw: &RawSkeleton) -> Result<(Skeleton, NodeId)> {
    let mut skeleton = Skeleton::new();
    let name_ids: Vec<NameId> = raw.names.iter().map(|n| skeleton.intern(n)).collect();
    let mut map: Vec<NodeId> = Vec::with_capacity(raw.nodes.len());
    for (i, node) in raw.nodes.iter().enumerate() {
        if node.name_code == 0 {
            if !node.edges.is_empty() {
                return Err(SkeletonError::Corrupt {
                    offset: 0,
                    message: format!("text node record {i} has edges"),
                });
            }
            map.push(skeleton.text_node());
            continue;
        }
        let name = name_ids[(node.name_code - 1) as usize];
        let edges = node
            .edges
            .iter()
            .map(|&(child, run)| Edge {
                child: map[child as usize],
                run,
            })
            .collect();
        map.push(skeleton.cons(name, edges));
    }
    let root = *map.last().ok_or(SkeletonError::Corrupt {
        offset: 0,
        message: "empty skeleton".into(),
    })?;
    Ok((skeleton, root))
}

/// Rebuilds an arena from a salvaged raw skeleton without strict checks;
/// used by golden-store loading. Damaged duplicate records may collapse via
/// hash-consing; the root is chosen by the caller from `raw.nodes`.
pub fn rebuild_lenient(raw: &RawSkeleton, root_record: usize) -> Result<(Skeleton, NodeId)> {
    let mut skeleton = Skeleton::new();
    let name_ids: Vec<NameId> = raw.names.iter().map(|n| skeleton.intern(n)).collect();
    let mut map: Vec<NodeId> = Vec::with_capacity(raw.nodes.len());
    for node in &raw.nodes {
        if node.name_code == 0 {
            map.push(skeleton.text_node());
            continue;
        }
        let name = name_ids[(node.name_code - 1) as usize];
        let edges = node
            .edges
            .iter()
            .map(|&(child, run)| Edge {
                child: map[child as usize],
                run,
            })
            .collect();
        map.push(skeleton.cons(name, edges));
    }
    let root = *map.get(root_record).ok_or(SkeletonError::Corrupt {
        offset: 0,
        message: "root record out of range".into(),
    })?;
    Ok((skeleton, root))
}

/// Convenience: pretty header summary for diagnostics.
pub fn describe(raw: &RawSkeleton) -> String {
    format!(
        "{} names, {} node records",
        raw.names.len(),
        raw.nodes.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::push_child;

    fn sample() -> (Skeleton, NodeId) {
        let mut s = Skeleton::new();
        let t = s.text_node();
        let name_row = s.intern("row");
        let name_cell = s.intern("cell");
        let name_table = s.intern("table");
        let cell = s.cons(name_cell, vec![Edge { child: t, run: 1 }]);
        let mut row_edges = Vec::new();
        for _ in 0..3 {
            push_child(&mut row_edges, cell);
        }
        let row = s.cons(name_row, row_edges);
        let root = s.cons(
            name_table,
            vec![Edge {
                child: row,
                run: 500,
            }],
        );
        (s, root)
    }

    #[test]
    fn round_trip_is_identity() {
        let (s, root) = sample();
        let bytes = write(&s, root);
        let (s2, root2) = read(&bytes).unwrap();
        assert_eq!(s.expanded_size(root), s2.expanded_size(root2));
        let bytes2 = write(&s2, root2);
        assert_eq!(bytes, bytes2, "serialization must be canonical");
    }

    #[test]
    fn root_is_last_and_children_precede_parents() {
        let (s, root) = sample();
        let bytes = write(&s, root);
        let (raw, report) = read_lenient(&bytes).unwrap();
        assert!(report.is_clean());
        let last = raw.nodes.last().unwrap();
        // Root record carries the 'table' name (code = index+1).
        assert_eq!(raw.names[(last.name_code - 1) as usize], "table");
        for (i, n) in raw.nodes.iter().enumerate() {
            for &(child, _) in &n.edges {
                assert!(child < i as u64);
            }
        }
    }

    #[test]
    fn strict_reader_rejects_damage() {
        let (s, root) = sample();
        let mut bytes = write(&s, root);
        bytes.push(0x00); // trailing garbage
        assert!(read(&bytes).is_err());

        let bytes = write(&s, root);
        assert!(read(&bytes[..bytes.len() - 1]).is_err()); // truncation
    }

    #[test]
    fn lenient_reader_survives_truncation() {
        let (s, root) = sample();
        let bytes = write(&s, root);
        let (raw, report) = read_lenient(&bytes[..bytes.len() - 1]).unwrap();
        assert!(!report.is_clean());
        assert!(raw.nodes.len() >= 2);
    }

    #[test]
    fn garbage_collection_drops_unreachable_nodes() {
        let (mut s, root) = sample();
        let junk_name = s.intern("junk");
        let _unreachable = s.cons(junk_name, vec![]);
        let bytes = write(&s, root);
        let (s2, _) = read(&bytes).unwrap();
        assert!(s2.name_id("junk").is_none());
    }
}
