//! The structural self-index (`.vxpi`): per-node containment summaries
//! that let the engine decide — without walking a subtree — whether a
//! `*`/`//` step pattern can still complete inside it.
//!
//! The paper's §4 observation is that skeleton matching need not be a
//! linear pass: a path-summary → skeleton-node containment map tells a
//! `//author` step which DAG nodes can materialize an `author` at all,
//! so evaluation seeds cursors only at candidate nodes and bulk-skips
//! every shared subtree that provably contains no match. Three arrays,
//! all indexed by arena [`NodeId`], carry that information:
//!
//! * `below` — a bitset over [`NameId`] per node: the element names that
//!   occur *strictly below* the node (the containment map proper),
//! * `depth_below` — the longest element chain below the node, which
//!   bounds how many further pattern steps can still match,
//! * `expanded` — the expanded (run-multiplied) node count of the
//!   subtree, so a skip can be credited with exactly the work it saved.
//!
//! The index is derived data: it is rebuilt from the skeleton whenever
//! it is absent, stale, or damaged, and persisting it (`write_index` /
//! `read_index`) is purely an open-time optimization. On disk the
//! containment map is stored name-major as run-coalesced node-id ranges
//! — regular documents cons whole families of row nodes consecutively,
//! so the ranges collapse — and the reader degrades to rebuild-on-open
//! on any parse or staleness failure, mirroring `.vec` salvage.

use crate::arena::{NameId, NodeId, Skeleton};
use crate::{Result, SkeletonError};
use vx_storage::varint;

/// `.vxpi` magic bytes.
pub const INDEX_MAGIC: &[u8; 4] = b"VXPI";
/// Current `.vxpi` format version.
pub const INDEX_VERSION: u8 = 1;

/// The structural self-index over one skeleton arena. Node ids refer to
/// the arena it was built from (or validated against via
/// [`StructIndex::matches`]); it holds no skeleton reference and is
/// `Send + Sync` shareable like the rest of the derived read path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructIndex {
    name_count: usize,
    /// `u64` words per node-level name bitset.
    blocks: usize,
    root: NodeId,
    /// Node-major name bitsets, `node_count * blocks` words: bit `n` of
    /// node `v`'s slice is set iff an element named `n` occurs strictly
    /// below `v`.
    below: Vec<u64>,
    /// Longest element chain strictly below each node (0 = leaf).
    depth_below: Vec<u32>,
    /// Expanded element+text node count of each subtree (runs
    /// multiplied), matching `Skeleton::expanded_size`.
    expanded: Vec<u64>,
}

impl StructIndex {
    /// Builds the index in one bottom-up pass. `cons` guarantees
    /// `child.id < parent.id` for every node in the arena (file-order
    /// rebuilds preserve this too), so a single forward scan sees every
    /// child before its parents.
    pub fn build(skeleton: &Skeleton, root: NodeId) -> StructIndex {
        let name_count = skeleton.names().len();
        let blocks = name_count.div_ceil(64).max(1);
        let node_count = skeleton.len();
        let mut below = vec![0u64; node_count * blocks];
        let mut depth_below = vec![0u32; node_count];
        let mut expanded = vec![0u64; node_count];
        for (id, data) in skeleton.iter() {
            let v = id.0 as usize;
            expanded[v] = 1;
            let mut depth = 0u32;
            for edge in &data.edges {
                let c = edge.child.0 as usize;
                expanded[v] += edge.run * expanded[c];
                if let Some(child_name) = skeleton.node(edge.child).name {
                    depth = depth.max(1 + depth_below[c]);
                    // below(v) ∪= {child} ∪ below(child); split borrows by
                    // index since child and parent share one flat vector.
                    let (lo, hi) = below.split_at_mut(v * blocks);
                    let child_bits = &lo[c * blocks..c * blocks + blocks];
                    let node_bits = &mut hi[..blocks];
                    for (word, child_word) in node_bits.iter_mut().zip(child_bits) {
                        *word |= child_word;
                    }
                    node_bits[child_name.0 as usize / 64] |= 1u64 << (child_name.0 % 64);
                }
            }
            depth_below[v] = depth;
        }
        StructIndex {
            name_count,
            blocks,
            root,
            below,
            depth_below,
            expanded,
        }
    }

    /// Whether this index describes exactly `skeleton` rooted at `root`
    /// — the staleness gate a loader must pass before trusting a
    /// persisted index.
    pub fn matches(&self, skeleton: &Skeleton, root: NodeId) -> bool {
        self.root == root
            && self.name_count == skeleton.names().len()
            && self.depth_below.len() == skeleton.len()
    }

    /// Number of nodes the index covers.
    pub fn node_count(&self) -> usize {
        self.depth_below.len()
    }

    /// Number of interned names the bitsets cover.
    pub fn name_count(&self) -> usize {
        self.name_count
    }

    /// `u64` words per per-node name bitset.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The root the index was built for.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The name bitset of `node`: names occurring strictly below it.
    pub fn below_bits(&self, node: NodeId) -> &[u64] {
        let v = node.0 as usize * self.blocks;
        &self.below[v..v + self.blocks]
    }

    /// Whether an element named `name` occurs strictly below `node`.
    pub fn contains_below(&self, node: NodeId, name: NameId) -> bool {
        let bit = name.0 as usize;
        bit < self.name_count && self.below_bits(node)[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Longest element chain strictly below `node`.
    pub fn depth_below(&self, node: NodeId) -> u32 {
        self.depth_below[node.0 as usize]
    }

    /// Expanded node count of the subtree rooted at `node` (runs
    /// multiplied, text markers included) — what a bulk skip of the
    /// subtree saves.
    pub fn expanded(&self, node: NodeId) -> u64 {
        self.expanded[node.0 as usize]
    }

    /// The containment map viewed name-major: every node that has
    /// `name` strictly below it, ascending.
    pub fn nodes_with(&self, name: NameId) -> Vec<NodeId> {
        (0..self.node_count() as u32)
            .map(NodeId)
            .filter(|&v| self.contains_below(v, name))
            .collect()
    }
}

/// Serializes the index as a `.vxpi` byte stream.
///
/// Layout (all integers LEB128 varints):
///
/// ```text
/// "VXPI" version  node_count name_count root_id
/// node_count × depth_below
/// node_count × expanded
/// name_count × ( range_count, range_count × (start_delta, len) )
/// ```
///
/// The per-name section is the containment map run-coalesced: ascending
/// node-id ranges where the name's bit is set, each start encoded as a
/// delta from the previous range's end (first from 0).
pub fn write_index(index: &StructIndex) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(INDEX_MAGIC);
    out.push(INDEX_VERSION);
    varint::write(&mut out, index.node_count() as u64);
    varint::write(&mut out, index.name_count as u64);
    varint::write(&mut out, index.root.0 as u64);
    for &d in &index.depth_below {
        varint::write(&mut out, d as u64);
    }
    for &e in &index.expanded {
        varint::write(&mut out, e);
    }
    for name in 0..index.name_count as u32 {
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for v in 0..index.node_count() as u32 {
            if index.contains_below(NodeId(v), NameId(name)) {
                match ranges.last_mut() {
                    Some((start, len)) if *start + *len == v as u64 => *len += 1,
                    _ => ranges.push((v as u64, 1)),
                }
            }
        }
        varint::write(&mut out, ranges.len() as u64);
        let mut prev_end = 0u64;
        for (start, len) in ranges {
            varint::write(&mut out, start - prev_end);
            varint::write(&mut out, len);
            prev_end = start + len;
        }
    }
    out
}

/// Strict `.vxpi` reader. Any failure means the caller should rebuild
/// from the skeleton — a damaged index is never an open failure.
pub fn read_index(bytes: &[u8]) -> Result<StructIndex> {
    if bytes.len() < 5 || &bytes[0..4] != INDEX_MAGIC {
        return Err(SkeletonError::BadHeader("missing VXPI magic".to_string()));
    }
    if bytes[4] != INDEX_VERSION {
        return Err(SkeletonError::BadHeader(format!(
            "unsupported .vxpi version {}",
            bytes[4]
        )));
    }
    let corrupt = |offset: usize, message: &str| SkeletonError::Corrupt {
        offset,
        message: message.to_string(),
    };
    let mut pos = 5;
    let next = |buf: &[u8], pos: &mut usize| -> Result<u64> {
        let (value, p) = varint::read(buf, *pos)?;
        *pos = p;
        Ok(value)
    };
    let node_count = next(bytes, &mut pos)? as usize;
    let name_count = next(bytes, &mut pos)? as usize;
    let root = next(bytes, &mut pos)?;
    // Cap counts by what the buffer could possibly hold (each entry is
    // at least one byte) so a corrupt header cannot drive a huge
    // allocation before the first per-node read fails.
    if node_count > bytes.len() || name_count > bytes.len() {
        return Err(corrupt(5, "declared counts exceed file size"));
    }
    if root >= node_count.max(1) as u64 {
        return Err(corrupt(5, "root id out of range"));
    }
    let mut depth_below = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let d = next(bytes, &mut pos)?;
        if d > u32::MAX as u64 {
            return Err(corrupt(pos, "depth exceeds u32"));
        }
        depth_below.push(d as u32);
    }
    let mut expanded = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        expanded.push(next(bytes, &mut pos)?);
    }
    let blocks = name_count.div_ceil(64).max(1);
    let mut below = vec![0u64; node_count * blocks];
    for name in 0..name_count {
        let range_count = next(bytes, &mut pos)? as usize;
        let mut cursor = 0u64;
        for _ in 0..range_count {
            let start = cursor + next(bytes, &mut pos)?;
            let len = next(bytes, &mut pos)?;
            if len == 0 {
                return Err(corrupt(pos, "empty containment range"));
            }
            let end = start
                .checked_add(len)
                .ok_or_else(|| corrupt(pos, "containment range overflows"))?;
            if end > node_count as u64 {
                return Err(corrupt(pos, "containment range past node count"));
            }
            for v in start..end {
                below[v as usize * blocks + name / 64] |= 1u64 << (name % 64);
            }
            cursor = end;
        }
    }
    if pos != bytes.len() {
        return Err(corrupt(pos, "trailing bytes after containment map"));
    }
    Ok(StructIndex {
        name_count,
        blocks,
        root: NodeId(root as u32),
        below,
        depth_below,
        expanded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::{Edge, TEXT_NODE};

    /// `<lib> <book><title>#</title><author>#</author></book> ×2
    ///        <note>#</note> </lib>`
    fn sample() -> (Skeleton, NodeId) {
        let mut s = Skeleton::new();
        let lib = s.intern("lib");
        let book = s.intern("book");
        let title = s.intern("title");
        let author = s.intern("author");
        let note = s.intern("note");
        let text = |child| Edge { child, run: 1 };
        let t = s.cons(title, vec![text(TEXT_NODE)]);
        let a = s.cons(author, vec![text(TEXT_NODE)]);
        let b = s.cons(book, vec![text(t), text(a)]);
        let n = s.cons(note, vec![text(TEXT_NODE)]);
        let root = s.cons(lib, vec![Edge { child: b, run: 2 }, text(n)]);
        (s, root)
    }

    #[test]
    fn containment_depth_and_expansion_agree_with_the_arena() {
        let (s, root) = sample();
        let idx = StructIndex::build(&s, root);
        assert!(idx.matches(&s, root));
        let name = |n: &str| s.name_id(n).unwrap();
        // Root contains every element name below it, but not itself.
        for n in ["book", "title", "author", "note"] {
            assert!(idx.contains_below(root, name(n)), "root lacks {n}");
        }
        assert!(!idx.contains_below(root, name("lib")));
        // A book contains title/author only; leaves contain nothing.
        let book = idx.nodes_with(name("title"))[0];
        assert!(idx.contains_below(book, name("author")));
        assert!(!idx.contains_below(book, name("note")));
        assert_eq!(idx.depth_below(root), 2);
        assert_eq!(idx.depth_below(book), 1);
        // Expansion matches the arena's memoized count everywhere.
        for (id, _) in s.iter() {
            assert_eq!(idx.expanded(id), s.expanded_size(id), "node {id:?}");
        }
        // lib + 2×(book+title+#+author+#) + note + # = 13.
        assert_eq!(idx.expanded(root), 13);
    }

    #[test]
    fn round_trips_through_vxpi_bytes() {
        let (s, root) = sample();
        let idx = StructIndex::build(&s, root);
        let bytes = write_index(&idx);
        let back = read_index(&bytes).unwrap();
        assert_eq!(back, idx);
        // Serialization is canonical: a second trip is byte-identical.
        assert_eq!(write_index(&back), bytes);
    }

    #[test]
    fn reader_rejects_damage_at_every_truncation_point() {
        let (s, root) = sample();
        let bytes = write_index(&StructIndex::build(&s, root));
        for cut in 0..bytes.len() {
            assert!(
                read_index(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(read_index(&extended).is_err(), "trailing byte accepted");
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(read_index(&wrong_magic).is_err());
        let mut wrong_version = bytes;
        wrong_version[4] = 9;
        assert!(read_index(&wrong_version).is_err());
    }

    #[test]
    fn stale_index_fails_the_matches_gate() {
        let (s, root) = sample();
        let idx = StructIndex::build(&s, root);
        let mut grown = s.clone();
        grown.intern("extra");
        assert!(!idx.matches(&grown, root), "name count changed");
        let (other, other_root) = {
            let mut s2 = Skeleton::new();
            let a = s2.intern("a");
            let root = s2.cons(
                a,
                vec![Edge {
                    child: TEXT_NODE,
                    run: 1,
                }],
            );
            (s2, root)
        };
        assert!(!idx.matches(&other, other_root));
    }

    #[test]
    fn build_is_deterministic() {
        let (s, root) = sample();
        let a = write_index(&StructIndex::build(&s, root));
        let b = write_index(&StructIndex::build(&s, root));
        assert_eq!(a, b);
    }
}
