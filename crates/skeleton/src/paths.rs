//! Memoized path analysis over the skeleton DAG.
//!
//! Vectors are keyed by *root-to-text tag paths*; evaluation needs to know,
//! without decompressing the skeleton, (a) how many text occurrences each
//! path has, (b) in what order paths first occur in the document, and
//! (c) for a binding path `p` and a relative path `r`, the contiguous range
//! of `p/r`-vector positions that belongs to each occurrence of `p`
//! (positions are in document order, so occurrence ranges are prefix sums).
//!
//! Because hash-consing shares a node across *different* ancestor
//! contexts, per-path quantities are memoized on the node alone by keeping
//! paths relative: `texts_below(node)` maps each downward tag path from
//! `node` to its text count, independent of ancestry.

use crate::arena::{NameId, NodeId, Skeleton};
use std::collections::{HashMap, HashSet};

/// A downward tag path (possibly empty), e.g. `[Article, Abstract]`.
pub type RelPath = Vec<NameId>;

/// Path analysis over one skeleton rooted at `root`.
pub struct PathIndex<'a> {
    skeleton: &'a Skeleton,
    root: NodeId,
    /// node -> (relative path from node's *children* downward, text count).
    /// The node's own name is *not* part of the key paths.
    below: HashMap<NodeId, Vec<(RelPath, u64)>>,
}

impl<'a> PathIndex<'a> {
    pub fn new(skeleton: &'a Skeleton, root: NodeId) -> Self {
        let mut index = PathIndex {
            skeleton,
            root,
            below: HashMap::new(),
        };
        index.compute_below(root);
        index
    }

    pub fn skeleton(&self) -> &Skeleton {
        self.skeleton
    }

    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Memoized: for each downward path from `node` (excluding `node`'s own
    /// name) that ends in text, the number of text occurrences, runs
    /// multiplied out. The empty path means `node` itself is `#`.
    fn compute_below(&mut self, node: NodeId) -> &Vec<(RelPath, u64)> {
        if !self.below.contains_key(&node) {
            let data = self.skeleton.node(node);
            let mut acc: Vec<(RelPath, u64)> = Vec::new();
            let mut seen: HashMap<RelPath, usize> = HashMap::new();
            if data.name.is_none() {
                acc.push((Vec::new(), 1));
            } else {
                let edges = data.edges.clone();
                for edge in edges {
                    let child_name = self.skeleton.node(edge.child).name;
                    let child_paths = self.compute_below(edge.child).clone();
                    for (rel, count) in child_paths {
                        let mut path = Vec::with_capacity(rel.len() + 1);
                        if let Some(n) = child_name {
                            path.push(n);
                        }
                        path.extend_from_slice(&rel);
                        let add = count * edge.run;
                        match seen.get(&path) {
                            Some(&i) => acc[i].1 += add,
                            None => {
                                seen.insert(path.clone(), acc.len());
                                acc.push((path, add));
                            }
                        }
                    }
                }
            }
            self.below.insert(node, acc);
        }
        &self.below[&node]
    }

    /// All root-to-text tag paths with their occurrence counts, ordered by
    /// first occurrence in document order (the catalog order). Each path
    /// includes the root's own tag.
    pub fn text_paths(&self) -> Vec<(RelPath, u64)> {
        let root_name = self.skeleton.node(self.root).name;
        let mut counts: HashMap<RelPath, u64> = HashMap::new();
        for (rel, count) in &self.below[&self.root] {
            let mut path = Vec::with_capacity(rel.len() + 1);
            if let Some(n) = root_name {
                path.push(n);
            }
            path.extend_from_slice(rel);
            *counts.entry(path).or_insert(0) += *count;
        }
        let order = self.first_occurrence_order();
        let mut out = Vec::new();
        for path in order {
            if let Some(count) = counts.remove(&path) {
                out.push((path, count));
            }
        }
        debug_assert!(counts.is_empty());
        out
    }

    /// Document-order first occurrence of each complete text path.
    fn first_occurrence_order(&self) -> Vec<RelPath> {
        // DFS over (node, prefix) pairs, memoized per pair, children in
        // edge order. Runs never change first-occurrence order.
        let mut order: Vec<RelPath> = Vec::new();
        let mut seen_paths: HashSet<RelPath> = HashSet::new();
        let mut visited: HashSet<(NodeId, RelPath)> = HashSet::new();
        let mut stack: Vec<(NodeId, RelPath)> = vec![(self.root, Vec::new())];
        // Explicit stack in reverse order to get document order.
        while let Some((node, prefix)) = stack.pop() {
            let data = self.skeleton.node(node);
            let mut path = prefix.clone();
            if let Some(n) = data.name {
                path.push(n);
            }
            if data.name.is_none() {
                if seen_paths.insert(prefix.clone()) {
                    order.push(prefix);
                }
                continue;
            }
            for edge in data.edges.iter().rev() {
                let key = (edge.child, path.clone());
                if visited.insert(key) {
                    stack.push((edge.child, path.clone()));
                }
            }
        }
        order
    }

    /// Total text occurrences below `node` (any path).
    pub fn text_count(&self, node: NodeId) -> u64 {
        self.below[&node].iter().map(|(_, c)| c).sum()
    }

    /// Text occurrences below `node` along exactly `rel` (a downward path
    /// excluding `node`'s name).
    pub fn text_count_along(&self, node: NodeId, rel: &[NameId]) -> u64 {
        self.below[&node]
            .iter()
            .filter(|(p, _)| p == rel)
            .map(|(_, c)| c)
            .sum()
    }

    /// Number of occurrences of the element path `path` (starting with the
    /// root's tag). The root path itself has one occurrence.
    pub fn occurrences(&self, path: &[NameId]) -> u64 {
        let root_name = self.skeleton.node(self.root).name;
        match path.split_first() {
            None => 0,
            Some((&first, rest)) => {
                if root_name != Some(first) {
                    return 0;
                }
                self.count_occurrences(self.root, rest)
            }
        }
    }

    fn count_occurrences(&self, node: NodeId, rest: &[NameId]) -> u64 {
        match rest.split_first() {
            None => 1,
            Some((&next, tail)) => {
                let mut total = 0;
                for edge in &self.skeleton.node(node).edges {
                    if self.skeleton.node(edge.child).name == Some(next) {
                        total += edge.run * self.count_occurrences(edge.child, tail);
                    }
                }
                total
            }
        }
    }

    /// For each occurrence of `binding_path` (in document order), the
    /// number of `rel`-path texts below it. Prefix-summing the result gives
    /// each occurrence's contiguous range in the `binding_path + rel`
    /// vector. `binding_path` starts with the root tag.
    pub fn binding_text_counts(&self, binding_path: &[NameId], rel: &[NameId]) -> Vec<u64> {
        let mut out = Vec::new();
        let root_name = self.skeleton.node(self.root).name;
        if let Some((&first, rest)) = binding_path.split_first() {
            if root_name == Some(first) {
                self.collect_binding_counts(self.root, rest, rel, 1, &mut out);
            }
        }
        out
    }

    fn collect_binding_counts(
        &self,
        node: NodeId,
        rest: &[NameId],
        rel: &[NameId],
        repeat: u64,
        out: &mut Vec<u64>,
    ) {
        match rest.split_first() {
            None => {
                let count = self.text_count_along(node, rel);
                for _ in 0..repeat {
                    out.push(count);
                }
            }
            Some((&next, tail)) => {
                for edge in &self.skeleton.node(node).edges {
                    if self.skeleton.node(edge.child).name == Some(next) {
                        self.collect_binding_counts(edge.child, tail, rel, edge.run, out);
                    }
                }
            }
        }
    }

    /// Containment map: the set of tag names reachable strictly below
    /// `node`. Used by the engine to prune impossible paths early.
    pub fn containment(&self, node: NodeId) -> Vec<NameId> {
        let mut memo: HashMap<NodeId, Vec<NameId>> = HashMap::new();
        fn go(s: &Skeleton, node: NodeId, memo: &mut HashMap<NodeId, Vec<NameId>>) -> Vec<NameId> {
            if let Some(v) = memo.get(&node) {
                return v.clone();
            }
            let mut tags: Vec<NameId> = Vec::new();
            for edge in &s.node(node).edges {
                if let Some(n) = s.node(edge.child).name {
                    tags.push(n);
                }
                tags.extend(go(s, edge.child, memo));
            }
            tags.sort();
            tags.dedup();
            memo.insert(node, tags.clone());
            tags
        }
        go(self.skeleton, node, &mut memo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::{push_child, Edge};

    /// Builds: root(lib) -> 2×book(title#, author#, author#), 1×note(#)
    fn sample() -> (Skeleton, NodeId, Vec<NameId>) {
        let mut s = Skeleton::new();
        let t = s.text_node();
        let lib = s.intern("lib");
        let book = s.intern("book");
        let title = s.intern("title");
        let author = s.intern("author");
        let note = s.intern("note");
        let title_n = s.cons(title, vec![Edge { child: t, run: 1 }]);
        let author_n = s.cons(author, vec![Edge { child: t, run: 1 }]);
        let mut book_edges = Vec::new();
        push_child(&mut book_edges, title_n);
        push_child(&mut book_edges, author_n);
        push_child(&mut book_edges, author_n);
        let book_n = s.cons(book, book_edges);
        let note_n = s.cons(note, vec![Edge { child: t, run: 1 }]);
        let mut root_edges = Vec::new();
        push_child(&mut root_edges, book_n);
        push_child(&mut root_edges, book_n);
        push_child(&mut root_edges, note_n);
        let root = s.cons(lib, root_edges);
        (s, root, vec![lib, book, title, author, note])
    }

    #[test]
    fn text_paths_counts_and_order() {
        let (s, root, names) = sample();
        let index = PathIndex::new(&s, root);
        let (lib, book, title, author, note) = (names[0], names[1], names[2], names[3], names[4]);
        let paths = index.text_paths();
        assert_eq!(
            paths,
            vec![
                (vec![lib, book, title], 2),
                (vec![lib, book, author], 4),
                (vec![lib, note], 1),
            ]
        );
    }

    #[test]
    fn occurrences_and_binding_counts() {
        let (s, root, names) = sample();
        let index = PathIndex::new(&s, root);
        let (lib, book, author) = (names[0], names[1], names[3]);
        assert_eq!(index.occurrences(&[lib]), 1);
        assert_eq!(index.occurrences(&[lib, book]), 2);
        assert_eq!(
            index.binding_text_counts(&[lib, book], &[author]),
            vec![2, 2]
        );
        assert_eq!(index.binding_text_counts(&[lib], &[book, author]), vec![4]);
    }

    #[test]
    fn containment_lists_reachable_tags() {
        let (s, root, names) = sample();
        let index = PathIndex::new(&s, root);
        let tags = index.containment(root);
        assert!(tags.contains(&names[1]));
        assert!(tags.contains(&names[3]));
        assert!(!tags.contains(&names[0])); // root tag not strictly below
    }
}
