//! Memoized path analysis over the skeleton DAG.
//!
//! Vectors are keyed by *root-to-text tag paths*; evaluation needs to know,
//! without decompressing the skeleton, (a) how many text occurrences each
//! path has, (b) in what order paths first occur in the document, and
//! (c) for a binding path `p` and a relative path `r`, the contiguous range
//! of `p/r`-vector positions that belongs to each occurrence of `p`
//! (positions are in document order, so occurrence ranges are prefix sums).
//!
//! Because hash-consing shares a node across *different* ancestor
//! contexts, per-path quantities are memoized on the node alone by keeping
//! paths relative: `texts_below(node)` maps each downward tag path from
//! `node` to its text count, independent of ancestry.

use crate::arena::{NameId, NodeId, Skeleton};
use crate::structural::StructIndex;
use std::collections::{HashMap, HashSet};

/// A downward tag path (possibly empty), e.g. `[Article, Abstract]`.
pub type RelPath = Vec<NameId>;

/// Path analysis over one skeleton rooted at `root`.
///
/// The index owns only *derived* data (per-node text layouts keyed by
/// [`NodeId`]); it holds no reference to the skeleton it was computed
/// from. That makes it storable next to the skeleton inside one shared
/// immutable value (`vx-core`'s `StoreHandle`) and freely shareable
/// across threads — methods that need to resolve names or edges take the
/// skeleton as an explicit argument instead.
pub struct PathIndex {
    root: NodeId,
    /// node -> (relative path from node's *children* downward, text count).
    /// The node's own name is *not* part of the key paths.
    below: HashMap<NodeId, Vec<(RelPath, u64)>>,
    /// The structural self-index over the same arena (containment
    /// bitsets, depth bounds, expansion counts). Built here unless a
    /// persisted `.vxpi` copy was supplied via
    /// [`PathIndex::with_structural`].
    structural: StructIndex,
}

impl PathIndex {
    pub fn new(skeleton: &Skeleton, root: NodeId) -> Self {
        Self::assemble(skeleton, root, StructIndex::build(skeleton, root))
    }

    /// As [`PathIndex::new`], but adopting a structural index loaded
    /// from disk instead of rebuilding it. The caller must have passed
    /// [`StructIndex::matches`]; a stale index is rebuilt here as a
    /// last line of defense.
    pub fn with_structural(skeleton: &Skeleton, root: NodeId, structural: StructIndex) -> Self {
        let structural = if structural.matches(skeleton, root) {
            structural
        } else {
            StructIndex::build(skeleton, root)
        };
        Self::assemble(skeleton, root, structural)
    }

    fn assemble(skeleton: &Skeleton, root: NodeId, structural: StructIndex) -> Self {
        let mut index = PathIndex {
            root,
            below: HashMap::new(),
            structural,
        };
        index.compute_below(skeleton, root);
        index
    }

    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The structural self-index built (or loaded) alongside this path
    /// analysis.
    pub fn structural(&self) -> &StructIndex {
        &self.structural
    }

    /// Memoized: for each downward path from `node` (excluding `node`'s own
    /// name) that ends in text, the number of text occurrences, runs
    /// multiplied out. The empty path means `node` itself is `#`.
    fn compute_below(&mut self, skeleton: &Skeleton, node: NodeId) -> &Vec<(RelPath, u64)> {
        if !self.below.contains_key(&node) {
            let data = skeleton.node(node);
            let mut acc: Vec<(RelPath, u64)> = Vec::new();
            let mut seen: HashMap<RelPath, usize> = HashMap::new();
            if data.name.is_none() {
                acc.push((Vec::new(), 1));
            } else {
                let edges = data.edges.clone();
                for edge in edges {
                    let child_name = skeleton.node(edge.child).name;
                    let child_paths = self.compute_below(skeleton, edge.child).clone();
                    for (rel, count) in child_paths {
                        let mut path = Vec::with_capacity(rel.len() + 1);
                        if let Some(n) = child_name {
                            path.push(n);
                        }
                        path.extend_from_slice(&rel);
                        let add = count * edge.run;
                        match seen.get(&path) {
                            Some(&i) => acc[i].1 += add,
                            None => {
                                seen.insert(path.clone(), acc.len());
                                acc.push((path, add));
                            }
                        }
                    }
                }
            }
            self.below.insert(node, acc);
        }
        &self.below[&node]
    }

    /// All root-to-text tag paths with their occurrence counts, ordered by
    /// first occurrence in document order (the catalog order). Each path
    /// includes the root's own tag.
    pub fn text_paths(&self, skeleton: &Skeleton) -> Vec<(RelPath, u64)> {
        let root_name = skeleton.node(self.root).name;
        let mut counts: HashMap<RelPath, u64> = HashMap::new();
        for (rel, count) in &self.below[&self.root] {
            let mut path = Vec::with_capacity(rel.len() + 1);
            if let Some(n) = root_name {
                path.push(n);
            }
            path.extend_from_slice(rel);
            *counts.entry(path).or_insert(0) += *count;
        }
        let order = self.first_occurrence_order(skeleton);
        let mut out = Vec::new();
        for path in order {
            if let Some(count) = counts.remove(&path) {
                out.push((path, count));
            }
        }
        debug_assert!(counts.is_empty());
        out
    }

    /// Document-order first occurrence of each complete text path.
    fn first_occurrence_order(&self, skeleton: &Skeleton) -> Vec<RelPath> {
        // DFS over (node, prefix) pairs, memoized per pair, children in
        // edge order. Runs never change first-occurrence order.
        let mut order: Vec<RelPath> = Vec::new();
        let mut seen_paths: HashSet<RelPath> = HashSet::new();
        let mut visited: HashSet<(NodeId, RelPath)> = HashSet::new();
        let mut stack: Vec<(NodeId, RelPath)> = vec![(self.root, Vec::new())];
        // Explicit stack in reverse order to get document order.
        while let Some((node, prefix)) = stack.pop() {
            let data = skeleton.node(node);
            let mut path = prefix.clone();
            if let Some(n) = data.name {
                path.push(n);
            }
            if data.name.is_none() {
                if seen_paths.insert(prefix.clone()) {
                    order.push(prefix);
                }
                continue;
            }
            for edge in data.edges.iter().rev() {
                let key = (edge.child, path.clone());
                if visited.insert(key) {
                    stack.push((edge.child, path.clone()));
                }
            }
        }
        order
    }

    /// The memoized per-node layout: for each downward text path from
    /// `node` (excluding `node`'s own name), its text occurrence count.
    /// Lets the engine bulk-advance vector cursors over subtrees no
    /// machine is alive in, without visiting them.
    pub fn texts_below(&self, node: NodeId) -> &[(RelPath, u64)] {
        &self.below[&node]
    }

    /// Total text occurrences below `node` (any path).
    pub fn text_count(&self, node: NodeId) -> u64 {
        self.below[&node].iter().map(|(_, c)| c).sum()
    }

    /// Text occurrences below `node` along exactly `rel` (a downward path
    /// excluding `node`'s name).
    pub fn text_count_along(&self, node: NodeId, rel: &[NameId]) -> u64 {
        self.below[&node]
            .iter()
            .filter(|(p, _)| p == rel)
            .map(|(_, c)| c)
            .sum()
    }

    /// Number of occurrences of the element path `path` (starting with the
    /// root's tag). The root path itself has one occurrence.
    pub fn occurrences(&self, skeleton: &Skeleton, path: &[NameId]) -> u64 {
        let root_name = skeleton.node(self.root).name;
        match path.split_first() {
            None => 0,
            Some((&first, rest)) => {
                if root_name != Some(first) {
                    return 0;
                }
                self.count_occurrences(skeleton, self.root, rest)
            }
        }
    }

    fn count_occurrences(&self, skeleton: &Skeleton, node: NodeId, rest: &[NameId]) -> u64 {
        match rest.split_first() {
            None => 1,
            Some((&next, tail)) => {
                let mut total = 0;
                for edge in &skeleton.node(node).edges {
                    if skeleton.node(edge.child).name == Some(next) {
                        total += edge.run * self.count_occurrences(skeleton, edge.child, tail);
                    }
                }
                total
            }
        }
    }

    /// For each occurrence of `binding_path` (in document order), the
    /// number of `rel`-path texts below it. Prefix-summing the result gives
    /// each occurrence's contiguous range in the `binding_path + rel`
    /// vector. `binding_path` starts with the root tag.
    pub fn binding_text_counts(
        &self,
        skeleton: &Skeleton,
        binding_path: &[NameId],
        rel: &[NameId],
    ) -> Vec<u64> {
        let mut out = Vec::new();
        let root_name = skeleton.node(self.root).name;
        if let Some((&first, rest)) = binding_path.split_first() {
            if root_name == Some(first) {
                self.collect_binding_counts(skeleton, self.root, rest, rel, 1, &mut out);
            }
        }
        out
    }

    fn collect_binding_counts(
        &self,
        skeleton: &Skeleton,
        node: NodeId,
        rest: &[NameId],
        rel: &[NameId],
        repeat: u64,
        out: &mut Vec<u64>,
    ) {
        match rest.split_first() {
            None => {
                let count = self.text_count_along(node, rel);
                for _ in 0..repeat {
                    out.push(count);
                }
            }
            Some((&next, tail)) => {
                for edge in &skeleton.node(node).edges {
                    if skeleton.node(edge.child).name == Some(next) {
                        self.collect_binding_counts(skeleton, edge.child, tail, rel, edge.run, out);
                    }
                }
            }
        }
    }

    /// Per-occurrence *element* counts: for each occurrence of
    /// `binding_path` (document order), the number of `rel`-path element
    /// occurrences below it (`rel` empty counts the occurrence itself).
    pub fn binding_element_counts(
        &self,
        skeleton: &Skeleton,
        binding_path: &[NameId],
        rel: &[NameId],
    ) -> Vec<u64> {
        let mut out = Vec::new();
        let root_name = skeleton.node(self.root).name;
        let mut memo = HashMap::new();
        if let Some((&first, rest)) = binding_path.split_first() {
            if root_name == Some(first) {
                self.walk_element_counts(skeleton, self.root, rest, rel, 1, &mut memo, &mut out);
            }
        }
        out
    }

    fn count_elements(
        &self,
        skeleton: &Skeleton,
        node: NodeId,
        rel: &[NameId],
        memo: &mut HashMap<(NodeId, Vec<NameId>), u64>,
    ) -> u64 {
        match rel.split_first() {
            None => 1,
            Some((&next, tail)) => {
                let key = (node, rel.to_vec());
                if let Some(&v) = memo.get(&key) {
                    return v;
                }
                let mut total = 0;
                for edge in &skeleton.node(node).edges {
                    if skeleton.node(edge.child).name == Some(next) {
                        total += edge.run * self.count_elements(skeleton, edge.child, tail, memo);
                    }
                }
                memo.insert(key, total);
                total
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_element_counts(
        &self,
        skeleton: &Skeleton,
        node: NodeId,
        rest: &[NameId],
        rel: &[NameId],
        repeat: u64,
        memo: &mut HashMap<(NodeId, Vec<NameId>), u64>,
        out: &mut Vec<u64>,
    ) {
        match rest.split_first() {
            None => {
                let c = self.count_elements(skeleton, node, rel, memo);
                for _ in 0..repeat {
                    out.push(c);
                }
            }
            Some((&next, tail)) => {
                for edge in &skeleton.node(node).edges {
                    if skeleton.node(edge.child).name == Some(next) {
                        self.walk_element_counts(
                            skeleton, edge.child, tail, rel, edge.run, memo, out,
                        );
                    }
                }
            }
        }
    }

    /// Expands a [`PathPattern`] (wildcards, descendant steps) into the
    /// set of concrete element tag paths — starting with the root's tag —
    /// that occur in this document, in first-occurrence document order.
    /// The paper resolves `*` and `//` against the structure summary, not
    /// the data; this is that resolution over the hash-consed skeleton.
    pub fn expand_pattern(&self, skeleton: &Skeleton, pattern: &PathPattern) -> Vec<RelPath> {
        let mut out = Vec::new();
        let mut seen: HashSet<RelPath> = HashSet::new();
        let root_name = match skeleton.node(self.root).name {
            Some(n) => n,
            None => return out,
        };
        // The pattern's first step must match the root element.
        let states = pattern.advance(PathPattern::START, root_name, skeleton.name(root_name));
        if states == 0 {
            return out;
        }
        let mut prefix = vec![root_name];
        let mut visited: HashSet<(NodeId, u64, RelPath)> = HashSet::new();
        self.expand_walk(
            skeleton,
            self.root,
            pattern,
            states,
            &mut prefix,
            &mut seen,
            &mut visited,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_walk(
        &self,
        skeleton: &Skeleton,
        node: NodeId,
        pattern: &PathPattern,
        states: u64,
        prefix: &mut RelPath,
        seen: &mut HashSet<RelPath>,
        visited: &mut HashSet<(NodeId, u64, RelPath)>,
        out: &mut Vec<RelPath>,
    ) {
        if pattern.accepts(states) && seen.insert(prefix.clone()) {
            out.push(prefix.clone());
        }
        for edge in &skeleton.node(node).edges {
            let child = skeleton.node(edge.child);
            let name = match child.name {
                Some(n) => n,
                None => continue,
            };
            let next = pattern.advance(states, name, skeleton.name(name));
            if next == 0 {
                continue;
            }
            prefix.push(name);
            if visited.insert((edge.child, next, prefix.clone())) {
                self.expand_walk(
                    skeleton, edge.child, pattern, next, prefix, seen, visited, out,
                );
            }
            prefix.pop();
        }
    }

    /// Memoized containment sets: for every DAG node reachable from the
    /// root, the set of tag names occurring strictly below it. One shared
    /// computation for the whole DAG (unlike [`PathIndex::containment`],
    /// which answers for a single node).
    pub fn reachable_names(&self, skeleton: &Skeleton) -> HashMap<NodeId, HashSet<NameId>> {
        let mut memo: HashMap<NodeId, HashSet<NameId>> = HashMap::new();
        fn go(
            s: &Skeleton,
            node: NodeId,
            memo: &mut HashMap<NodeId, HashSet<NameId>>,
        ) -> HashSet<NameId> {
            if let Some(v) = memo.get(&node) {
                return v.clone();
            }
            let mut tags: HashSet<NameId> = HashSet::new();
            for edge in &s.node(node).edges {
                if let Some(n) = s.node(edge.child).name {
                    tags.insert(n);
                }
                tags.extend(go(s, edge.child, memo));
            }
            memo.insert(node, tags.clone());
            tags
        }
        go(skeleton, self.root, &mut memo);
        memo
    }

    /// Containment map: the set of tag names reachable strictly below
    /// `node`. Used by the engine to prune impossible paths early.
    pub fn containment(&self, skeleton: &Skeleton, node: NodeId) -> Vec<NameId> {
        let mut memo: HashMap<NodeId, Vec<NameId>> = HashMap::new();
        fn go(s: &Skeleton, node: NodeId, memo: &mut HashMap<NodeId, Vec<NameId>>) -> Vec<NameId> {
            if let Some(v) = memo.get(&node) {
                return v.clone();
            }
            let mut tags: Vec<NameId> = Vec::new();
            for edge in &s.node(node).edges {
                if let Some(n) = s.node(edge.child).name {
                    tags.push(n);
                }
                tags.extend(go(s, edge.child, memo));
            }
            tags.sort();
            tags.dedup();
            memo.insert(node, tags.clone());
            tags
        }
        go(skeleton, node, &mut memo)
    }
}

/// A step test in a [`PathPattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternTest {
    /// A concrete tag. `None` means the tag does not occur in this
    /// skeleton's name table at all, so the step can never match.
    Name(Option<NameId>),
    /// `*` — any element tag except the synthetic `@attr` names.
    Any,
}

/// One step of a path pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternStep {
    /// `true` for `//` (the step may match at any depth below the
    /// previous match), `false` for `/` (direct children only).
    pub descend: bool,
    pub test: PatternTest,
}

/// A downward path pattern over element tags — the XQ[*,//] step
/// language. Matching is a tiny NFA whose state set is a bitmask of
/// "first `i` steps matched" positions (so patterns are limited to 63
/// steps, far beyond any real query).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathPattern {
    steps: Vec<PatternStep>,
}

impl PathPattern {
    /// The state mask before any element has been consumed.
    pub const START: u64 = 1;

    /// Maximum number of steps (bitmask representation).
    pub const MAX_STEPS: usize = 63;

    pub fn new(steps: Vec<PatternStep>) -> Option<Self> {
        (steps.len() <= Self::MAX_STEPS).then_some(PathPattern { steps })
    }

    pub fn steps(&self) -> &[PatternStep] {
        &self.steps
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// True when `states` contains the final (fully-matched) position.
    pub fn accepts(&self, states: u64) -> bool {
        states & (1u64 << self.steps.len()) != 0
    }

    /// Transition: the state set after descending into a child element
    /// named `name` (`name_str` is its spelled-out tag, used to keep `*`
    /// from matching the synthetic `@attr` encoding). Zero means the
    /// subtree below can no longer contribute a match.
    pub fn advance(&self, states: u64, name: NameId, name_str: &str) -> u64 {
        let mut next = 0u64;
        for i in 0..=self.steps.len() {
            if states & (1u64 << i) == 0 {
                continue;
            }
            if let Some(step) = self.steps.get(i) {
                if step.descend {
                    // `//`: the search may keep descending past this
                    // element without consuming the step.
                    next |= 1u64 << i;
                }
                let hit = match step.test {
                    PatternTest::Name(Some(id)) => id == name,
                    PatternTest::Name(None) => false,
                    PatternTest::Any => !name_str.starts_with('@'),
                };
                if hit {
                    next |= 1u64 << (i + 1);
                }
            }
        }
        next
    }

    /// Whether a concrete downward tag path matches the whole pattern.
    pub fn matches(&self, path: &[NameId], skeleton: &Skeleton) -> bool {
        let mut states = Self::START;
        for &name in path {
            states = self.advance(states, name, skeleton.name(name));
            if states == 0 {
                return false;
            }
        }
        self.accepts(states)
    }

    /// Whether a concrete path could be extended to match: some state is
    /// still alive after consuming `path`. Used for prefix pruning.
    pub fn matches_prefix(&self, path: &[NameId], skeleton: &Skeleton) -> bool {
        let mut states = Self::START;
        for &name in path {
            states = self.advance(states, name, skeleton.name(name));
            if states == 0 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::{push_child, Edge};

    /// Builds: root(lib) -> 2×book(title#, author#, author#), 1×note(#)
    fn sample() -> (Skeleton, NodeId, Vec<NameId>) {
        let mut s = Skeleton::new();
        let t = s.text_node();
        let lib = s.intern("lib");
        let book = s.intern("book");
        let title = s.intern("title");
        let author = s.intern("author");
        let note = s.intern("note");
        let title_n = s.cons(title, vec![Edge { child: t, run: 1 }]);
        let author_n = s.cons(author, vec![Edge { child: t, run: 1 }]);
        let mut book_edges = Vec::new();
        push_child(&mut book_edges, title_n);
        push_child(&mut book_edges, author_n);
        push_child(&mut book_edges, author_n);
        let book_n = s.cons(book, book_edges);
        let note_n = s.cons(note, vec![Edge { child: t, run: 1 }]);
        let mut root_edges = Vec::new();
        push_child(&mut root_edges, book_n);
        push_child(&mut root_edges, book_n);
        push_child(&mut root_edges, note_n);
        let root = s.cons(lib, root_edges);
        (s, root, vec![lib, book, title, author, note])
    }

    #[test]
    fn text_paths_counts_and_order() {
        let (s, root, names) = sample();
        let index = PathIndex::new(&s, root);
        let (lib, book, title, author, note) = (names[0], names[1], names[2], names[3], names[4]);
        let paths = index.text_paths(&s);
        assert_eq!(
            paths,
            vec![
                (vec![lib, book, title], 2),
                (vec![lib, book, author], 4),
                (vec![lib, note], 1),
            ]
        );
    }

    #[test]
    fn occurrences_and_binding_counts() {
        let (s, root, names) = sample();
        let index = PathIndex::new(&s, root);
        let (lib, book, author) = (names[0], names[1], names[3]);
        assert_eq!(index.occurrences(&s, &[lib]), 1);
        assert_eq!(index.occurrences(&s, &[lib, book]), 2);
        assert_eq!(
            index.binding_text_counts(&s, &[lib, book], &[author]),
            vec![2, 2]
        );
        assert_eq!(
            index.binding_text_counts(&s, &[lib], &[book, author]),
            vec![4]
        );
    }

    fn pat(skeleton: &Skeleton, spec: &[(bool, Option<&str>)]) -> PathPattern {
        PathPattern::new(
            spec.iter()
                .map(|&(descend, name)| PatternStep {
                    descend,
                    test: match name {
                        Some(n) => PatternTest::Name(skeleton.name_id(n)),
                        None => PatternTest::Any,
                    },
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn expand_pattern_resolves_wildcard_and_descendant() {
        let (s, root, names) = sample();
        let index = PathIndex::new(&s, root);
        let (lib, book, title, author, note) = (names[0], names[1], names[2], names[3], names[4]);

        // lib/* — every child tag of the root.
        let p = pat(&s, &[(false, Some("lib")), (false, None)]);
        assert_eq!(
            index.expand_pattern(&s, &p),
            vec![vec![lib, book], vec![lib, note]]
        );

        // //author — authors anywhere.
        let p = pat(&s, &[(true, Some("author"))]);
        assert_eq!(index.expand_pattern(&s, &p), vec![vec![lib, book, author]]);

        // lib//* — all strict descendants of the root.
        let p = pat(&s, &[(false, Some("lib")), (true, None)]);
        assert_eq!(
            index.expand_pattern(&s, &p),
            vec![
                vec![lib, book],
                vec![lib, book, title],
                vec![lib, book, author],
                vec![lib, note],
            ]
        );

        // A tag absent from the document expands to nothing.
        let p = pat(&s, &[(true, Some("absent-tag"))]);
        assert_eq!(index.expand_pattern(&s, &p), Vec::<RelPath>::new());
    }

    #[test]
    fn pattern_matches_concrete_paths() {
        let (s, root, names) = sample();
        let _ = root;
        let (lib, book, author) = (names[0], names[1], names[3]);
        let p = pat(&s, &[(false, Some("lib")), (true, Some("author"))]);
        assert!(p.matches(&[lib, book, author], &s));
        assert!(!p.matches(&[lib, book], &s));
        assert!(p.matches_prefix(&[lib, book], &s));
        assert!(!p.matches_prefix(&[book], &s));
    }

    #[test]
    fn binding_element_counts_expand_runs() {
        let (s, root, names) = sample();
        let index = PathIndex::new(&s, root);
        let (lib, book, author) = (names[0], names[1], names[3]);
        assert_eq!(
            index.binding_element_counts(&s, &[lib, book], &[author]),
            vec![2, 2]
        );
        assert_eq!(
            index.binding_element_counts(&s, &[lib, book], &[]),
            vec![1, 1]
        );
    }

    #[test]
    fn reachable_names_cover_the_dag() {
        let (s, root, names) = sample();
        let index = PathIndex::new(&s, root);
        let map = index.reachable_names(&s);
        let below_root = &map[&root];
        assert!(below_root.contains(&names[1]));
        assert!(below_root.contains(&names[3]));
        assert!(!below_root.contains(&names[0]));
    }

    #[test]
    fn containment_lists_reachable_tags() {
        let (s, root, names) = sample();
        let index = PathIndex::new(&s, root);
        let tags = index.containment(&s, root);
        assert!(tags.contains(&names[1]));
        assert!(tags.contains(&names[3]));
        assert!(!tags.contains(&names[0])); // root tag not strictly below
    }
}
