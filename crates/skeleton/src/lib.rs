//! `vx-skeleton` — the compressed skeleton layer (DESIGN.md row 3).
//!
//! The skeleton `S` of a document `T` is `T` with every text node replaced
//! by a `#` marker. It is stored hash-consed: identical subtrees share one
//! DAG node, and *consecutive* repeated edges are run-length encoded, so
//! regular documents (the paper's running example is a 368-column astronomy
//! table) compress to a skeleton that fits in main memory.
//!
//! This crate provides:
//!
//! * [`Skeleton`] — the hash-consing arena ([`arena`]),
//! * the binary `.vxsk` format, both a strict reader/writer and a lenient
//!   salvage reader for damaged files ([`mod@format`]),
//! * memoized path counts, per-binding occurrence layouts, and containment
//!   maps used by the query engine ([`paths`]),
//! * the structural self-index over the DAG — per-node containment
//!   bitsets and the `.vxpi` persistence format ([`structural`]).

pub mod arena;
pub mod format;
pub mod paths;
pub mod stream;
pub mod structural;

pub use arena::{Edge, NameId, NodeId, Skeleton};
pub use format::{read, read_lenient, write, RawSkeleton, SalvageReport};
pub use paths::{PathIndex, PathPattern, PatternStep, PatternTest};
pub use stream::SkeletonBuilder;
pub use structural::{read_index, write_index, StructIndex};

use std::fmt;

/// Errors produced by the skeleton layer.
#[derive(Debug)]
pub enum SkeletonError {
    Storage(vx_storage::StorageError),
    /// The `.vxsk` header is missing or has the wrong magic/version.
    BadHeader(String),
    /// Structural corruption detected by the strict reader.
    Corrupt {
        offset: usize,
        message: String,
    },
    /// Event sequence error during incremental construction
    /// ([`SkeletonBuilder`]): unbalanced tags, a second root, etc.
    Builder(String),
}

impl fmt::Display for SkeletonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkeletonError::Storage(e) => write!(f, "skeleton storage error: {e}"),
            SkeletonError::BadHeader(m) => write!(f, "bad .vxsk header: {m}"),
            SkeletonError::Corrupt { offset, message } => {
                write!(f, "corrupt .vxsk at byte {offset}: {message}")
            }
            SkeletonError::Builder(m) => write!(f, "skeleton builder: {m}"),
        }
    }
}

impl std::error::Error for SkeletonError {}

impl From<vx_storage::StorageError> for SkeletonError {
    fn from(e: vx_storage::StorageError) -> Self {
        SkeletonError::Storage(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SkeletonError>;
