//! LEB128 variable-length unsigned integers.
//!
//! Every multi-byte integer in the xmlvec on-disk formats (`.vxsk` node
//! records, `.vec` record lengths and skip entries) is a LEB128 varint:
//! little-endian base-128 groups, high bit set on every byte except the
//! last. Values up to 64 bits are supported (at most 10 bytes).

use crate::{Result, StorageError};

/// Maximum encoded size of a 64-bit varint.
pub const MAX_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`, returning the number of
/// bytes written.
pub fn write(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of `value` without writing it.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    (64 - value.leading_zeros() as usize).div_ceil(7)
}

/// Decodes a varint from `buf` starting at `offset`.
///
/// Returns `(value, next_offset)`. Errors if the buffer ends mid-varint or
/// the encoding exceeds 64 bits.
pub fn read(buf: &[u8], offset: usize) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    let mut pos = offset;
    loop {
        let byte = *buf.get(pos).ok_or(StorageError::BadVarint {
            offset,
            reason: "truncated",
        })?;
        pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(StorageError::BadVarint {
                offset,
                reason: "overflows u64",
            });
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, pos));
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_edge_values() {
        let samples = [
            0u64,
            1,
            127,
            128,
            255,
            256,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &samples {
            let mut buf = Vec::new();
            let n = write(&mut buf, v);
            assert_eq!(n, buf.len());
            assert_eq!(n, encoded_len(v));
            let (decoded, next) = read(&buf, 0).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(next, buf.len());
        }
    }

    #[test]
    fn sequential_decode() {
        let mut buf = Vec::new();
        for v in 0..1000u64 {
            write(&mut buf, v * 37);
        }
        let mut pos = 0;
        for v in 0..1000u64 {
            let (decoded, next) = read(&buf, pos).unwrap();
            assert_eq!(decoded, v * 37);
            pos = next;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_is_error() {
        let buf = [0x80u8, 0x80];
        assert!(read(&buf, 0).is_err());
    }

    #[test]
    fn overflow_is_error() {
        let buf = [0xffu8; 11];
        assert!(read(&buf, 0).is_err());
    }
}
