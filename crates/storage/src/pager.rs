//! Paged-file storage with a clock-eviction buffer pool.
//!
//! This is the stand-in for the Shore storage manager used by the original
//! VX prototype: fixed 8 KiB pages over an ordinary file, a bounded buffer
//! pool with second-chance (clock) eviction, pin counts, and hit/miss
//! statistics. The vector and skeleton formats currently serialize through
//! plain buffered I/O; the pager exists so later PRs can move hot scans and
//! the bench harness onto a bounded-memory path without changing formats.

use crate::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Page size, matching the 8 KiB pages of the paper's Shore configuration.
pub const PAGE_SIZE: usize = 8192;

/// One in-memory page frame.
struct Frame {
    page: u64,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

/// Buffer-pool statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

/// A paged file with a bounded buffer pool.
pub struct Pager {
    file: File,
    pages: u64,
    frames: Vec<Frame>,
    capacity: usize,
    clock: usize,
    stats: PagerStats,
}

impl Pager {
    /// Opens (creating if necessary) a paged file with a pool of `capacity`
    /// frames.
    pub fn open(path: &Path, capacity: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Pager {
            file,
            pages: len.div_ceil(PAGE_SIZE as u64),
            frames: Vec::new(),
            capacity: capacity.max(1),
            clock: 0,
            stats: PagerStats::default(),
        })
    }

    /// Number of pages currently in the file.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Buffer-pool statistics so far.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Appends a zeroed page and returns its index.
    pub fn allocate(&mut self) -> Result<u64> {
        let page = self.pages;
        self.pages += 1;
        self.file.set_len(self.pages * PAGE_SIZE as u64)?;
        Ok(page)
    }

    fn frame_of(&mut self, page: u64) -> Option<usize> {
        self.frames.iter().position(|f| f.page == page)
    }

    fn load(&mut self, page: u64) -> Result<usize> {
        if page >= self.pages {
            return Err(StorageError::PageOutOfBounds {
                page,
                pages: self.pages,
            });
        }
        if let Some(idx) = self.frame_of(page) {
            self.stats.hits += 1;
            self.frames[idx].referenced = true;
            return Ok(idx);
        }
        self.stats.misses += 1;
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.file.seek(SeekFrom::Start(page * PAGE_SIZE as u64))?;
        // The final page of a file whose length is not a page multiple is
        // short on disk; zero-fill the tail instead of failing.
        let mut filled = 0;
        while filled < PAGE_SIZE {
            let n = self.file.read(&mut data[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        if filled < PAGE_SIZE && vx_obs::log_enabled() {
            vx_obs::event(
                "pager.partial_tail_page",
                &[
                    ("page", vx_obs::Value::U64(page)),
                    ("filled_bytes", vx_obs::Value::U64(filled as u64)),
                    ("page_size", vx_obs::Value::U64(PAGE_SIZE as u64)),
                ],
            );
        }
        let frame = Frame {
            page,
            data,
            dirty: false,
            pins: 0,
            referenced: true,
        };
        if self.frames.len() < self.capacity {
            self.frames.push(frame);
            return Ok(self.frames.len() - 1);
        }
        let victim = self.pick_victim()?;
        self.write_back(victim)?;
        self.stats.evictions += 1;
        self.frames[victim] = frame;
        Ok(victim)
    }

    /// Second-chance clock sweep over unpinned frames.
    fn pick_victim(&mut self) -> Result<usize> {
        let n = self.frames.len();
        for _ in 0..2 * n + 1 {
            let idx = self.clock % n;
            self.clock = (self.clock + 1) % n;
            let frame = &mut self.frames[idx];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Ok(idx);
        }
        Err(StorageError::Io(std::io::Error::other(
            "buffer pool exhausted: all frames pinned",
        )))
    }

    fn write_back(&mut self, idx: usize) -> Result<()> {
        if self.frames[idx].dirty {
            let page = self.frames[idx].page;
            self.file.seek(SeekFrom::Start(page * PAGE_SIZE as u64))?;
            self.file.write_all(&self.frames[idx].data[..])?;
            self.frames[idx].dirty = false;
            self.stats.writebacks += 1;
        }
        Ok(())
    }

    /// Reads page `page` through the pool, passing its bytes to `f`.
    pub fn with_page<R>(&mut self, page: u64, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> Result<R> {
        let idx = self.load(page)?;
        Ok(f(&self.frames[idx].data))
    }

    /// Mutates page `page` through the pool, marking it dirty.
    pub fn with_page_mut<R>(
        &mut self,
        page: u64,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let idx = self.load(page)?;
        self.frames[idx].dirty = true;
        Ok(f(&mut self.frames[idx].data))
    }

    /// Pins a page in the pool (it will not be evicted until unpinned).
    pub fn pin(&mut self, page: u64) -> Result<()> {
        let idx = self.load(page)?;
        self.frames[idx].pins += 1;
        Ok(())
    }

    /// Unpins a previously pinned page.
    pub fn unpin(&mut self, page: u64) {
        if let Some(idx) = self.frame_of(page) {
            let frame = &mut self.frames[idx];
            frame.pins = frame.pins.saturating_sub(1);
        }
    }

    /// Flushes every dirty frame to disk.
    pub fn flush(&mut self) -> Result<()> {
        for idx in 0..self.frames.len() {
            self.write_back(idx)?;
        }
        self.file.flush()?;
        Ok(())
    }
}

impl Drop for Pager {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vx-pager-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn write_read_round_trip() {
        let path = temp_path("rt");
        let _ = std::fs::remove_file(&path);
        {
            let mut pager = Pager::open(&path, 4).unwrap();
            for i in 0..10u64 {
                let page = pager.allocate().unwrap();
                assert_eq!(page, i);
                pager.with_page_mut(page, |data| data[0] = i as u8).unwrap();
            }
            pager.flush().unwrap();
        }
        {
            let mut pager = Pager::open(&path, 4).unwrap();
            assert_eq!(pager.page_count(), 10);
            for i in 0..10u64 {
                let first = pager.with_page(i, |data| data[0]).unwrap();
                assert_eq!(first, i as u8);
            }
            // 10 pages through a 4-frame pool must evict.
            assert!(pager.stats().evictions > 0);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let path = temp_path("pin");
        let _ = std::fs::remove_file(&path);
        let mut pager = Pager::open(&path, 2).unwrap();
        for _ in 0..5 {
            pager.allocate().unwrap();
        }
        pager.with_page_mut(0, |d| d[7] = 42).unwrap();
        pager.pin(0).unwrap();
        for i in 1..5u64 {
            pager.with_page(i, |_| ()).unwrap();
        }
        // Page 0 is still resident and intact despite the sweep.
        assert_eq!(pager.with_page(0, |d| d[7]).unwrap(), 42);
        pager.unpin(0);
        let _ = std::fs::remove_file(&path);
    }

    /// Child half of `partial_tail_page_event_is_logged`: loads the short
    /// final page of a file whose length is not a page multiple. Run via
    /// re-exec so the parent controls `VX_LOG` (the sink latches the
    /// environment once per process).
    #[test]
    #[ignore]
    fn partial_tail_child() {
        let path = temp_path("tail-child");
        std::fs::write(&path, vec![7u8; PAGE_SIZE + 100]).unwrap();
        let mut pager = Pager::open(&path, 2).unwrap();
        assert_eq!(pager.page_count(), 2);
        // The tail page has 100 real bytes; the rest must be zero-filled.
        let (head, pad) = pager.with_page(1, |d| (d[99], d[100])).unwrap();
        assert_eq!((head, pad), (7, 0));
        let _ = std::fs::remove_file(&path);
    }

    /// A short tail page is salvage-tolerated but observable: with
    /// `VX_LOG=<file>` the load emits one `pager.partial_tail_page` event
    /// recording how many bytes were really on disk; with `VX_LOG` unset
    /// the same load is completely silent.
    #[test]
    fn partial_tail_page_event_is_logged() {
        let exe = std::env::current_exe().unwrap();
        let child = |log: Option<&std::path::Path>| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.args(["--exact", "pager::tests::partial_tail_child", "--ignored"]);
            match log {
                Some(log) => cmd.env("VX_LOG", log),
                None => cmd.env_remove("VX_LOG"),
            };
            let out = cmd.output().unwrap();
            assert!(
                out.status.success(),
                "child failed\nstdout: {}\nstderr: {}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            );
            out
        };

        let log = temp_path("tail-events.jsonl");
        let _ = std::fs::remove_file(&log);
        child(Some(&log));
        let text = std::fs::read_to_string(&log).unwrap();
        let tail_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"ev\":\"pager.partial_tail_page\""))
            .collect();
        assert_eq!(tail_lines.len(), 1, "events: {text}");
        assert!(
            tail_lines[0].contains("\"page\":1")
                && tail_lines[0].contains("\"filled_bytes\":100")
                && tail_lines[0].contains(&format!("\"page_size\":{PAGE_SIZE}")),
            "unexpected event shape: {}",
            tail_lines[0]
        );
        let _ = std::fs::remove_file(&log);

        let out = child(None);
        assert!(
            !String::from_utf8_lossy(&out.stderr).contains("partial_tail_page"),
            "VX_LOG unset must mean silence"
        );
    }

    #[test]
    fn out_of_bounds_is_error() {
        let path = temp_path("oob");
        let _ = std::fs::remove_file(&path);
        let mut pager = Pager::open(&path, 2).unwrap();
        assert!(matches!(
            pager.with_page(0, |_| ()),
            Err(StorageError::PageOutOfBounds { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
