//! `vx-storage` — the lowest layer of the xmlvec stack.
//!
//! Provides the primitives shared by every on-disk format in the system:
//!
//! * [`varint`] — LEB128 variable-length integers, used by the skeleton
//!   (`.vxsk`) and vector (`.vec`) formats.
//! * [`pager`] — an 8 KiB paged-file abstraction with a clock-eviction
//!   buffer pool, standing in for the Shore storage manager used by the
//!   original VX system (DESIGN.md row 2).
//!
//! This crate depends on nothing above it (layering contract: it is the
//! bottom of the dependency DAG together with `vx-xml`).

pub mod pager;
pub mod varint;

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A varint ran past the end of its buffer or exceeded 64 bits.
    BadVarint { offset: usize, reason: &'static str },
    /// A page index beyond the end of the paged file.
    PageOutOfBounds { page: u64, pages: u64 },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::BadVarint { offset, reason } => {
                write!(f, "bad varint at byte {offset}: {reason}")
            }
            StorageError::PageOutOfBounds { page, pages } => {
                write!(f, "page {page} out of bounds (file has {pages} pages)")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StorageError>;
