//! `vx-obs` — the measurement layer: counters, monotonic span timers,
//! and a structured event sink.
//!
//! Every other crate in the workspace sits *above* this one; `vx-obs`
//! itself depends only on `std`. It provides three primitives:
//!
//! * [`Counters`] — a deterministically ordered set of named `u64`
//!   counters. Counter values depend only on the work performed, never
//!   on wall time, so two runs of the same query over the same store
//!   produce identical counters (pinned by `tests/metrics.rs`).
//! * [`Spans`] — an ordered list of named monotonic spans. The engine
//!   records spans as *chained boundaries* ([`Spans::tile`]), so the
//!   per-step seconds of a profile tile its total exactly (up to
//!   floating-point rounding).
//! * The **event sink** — [`event`] writes one JSON object per line to
//!   a destination chosen by the `VX_LOG` environment variable:
//!
//!   | `VX_LOG`            | behaviour                                  |
//!   |---------------------|--------------------------------------------|
//!   | unset / `""` / `0`  | disabled: no output, no I/O, no allocation |
//!   | `1` / `stderr`      | JSON lines to standard error               |
//!   | anything else       | treated as a file path, appended to        |
//!
//!   Each line has the shape
//!   `{"ev":"<name>","us":<microseconds since first event>,<fields…>}`.
//!   Field values are strings, integers, floats, or booleans
//!   ([`Value`]). When `VX_LOG` is off the fast path is a single
//!   initialized-once check — instrumented code pays nothing beyond the
//!   branch, which is why call sites are coarse (per phase / per
//!   command, never per tuple).

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod prom;
pub mod registry;
pub mod ring;
pub mod trace;

pub use registry::Registry;
pub use ring::Ring;
pub use trace::{TraceCtx, TraceId};

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/// A set of named monotonic counters with deterministic (sorted-name)
/// iteration order.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counters {
    map: std::collections::BTreeMap<&'static str, u64>,
}

impl Counters {
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds `n` to counter `name` (creating it at 0).
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.map.entry(name).or_insert(0) += n;
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// All counters in sorted-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// One completed span: a name and its duration in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub name: String,
    pub secs: f64,
}

/// An ordered list of completed spans.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Spans {
    spans: Vec<Span>,
    /// Boundary of the last [`Spans::tile`] call.
    tile_mark: Option<Instant>,
}

impl Spans {
    pub fn new() -> Spans {
        Spans::default()
    }

    /// Records a span with an explicit duration.
    pub fn record(&mut self, name: impl Into<String>, secs: f64) {
        self.spans.push(Span {
            name: name.into(),
            secs,
        });
    }

    /// Chained-boundary recording: the first call starts the clock; each
    /// subsequent call closes a span named `name` covering exactly the
    /// time since the previous call. Spans recorded this way tile the
    /// interval from the first `tile(None)` to the last `tile(Some(..))`
    /// with no gaps and no overlaps.
    pub fn tile(&mut self, name: Option<&str>) {
        let now = Instant::now();
        if let (Some(mark), Some(name)) = (self.tile_mark, name) {
            self.record(name, now.duration_since(mark).as_secs_f64());
        }
        self.tile_mark = Some(now);
    }

    /// All spans in recording order.
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Consumes the recorder, yielding the spans in recording order.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }

    /// Sum of all span durations.
    pub fn total(&self) -> f64 {
        self.spans.iter().map(|s| s.secs).sum()
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Subtracts `secs` from the most recent span named `name` (used to
    /// re-attribute time measured inside a larger span, keeping the
    /// tiling exact). Saturates at zero.
    pub fn deduct(&mut self, name: &str, secs: f64) {
        if let Some(span) = self.spans.iter_mut().rev().find(|s| s.name == name) {
            span.secs = (span.secs - secs).max(0.0);
        }
    }
}

/// A monotonic stopwatch for one-off measurements.
#[derive(Debug, Clone, Copy)]
pub struct Timer(Instant);

impl Timer {
    pub fn start() -> Timer {
        Timer(Instant::now())
    }

    /// Seconds since [`Timer::start`].
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

// ---------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------

/// Bucket layout: values 0–3 µs get exact buckets; above that, each
/// power of two is split into 4 linear sub-buckets, so any recorded
/// value lands in a bucket whose width is ≤ 1/4 of its magnitude
/// (quantile estimates are within ~12.5 % of the true value). 64
/// exponents × 4 sub-buckets covers the full `u64` range.
const HIST_BUCKETS: usize = 256;

/// A lock-free log-bucketed latency histogram, recorded in microseconds.
///
/// All methods take `&self` — recording is a single relaxed atomic add,
/// so one `Histogram` can be shared (behind an `Arc`) by every worker
/// thread of `vx serve` with no contention beyond cache traffic.
/// Quantiles are estimated from a point-in-time snapshot of the bucket
/// counts; like everything in this crate, reads must never fail or block
/// the operation they observe.
pub struct Histogram {
    counts: Vec<std::sync::atomic::AtomicU64>,
    sum_us: std::sync::atomic::AtomicU64,
    max_us: std::sync::atomic::AtomicU64,
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: (0..HIST_BUCKETS)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
            sum_us: std::sync::atomic::AtomicU64::new(0),
            max_us: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        if us < 4 {
            return us as usize;
        }
        let exp = 63 - us.leading_zeros() as usize;
        let sub = ((us >> (exp - 2)) & 3) as usize;
        exp * 4 + sub
    }

    /// Inclusive upper bound of bucket `i`'s value range (its exact
    /// value for the four smallest buckets). Used to export the
    /// log-bucketed layout as conventional cumulative buckets. Indices
    /// 4–7 are unreachable (values ≥ 4 have exponent ≥ 2, landing at
    /// index 8 or above); they report the same bound as bucket 3.
    pub fn bucket_upper(i: usize) -> u64 {
        if i < 8 {
            return i.min(3) as u64;
        }
        let exp = i / 4;
        let sub = (i % 4) as u64;
        let width = 1u64 << (exp - 2);
        let lower = (4 + sub) << (exp - 2);
        lower + width - 1
    }

    /// Midpoint of bucket `i`'s value range (its exact value for the
    /// four smallest buckets).
    fn bucket_mid(i: usize) -> u64 {
        if i < 4 {
            return i as u64;
        }
        let exp = i / 4;
        let sub = (i % 4) as u64;
        let width = 1u64 << (exp - 2);
        let lower = (4 + sub) << (exp - 2);
        lower + width / 2
    }

    /// Records one observation of `us` microseconds.
    pub fn record_us(&self, us: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        self.counts[Self::bucket_of(us)].fetch_add(1, Relaxed);
        self.sum_us.fetch_add(us, Relaxed);
        self.max_us.fetch_max(us, Relaxed);
    }

    /// Records a duration measured in seconds (rounded to whole µs).
    pub fn record_secs(&self, secs: f64) {
        self.record_us((secs * 1e6).round().max(0.0) as u64);
    }

    fn snapshot(&self) -> Vec<u64> {
        use std::sync::atomic::Ordering::Relaxed;
        self.counts.iter().map(|c| c.load(Relaxed)).collect()
    }

    /// Point-in-time per-bucket counts (index `i` covers values up to
    /// [`Histogram::bucket_upper`]`(i)` inclusive).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.snapshot()
    }

    /// Cumulative counts at each of `bounds_us` (which must be sorted
    /// ascending), suitable for Prometheus `_bucket` series. Each
    /// internal bucket is attributed to the smallest bound ≥ its upper
    /// value, so every returned count is a *guaranteed* "observations
    /// ≤ bound" lower bound, the series is monotone, and observations in
    /// buckets straddling or exceeding every bound appear only in the
    /// `+Inf` bucket (the total, [`Histogram::count`]).
    pub fn cumulative_us(&self, bounds_us: &[u64]) -> Vec<u64> {
        debug_assert!(bounds_us.windows(2).all(|w| w[0] < w[1]));
        let counts = self.snapshot();
        let mut per_bound = vec![0u64; bounds_us.len()];
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upper = Self::bucket_upper(i);
            if let Some(slot) = bounds_us.iter().position(|&b| b >= upper) {
                per_bound[slot] += c;
            }
        }
        let mut cumulative = 0u64;
        for slot in per_bound.iter_mut() {
            cumulative += *slot;
            *slot = cumulative;
        }
        per_bound
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.snapshot().iter().sum()
    }

    /// Sum of all recorded values, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Largest recorded value, in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Mean recorded value in microseconds (0.0 when empty).
    pub fn mean_us(&self) -> f64 {
        let counts = self.snapshot();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            0.0
        } else {
            self.sum_us() as f64 / n as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) in microseconds, from a
    /// snapshot of the buckets. Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_mid(i).min(self.max_us());
            }
        }
        self.max_us()
    }

    /// Median estimate in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th-percentile estimate in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Folds another histogram's observations into this one.
    pub fn merge(&self, other: &Histogram) {
        use std::sync::atomic::Ordering::Relaxed;
        for (mine, theirs) in self.counts.iter().zip(other.snapshot()) {
            mine.fetch_add(theirs, Relaxed);
        }
        self.sum_us.fetch_add(other.sum_us(), Relaxed);
        self.max_us.fetch_max(other.max_us(), Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50_us", &self.p50_us())
            .field("p99_us", &self.p99_us())
            .field("max_us", &self.max_us())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Structured event sink
// ---------------------------------------------------------------------

/// A field value in a structured event.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    Str(&'a str),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}
impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

enum SinkTarget {
    Stderr,
    File(std::fs::File),
}

struct Sink {
    target: Mutex<SinkTarget>,
    epoch: Instant,
}

/// `None` = disabled. Initialized once from `VX_LOG` on first use.
static SINK: OnceLock<Option<Sink>> = OnceLock::new();

fn sink() -> &'static Option<Sink> {
    SINK.get_or_init(|| {
        let spec = std::env::var("VX_LOG").unwrap_or_default();
        match spec.as_str() {
            "" | "0" => None,
            "1" | "stderr" => Some(Sink {
                target: Mutex::new(SinkTarget::Stderr),
                epoch: Instant::now(),
            }),
            path => std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .ok()
                .map(|file| Sink {
                    target: Mutex::new(SinkTarget::File(file)),
                    epoch: Instant::now(),
                }),
        }
    })
}

/// Whether the `VX_LOG` event sink is active. The first call (anywhere)
/// latches the environment; later changes to `VX_LOG` have no effect in
/// this process.
pub fn log_enabled() -> bool {
    sink().is_some()
}

/// Emits one structured event (a JSON line) to the `VX_LOG` sink. A
/// no-op when the sink is disabled; errors writing to it are ignored
/// (observability must never fail the operation it observes).
pub fn event(name: &str, fields: &[(&str, Value<'_>)]) {
    let Some(sink) = sink() else { return };
    let us = sink.epoch.elapsed().as_micros() as u64;
    let line = format_event(name, us, fields);
    let mut target = match sink.target.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    match &mut *target {
        SinkTarget::Stderr => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
        SinkTarget::File(file) => {
            let _ = file.write_all(line.as_bytes());
        }
    }
}

/// Writes `s` as a JSON string literal (quotes, backslashes, and control
/// characters escaped).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats one event line without the global sink — the pure formatting
/// core of [`event`], exposed for tests and for callers that manage
/// their own writer.
pub fn format_event(name: &str, us: u64, fields: &[(&str, Value<'_>)]) -> String {
    let mut line = String::with_capacity(64);
    line.push_str("{\"ev\":");
    push_json_str(&mut line, name);
    let _ = write!(line, ",\"us\":{us}");
    for (key, value) in fields {
        line.push(',');
        push_json_str(&mut line, key);
        line.push(':');
        match value {
            Value::Str(s) => push_json_str(&mut line, s),
            Value::U64(v) => {
                let _ = write!(line, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(line, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(line, "{v}");
            }
            Value::F64(_) => line.push_str("null"),
            Value::Bool(v) => {
                let _ = write!(line, "{v}");
            }
        }
    }
    line.push_str("}\n");
    line
}

// ---------------------------------------------------------------------
// Crash injection (recovery test hooks)
// ---------------------------------------------------------------------

/// Whether the crash point `name` is armed via the `VX_CRASH`
/// environment variable. The durability layer threads named points
/// through its multi-step operations (WAL append, generation write,
/// catalog swap) so `tests/crash_recovery.rs` can kill the `vx` binary
/// at each one and assert the store recovers. Reads the environment per
/// call — every site is a coarse per-operation step, never a hot loop —
/// so one process can be armed differently per subprocess spawn.
pub fn crash_armed(name: &str) -> bool {
    std::env::var("VX_CRASH").map(|v| v == name) == Ok(true)
}

/// Aborts the process if the crash point `name` is armed (simulating a
/// `kill -9` at exactly this step). A no-op when `VX_CRASH` is unset or
/// names a different point.
pub fn crash_point(name: &str) {
    if crash_armed(name) {
        eprintln!("vx-obs: crash injection at `{name}`");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_ordered_and_merge() {
        let mut a = Counters::new();
        a.add("zeta", 2);
        a.add("alpha", 1);
        a.add("zeta", 3);
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "zeta"], "sorted-name iteration");
        assert_eq!(a.get("zeta"), 5);
        assert_eq!(a.get("missing"), 0);

        let mut b = Counters::new();
        b.add("alpha", 10);
        b.add("beta", 7);
        a.merge(&b);
        assert_eq!(a.get("alpha"), 11);
        assert_eq!(a.get("beta"), 7);
    }

    #[test]
    fn spans_tile_without_gaps() {
        let mut spans = Spans::new();
        spans.tile(None);
        std::thread::sleep(std::time::Duration::from_millis(2));
        spans.tile(Some("first"));
        std::thread::sleep(std::time::Duration::from_millis(1));
        spans.tile(Some("second"));
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.secs > 0.0));
        // Tiled spans sum to the whole interval by construction; just
        // check ordering and that totals accumulate.
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["first", "second"]);
        assert!(spans.total() >= 0.003 - 1e-4);
    }

    #[test]
    fn deduct_reattributes_time() {
        let mut spans = Spans::new();
        spans.record("enumerate", 1.0);
        spans.deduct("enumerate", 0.25);
        assert!((spans.iter().next().unwrap().secs - 0.75).abs() < 1e-12);
        // Deducting more than the span holds saturates at zero.
        spans.deduct("enumerate", 10.0);
        assert_eq!(spans.iter().next().unwrap().secs, 0.0);
    }

    #[test]
    fn event_lines_are_json_with_escaping() {
        let line = format_event(
            "q\"uote",
            42,
            &[
                ("s", Value::Str("a\\b\nc")),
                ("n", Value::U64(7)),
                ("f", Value::F64(0.5)),
                ("nan", Value::F64(f64::NAN)),
                ("ok", Value::Bool(true)),
            ],
        );
        assert_eq!(
            line,
            "{\"ev\":\"q\\\"uote\",\"us\":42,\"s\":\"a\\\\b\\nc\",\"n\":7,\"f\":0.5,\"nan\":null,\"ok\":true}\n"
        );
    }

    #[test]
    fn histogram_quantiles_are_bounded_estimates() {
        let h = Histogram::new();
        assert_eq!(h.p50_us(), 0);
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum_us(), 500_500);
        assert_eq!(h.max_us(), 1000);
        // Log-bucketed estimates: within 12.5 % of the true quantile.
        let p50 = h.p50_us() as f64;
        assert!((437.5..=562.5).contains(&p50), "p50 estimate {p50}");
        let p99 = h.p99_us() as f64;
        assert!((866.0..=1000.0).contains(&p99), "p99 estimate {p99}");
        // Quantiles never exceed the recorded maximum.
        assert!(h.quantile_us(1.0) <= 1000);

        let tiny = Histogram::new();
        tiny.record_us(0);
        tiny.record_us(3);
        assert_eq!(tiny.quantile_us(0.0), 0);
        assert_eq!(tiny.quantile_us(1.0), 3, "small values are exact");
    }

    #[test]
    fn histogram_bucket_upper_matches_bucket_of() {
        // `bucket_upper(i)` must be the largest value that still maps to
        // bucket `i`: itself lands in `i`, its successor does not.
        // Indices 4–7 are unreachable in this layout and excluded.
        for i in (0..4).chain(8..HIST_BUCKETS - 1) {
            let upper = Histogram::bucket_upper(i);
            assert_eq!(Histogram::bucket_of(upper), i, "upper of bucket {i}");
            if let Some(next) = upper.checked_add(1) {
                assert!(Histogram::bucket_of(next) > i, "successor of bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_cumulative_buckets_are_monotone_lower_bounds() {
        let h = Histogram::new();
        for us in [1u64, 50, 120, 900, 5_000, 70_000, 2_000_000] {
            h.record_us(us);
        }
        let bounds = [100u64, 1_000, 10_000, 100_000, 1_000_000];
        let cumulative = h.cumulative_us(&bounds);
        assert!(
            cumulative.windows(2).all(|w| w[0] <= w[1]),
            "{cumulative:?}"
        );
        // Every cumulative count is a lower bound on the true count of
        // observations ≤ the bound, and never exceeds the total.
        let truth = [2u64, 4, 5, 6, 6];
        for ((&got, &want), &bound) in cumulative.iter().zip(&truth).zip(&bounds) {
            assert!(got <= want, "le={bound}: {got} > true {want}");
            assert!(got <= h.count());
        }
        // The 2 000 000 µs observation exceeds every bound: only +Inf
        // (the total) sees it.
        assert!(cumulative[bounds.len() - 1] < h.count());
    }

    #[test]
    fn histogram_concurrent_recording_and_merge() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        h.record_us(t * 100 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 800);

        let other = Histogram::new();
        other.record_us(1_000_000);
        h.merge(&other);
        assert_eq!(h.count(), 801);
        assert_eq!(h.max_us(), 1_000_000);
    }

    #[test]
    fn sink_disabled_without_vx_log() {
        // The test process is run without VX_LOG (the workspace never
        // sets it); the sink must latch to disabled and `event` must be
        // a no-op.
        if std::env::var("VX_LOG").unwrap_or_default().is_empty() {
            assert!(!log_enabled());
            event("noop", &[("k", Value::U64(1))]);
        }
    }
}
