//! A metric-family builder for Prometheus exposition.
//!
//! [`Registry`] is a *per-scrape* builder, not a long-lived store: the
//! server keeps its state in plain atomics and [`Histogram`]s, and each
//! `GET /metrics` request constructs a fresh `Registry`, pours the
//! current values in, and renders once. That keeps exposition concerns
//! (HELP/TYPE grouping, escaping, bucket bounds) out of the hot path
//! entirely — the serving threads never see this type.
//!
//! Calling the same family name repeatedly (e.g. one labeled histogram
//! per endpoint) appends samples to the existing family, so the page
//! still carries exactly one `# HELP`/`# TYPE` pair per name.

use std::fmt::Write as _;

use crate::prom::{escape_help, format_labels, format_value, valid_label_name, valid_metric_name};
use crate::Histogram;

/// Default latency bucket bounds in microseconds: 100 µs … 10 s in a
/// 1–2.5–5 progression, a sensible spread for a query server whose
/// answers range from cache hits to multi-second joins.
pub const LATENCY_BOUNDS_US: [u64; 16] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// Pre-rendered sample lines, in insertion order.
    lines: Vec<String>,
}

/// Accumulates metric families and renders one exposition page.
#[derive(Debug, Default)]
pub struct Registry {
    families: Vec<Family>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: Kind) -> &mut Family {
        debug_assert!(valid_metric_name(name), "bad metric name {name}");
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            debug_assert_eq!(self.families[i].kind, kind, "family {name} changed kind");
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            lines: Vec::new(),
        });
        self.families.last_mut().unwrap()
    }

    fn sample(family: &mut Family, suffix: &str, labels: &[(&str, &str)], value: f64) {
        debug_assert!(labels.iter().all(|(k, _)| valid_label_name(k)));
        let mut line = String::with_capacity(64);
        let _ = write!(
            line,
            "{}{suffix}{} {}",
            family.name,
            format_labels(labels),
            format_value(value)
        );
        family.lines.push(line);
    }

    /// Adds an (optionally labeled) counter sample. By convention the
    /// name should end in `_total`.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let family = self.family(name, help, Kind::Counter);
        Self::sample(family, "", labels, value as f64);
    }

    /// Adds an (optionally labeled) gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let family = self.family(name, help, Kind::Gauge);
        Self::sample(family, "", labels, value);
    }

    /// Exports a [`Histogram`] (recorded in µs) as a cumulative-bucket
    /// histogram in **seconds**, using `bounds_us` (sorted ascending)
    /// as the `le` bounds plus `+Inf`. See
    /// [`Histogram::cumulative_us`] for the bucket-assignment rule that
    /// keeps the series monotone with `+Inf` equal to `_count`.
    pub fn histogram_us(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &Histogram,
        bounds_us: &[u64],
    ) {
        let cumulative = hist.cumulative_us(bounds_us);
        let count = hist.count();
        let sum_secs = hist.sum_us() as f64 / 1e6;
        let bound_strings: Vec<String> = bounds_us
            .iter()
            .map(|&b| format_value(b as f64 / 1e6))
            .collect();
        let family = self.family(name, help, Kind::Histogram);
        let mut labels_le: Vec<(&str, &str)> = labels.to_vec();
        for (le, &cum) in bound_strings.iter().zip(&cumulative) {
            labels_le.push(("le", le));
            Self::sample(family, "_bucket", &labels_le, cum as f64);
            labels_le.pop();
        }
        labels_le.push(("le", "+Inf"));
        Self::sample(family, "_bucket", &labels_le, count as f64);
        labels_le.pop();
        Self::sample(family, "_sum", labels, sum_secs);
        Self::sample(family, "_count", labels, count as f64);
    }

    /// Renders the full exposition page (text format 0.0.4).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        for family in &self.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for line in &family.lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prom::validate_exposition;

    #[test]
    fn renders_grouped_families_that_validate() {
        let mut reg = Registry::new();
        reg.counter("vx_requests_total", "Total requests.", &[], 7);
        reg.gauge("vx_inflight", "In-flight requests.", &[], 2.0);
        reg.gauge(
            "vx_store_generation",
            "Store generation.",
            &[("store", "xk")],
            3.0,
        );
        reg.gauge(
            "vx_store_generation",
            "Store generation.",
            &[("store", "tb")],
            5.0,
        );
        let h = Histogram::new();
        for us in [80u64, 300, 12_000, 2_000_000] {
            h.record_us(us);
        }
        reg.histogram_us(
            "vx_request_seconds",
            "Latency.",
            &[("endpoint", "query")],
            &h,
            &LATENCY_BOUNDS_US,
        );
        reg.histogram_us(
            "vx_request_seconds",
            "Latency.",
            &[("endpoint", "stats")],
            &Histogram::new(),
            &LATENCY_BOUNDS_US,
        );
        let page = reg.render();
        validate_exposition(&page).expect("exposition validates");
        // One HELP/TYPE pair per family even with repeated calls.
        assert_eq!(page.matches("# TYPE vx_store_generation gauge").count(), 1);
        assert_eq!(
            page.matches("# TYPE vx_request_seconds histogram").count(),
            1
        );
        assert!(page.contains("vx_store_generation{store=\"tb\"} 5"));
        assert!(page.contains("le=\"+Inf\"} 4"));
        assert!(page.contains("vx_request_seconds_count{endpoint=\"query\"} 4"));
        // The 2 s observation lands within the 2.5 s bound.
        assert!(page.contains("{endpoint=\"query\",le=\"2.5\"} 4"));
    }
}
