//! Request-scoped tracing: trace ids and per-request span stacks.
//!
//! `vx serve` allocates one [`TraceCtx`] per HTTP request and threads
//! its [`TraceId`] through the engine via `RunOptions`, so every
//! `engine.step`/`engine.reduce`/`serve.*` event in the `VX_LOG` stream
//! carries a `trace` field attributing it to a specific request instead
//! of the process. The id is also echoed to the client (`"trace"` in
//! `/query` answers, `"request_id"` in structured error bodies), which
//! makes a client-reported failure greppable in the server log.
//!
//! Ids are 64-bit and unique *per process*: a random-ish epoch tag
//! (from `SystemTime` at first use, so two server restarts don't reuse
//! ids) in the high bits plus a monotone counter in the low bits.
//! Allocation is one relaxed atomic add — cheap enough to stamp every
//! request unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::Spans;

/// A process-unique request identifier, rendered as 16 lowercase hex
/// digits (`smallest stable form that is still greppable`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

/// High-bits epoch tag: sub-second wall-clock entropy captured once per
/// process, so ids from successive server runs almost never collide.
fn epoch_tag() -> u64 {
    static TAG: OnceLock<u64> = OnceLock::new();
    *TAG.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x5eed);
        // Keep 24 bits of entropy clear of the counter's low 40 bits.
        (nanos & 0xff_ffff) << 40
    })
}

impl TraceId {
    /// Allocates the next process-unique id.
    pub fn next() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        TraceId(epoch_tag() | (n & 0xff_ff_ff_ff_ff))
    }

    /// Parses the 16-hex-digit rendering back into an id.
    pub fn parse(s: &str) -> Option<TraceId> {
        (s.len() == 16)
            .then(|| u64::from_str_radix(s, 16).ok())
            .flatten()
            .map(TraceId)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One request's tracing context: its id plus a tiled span stack for
/// request-level phases (read/handle/write). The engine keeps its own
/// per-run spans inside `QueryProfile`; this stack is for the layer
/// *around* the engine.
#[derive(Debug)]
pub struct TraceCtx {
    pub id: TraceId,
    pub spans: Spans,
}

impl TraceCtx {
    /// Starts a new context with a fresh id and an armed span clock.
    pub fn begin() -> TraceCtx {
        let mut spans = Spans::new();
        spans.tile(None);
        TraceCtx {
            id: TraceId::next(),
            spans,
        }
    }

    /// Closes the current phase under `name` (chained-boundary tiling,
    /// see [`Spans::tile`]).
    pub fn phase(&mut self, name: &str) {
        self.spans.tile(Some(name));
    }

    /// The id rendered for JSON bodies and event fields.
    pub fn id_string(&self) -> String {
        self.id.to_string()
    }

    /// Emits one `VX_LOG` event with this context's `trace` field
    /// appended. No-op when the sink is disabled.
    pub fn event(&self, name: &str, fields: &[(&str, crate::Value<'_>)]) {
        if !crate::log_enabled() {
            return;
        }
        let id = self.id_string();
        let mut all: Vec<(&str, crate::Value<'_>)> = Vec::with_capacity(fields.len() + 1);
        all.extend_from_slice(fields);
        all.push(("trace", crate::Value::Str(&id)));
        crate::event(name, &all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_round_trip() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert_ne!(a, b);
        let rendered = a.to_string();
        assert_eq!(rendered.len(), 16);
        assert_eq!(TraceId::parse(&rendered), Some(a));
        assert_eq!(TraceId::parse("nope"), None);
        assert_eq!(TraceId::parse(""), None);
    }

    #[test]
    fn concurrent_allocation_never_collides() {
        let ids = std::sync::Mutex::new(std::collections::HashSet::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    for _ in 0..1000 {
                        local.push(TraceId::next());
                    }
                    let mut set = ids.lock().unwrap();
                    for id in local {
                        assert!(set.insert(id), "duplicate trace id {id}");
                    }
                });
            }
        });
        assert_eq!(ids.into_inner().unwrap().len(), 8000);
    }

    #[test]
    fn ctx_phases_tile() {
        let mut ctx = TraceCtx::begin();
        std::thread::sleep(std::time::Duration::from_millis(1));
        ctx.phase("read");
        ctx.phase("handle");
        let names: Vec<&str> = ctx.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["read", "handle"]);
        assert!(ctx.spans.total() > 0.0);
    }
}
