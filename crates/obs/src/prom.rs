//! Prometheus text exposition format (version 0.0.4) primitives and a
//! small validator.
//!
//! The formatting half renders escaped HELP text, label values, and
//! numbers (including `+Inf`) the way scrapers expect; the
//! [`Registry`](crate::registry::Registry) builder in the sibling
//! module groups samples into families on top of these primitives. The
//! validating half, [`validate_exposition`], is a deliberately strict
//! parser used by the test suite and CI smoke to pin the server's
//! `/metrics` output: every sample must belong to a family announced by
//! `# HELP` + `# TYPE` lines, histogram `_bucket` series must be
//! cumulative and monotone with a `+Inf` bucket equal to `_count`, and
//! a `_sum` must accompany every histogram.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Whether `name` is a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a legal label name (`[a-zA-Z_][a-zA-Z0-9_]*`).
pub fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a HELP line payload (`\` and newline).
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value (`\`, `"`, and newline).
pub fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a sample value: integers without a fraction, floats via the
/// shortest `f64` form, infinities as `+Inf`/`-Inf`.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        let mut out = String::new();
        let _ = write!(out, "{v}");
        out
    }
}

/// Renders a `{key="value",...}` label block ("" when empty).
pub fn format_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------

/// One parsed sample line.
#[derive(Debug)]
struct Sample {
    name: String,
    /// Label block with any `le` pair removed — identifies the series a
    /// histogram bucket belongs to.
    series_key: String,
    /// Parsed `le` label, if present.
    le: Option<f64>,
    value: f64,
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value_str) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label block: {line}"))?;
            if close < open {
                return Err(format!("malformed label block: {line}"));
            }
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            let rest = parts.next().unwrap_or("").trim();
            (name, rest)
        }
    };
    let (name, labels) = match name_labels.find('{') {
        Some(open) => (
            &name_labels[..open],
            &name_labels[open + 1..name_labels.len() - 1],
        ),
        None => (name_labels, ""),
    };
    if !valid_metric_name(name) {
        return Err(format!("bad metric name `{name}` in: {line}"));
    }
    let mut le = None;
    let mut kept = Vec::new();
    if !labels.is_empty() {
        // Our generator never emits `,` or `"` inside label values, so a
        // simple comma split suffices for validation purposes.
        for pair in labels.split(',') {
            let (key, raw) = pair
                .split_once('=')
                .ok_or_else(|| format!("bad label pair `{pair}` in: {line}"))?;
            if !valid_label_name(key) {
                return Err(format!("bad label name `{key}` in: {line}"));
            }
            let value = raw
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted label value `{raw}` in: {line}"))?;
            if key == "le" {
                le = Some(if value == "+Inf" {
                    f64::INFINITY
                } else {
                    value
                        .parse::<f64>()
                        .map_err(|_| format!("bad le `{value}` in: {line}"))?
                });
            } else {
                kept.push(pair.to_string());
            }
        }
    }
    let value = if value_str == "+Inf" {
        f64::INFINITY
    } else if value_str == "-Inf" {
        f64::NEG_INFINITY
    } else {
        value_str
            .parse::<f64>()
            .map_err(|_| format!("bad sample value `{value_str}` in: {line}"))?
    };
    Ok(Sample {
        name: name.to_string(),
        series_key: kept.join(","),
        le,
        value,
    })
}

/// Strictly validates a text-format exposition page. Checks:
///
/// * every line is a comment, blank, or a well-formed sample;
/// * every sample's family was announced by `# HELP` **and** `# TYPE`
///   lines (histogram samples may use the `_bucket`/`_sum`/`_count`
///   suffixes of their family name);
/// * `TYPE` is one of `counter`, `gauge`, `histogram`, `summary`,
///   `untyped`;
/// * per histogram series: `le` values strictly increase, cumulative
///   bucket counts are monotone non-decreasing, a `+Inf` bucket exists
///   and equals the series' `_count`, and a `_sum` sample is present;
/// * counter and gauge sample values are finite, counters non-negative.
///
/// Returns the number of samples validated.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut help: BTreeMap<String, ()> = BTreeMap::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // (family, series_key) → per-series histogram state.
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut sums: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut samples = 0usize;

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(payload) = rest.strip_prefix("HELP ") {
                let name = payload.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("bad HELP name in: {line}"));
                }
                help.insert(name.to_string(), ());
            } else if let Some(payload) = rest.strip_prefix("TYPE ") {
                let mut parts = payload.split(' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("bad TYPE name in: {line}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("unknown TYPE `{kind}` in: {line}"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("duplicate TYPE for `{name}`"));
                }
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // bare comment
        }

        let sample = parse_sample(line)?;
        samples += 1;

        // Resolve the family: exact name, or histogram suffix.
        let (family, suffix) = match types.get(&sample.name) {
            Some(_) => (sample.name.clone(), ""),
            None => {
                let stripped = ["_bucket", "_sum", "_count"]
                    .iter()
                    .find_map(|s| sample.name.strip_suffix(s).map(|base| (base, *s)));
                match stripped {
                    Some((base, suffix))
                        if types.get(base).map(String::as_str) == Some("histogram") =>
                    {
                        (base.to_string(), suffix)
                    }
                    _ => return Err(format!("sample without TYPE: {}", sample.name)),
                }
            }
        };
        if !help.contains_key(&family) {
            return Err(format!("sample without HELP: {}", sample.name));
        }

        let kind = types.get(&family).unwrap().as_str();
        let key = (family.clone(), sample.series_key.clone());
        match (kind, suffix) {
            ("histogram", "_bucket") => {
                let le = sample
                    .le
                    .ok_or_else(|| format!("_bucket without le: {line}"))?;
                let series = buckets.entry(key).or_default();
                if let Some(&(last_le, last_count)) = series.last() {
                    if le <= last_le {
                        return Err(format!(
                            "le not increasing for {family}: {le} after {last_le}"
                        ));
                    }
                    if sample.value < last_count {
                        return Err(format!(
                            "bucket counts not cumulative for {family}: {} after {last_count}",
                            sample.value
                        ));
                    }
                }
                series.push((le, sample.value));
            }
            ("histogram", "_sum") => {
                sums.insert(key, sample.value);
            }
            ("histogram", "_count") => {
                counts.insert(key, sample.value);
            }
            ("histogram", _) => {
                return Err(format!("bare sample for histogram family: {line}"));
            }
            ("counter", _) => {
                if !sample.value.is_finite() || sample.value < 0.0 {
                    return Err(format!("counter value not a finite non-negative: {line}"));
                }
            }
            _ => {
                if !sample.value.is_finite() {
                    return Err(format!("non-finite sample value: {line}"));
                }
            }
        }
    }

    for ((family, series), series_buckets) in &buckets {
        let key = (family.clone(), series.clone());
        let inf = series_buckets
            .last()
            .filter(|(le, _)| le.is_infinite())
            .map(|(_, count)| *count)
            .ok_or_else(|| format!("histogram {family}{{{series}}} missing +Inf bucket"))?;
        let count = counts
            .get(&key)
            .ok_or_else(|| format!("histogram {family}{{{series}}} missing _count"))?;
        if (inf - count).abs() > f64::EPSILON * count.abs().max(1.0) {
            return Err(format!(
                "histogram {family}{{{series}}}: +Inf bucket {inf} != _count {count}"
            ));
        }
        if !sums.contains_key(&key) {
            return Err(format!("histogram {family}{{{series}}} missing _sum"));
        }
    }
    // A histogram with _sum/_count but no buckets at all is malformed.
    for (family, series) in counts.keys() {
        if !buckets.contains_key(&(family.clone(), series.clone())) {
            return Err(format!(
                "histogram {family}{{{series}}} has no _bucket series"
            ));
        }
    }

    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_escapes() {
        assert!(valid_metric_name("vx_serve_requests_total"));
        assert!(valid_metric_name("_x:y"));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("a-b"));
        assert!(valid_label_name("endpoint"));
        assert!(!valid_label_name("le:"));
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(2.0), "2");
        assert_eq!(format_value(0.0001), "0.0001");
        assert_eq!(
            format_labels(&[("store", "xk"), ("kind", "a\"b")]),
            "{store=\"xk\",kind=\"a\\\"b\"}"
        );
        assert_eq!(format_labels(&[]), "");
    }

    const GOOD: &str = "\
# HELP vx_requests_total Total requests.\n\
# TYPE vx_requests_total counter\n\
vx_requests_total 42\n\
# HELP vx_latency_seconds Request latency.\n\
# TYPE vx_latency_seconds histogram\n\
vx_latency_seconds_bucket{endpoint=\"query\",le=\"0.001\"} 3\n\
vx_latency_seconds_bucket{endpoint=\"query\",le=\"0.01\"} 7\n\
vx_latency_seconds_bucket{endpoint=\"query\",le=\"+Inf\"} 9\n\
vx_latency_seconds_sum{endpoint=\"query\"} 0.5\n\
vx_latency_seconds_count{endpoint=\"query\"} 9\n";

    #[test]
    fn accepts_well_formed_exposition() {
        assert_eq!(validate_exposition(GOOD).unwrap(), 6);
    }

    #[test]
    fn rejects_malformed_expositions() {
        // No TYPE line.
        assert!(validate_exposition("x_total 1\n").is_err());
        // No HELP line.
        assert!(validate_exposition("# TYPE x_total counter\nx_total 1\n").is_err());
        // Negative counter.
        assert!(
            validate_exposition("# HELP x_total t\n# TYPE x_total counter\nx_total -1\n").is_err()
        );
        // Non-monotone buckets.
        let shrinking = GOOD.replace(
            "vx_latency_seconds_bucket{endpoint=\"query\",le=\"0.01\"} 7",
            "vx_latency_seconds_bucket{endpoint=\"query\",le=\"0.01\"} 2",
        );
        assert!(validate_exposition(&shrinking).is_err());
        // +Inf disagrees with _count.
        let skewed = GOOD.replace(
            "vx_latency_seconds_count{endpoint=\"query\"} 9",
            "vx_latency_seconds_count{endpoint=\"query\"} 10",
        );
        assert!(validate_exposition(&skewed).is_err());
        // Missing +Inf bucket entirely.
        let truncated = GOOD.replace(
            "vx_latency_seconds_bucket{endpoint=\"query\",le=\"+Inf\"} 9\n",
            "",
        );
        assert!(validate_exposition(&truncated).is_err());
        // Missing _sum.
        let sumless = GOOD.replace("vx_latency_seconds_sum{endpoint=\"query\"} 0.5\n", "");
        assert!(validate_exposition(&sumless).is_err());
    }
}
