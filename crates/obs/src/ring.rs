//! A fixed-capacity ring buffer for flight-recorder style capture.
//!
//! [`Ring`] keeps the most recent `capacity` items pushed into it,
//! evicting the oldest on overflow. It is "lock-light" rather than
//! lock-free: pushes and snapshots take a plain mutex, which is fine
//! because the intended producers are *rare* events (slow queries —
//! by definition requests that already spent ≥ `VX_SLOW_MS` doing real
//! work) and the consumer is a debug endpoint. The lock is
//! poison-tolerant: a panicking pusher never disables the recorder.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded most-recent-N buffer shared between threads.
#[derive(Debug)]
pub struct Ring<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    buf: VecDeque<T>,
    pushed: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Ring<T> {
        let capacity = capacity.max(1);
        Ring {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity),
                pushed: 0,
            }),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends `item`, evicting the oldest entry when full.
    pub fn push(&self, item: T) {
        let mut inner = self.lock();
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
        }
        inner.buf.push_back(item);
        inner.pushed += 1;
    }

    /// Number of items currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity chosen at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total items ever pushed, including those since evicted.
    pub fn total_pushed(&self) -> u64 {
        self.lock().pushed
    }

    /// Drains the ring, returning all held items oldest-first.
    pub fn drain(&self) -> Vec<T> {
        self.lock().buf.drain(..).collect()
    }
}

impl<T: Clone> Ring<T> {
    /// Copies out the held items, oldest-first.
    pub fn snapshot(&self) -> Vec<T> {
        self.lock().buf.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_up_to_capacity() {
        let ring = Ring::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.total_pushed(), 5);
        assert_eq!(ring.snapshot(), [2, 3, 4], "oldest evicted first");
        assert_eq!(ring.drain(), [2, 3, 4]);
        assert!(ring.is_empty());
        assert_eq!(ring.total_pushed(), 5, "drain does not reset the total");
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let ring = Ring::new(8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..100 {
                        ring.push(t * 100 + i);
                    }
                });
            }
        });
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.total_pushed(), 400);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = Ring::new(0);
        ring.push("a");
        ring.push("b");
        assert_eq!(ring.snapshot(), ["b"]);
    }
}
