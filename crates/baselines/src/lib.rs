//! `vx-baselines` — comparison-system harness (DESIGN.md row 9).
//!
//! The paper benchmarks VX against four classes of systems: a native XML
//! store (Galax-like), an XML-on-BDB mapping, a column store (MonetDB-
//! like shredding), and edge-relation SQL. None of those systems ship in
//! this repository; this crate pins down the *interface* a baseline must
//! implement so the benchmark harness can be written against it, and
//! provides named stubs that report themselves as unavailable instead of
//! silently measuring nothing.

use std::fmt;
use vx_xml::Document;

/// A baseline failed (today: always "not wired up").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The baseline is a stub; `.0` names it.
    Unimplemented(&'static str),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Unimplemented(name) => {
                write!(f, "baseline `{name}` is not wired up in this build")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, BaselineError>;

/// What every comparison system must support: load a document, evaluate a
/// query (XQ text for XML systems, SQL for relational ones), report size.
pub trait Baseline {
    /// Human-readable system name (paper's table row).
    fn name(&self) -> &'static str;

    /// Ingests a document, returning the stored size in bytes.
    fn load(&mut self, doc: &Document) -> Result<u64>;

    /// Evaluates a query, returning result values as strings.
    fn query(&mut self, query: &str) -> Result<Vec<String>>;
}

macro_rules! stub_baseline {
    ($(#[$doc:meta])* $ty:ident, $name:literal) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy)]
        pub struct $ty;

        impl Baseline for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn load(&mut self, _doc: &Document) -> Result<u64> {
                Err(BaselineError::Unimplemented($name))
            }

            fn query(&mut self, _query: &str) -> Result<Vec<String>> {
                Err(BaselineError::Unimplemented($name))
            }
        }
    };
}

stub_baseline!(
    /// Native XQuery processor over in-memory trees (Galax-class).
    GxLike,
    "gx-like"
);
stub_baseline!(
    /// XML nodes mapped onto a B-tree key/value store (BDB-class).
    BdbLike,
    "bdb-like"
);
stub_baseline!(
    /// Column-store shredding of XML (MonetDB/XML-class).
    MonetLike,
    "monet-like"
);
stub_baseline!(
    /// Edge-relation encoding in a row-oriented SQL engine.
    SqlLike,
    "sql-like"
);

/// All known baselines, boxed behind the common trait.
pub fn all() -> Vec<Box<dyn Baseline>> {
    vec![
        Box::new(GxLike),
        Box::new(BdbLike),
        Box::new(MonetLike),
        Box::new(SqlLike),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stubs_report_unimplemented() {
        for mut baseline in all() {
            let doc = Document::from_root(vx_xml::Element::new("r"));
            let err = baseline.load(&doc).unwrap_err();
            assert_eq!(err, BaselineError::Unimplemented(baseline.name()));
            assert!(baseline
                .query("for $x in doc(\"d\")/r return $x/t")
                .is_err());
        }
    }
}
