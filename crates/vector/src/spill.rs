//! Spill-to-disk vector accumulation for streaming ingest.
//!
//! A [`SpillVector`] accumulates one path's values during a single
//! streaming pass: records are varint-length-prefixed into a one-page tail
//! buffer, and each full page spills to a shared temporary file through
//! [`vx_storage::Pager`]. Peak memory per path is therefore one 8 KiB page
//! (plus the ≤ 128-entry dictionary candidate), regardless of how many
//! values the path accumulates.
//!
//! `finish_plain`/`finish_auto` then stream the spilled pages back through
//! the pager's bounded buffer pool into a final `.vec` file that is
//! byte-identical to what [`crate::Writer`]'s in-memory `encode_plain` /
//! `encode_auto` would have produced for the same values — the equivalence
//! the differential ingest tests pin down.

use crate::{Result, VectorError, VectorStats, INDEX_MIN_COUNT, SKIP_STRIDE};
use std::io::Write;
use std::path::{Path, PathBuf};
use vx_storage::pager::{Pager, PagerStats, PAGE_SIZE};
use vx_storage::varint;

const MAGIC: &[u8; 4] = b"VXVC";
const TRAILER_MAGIC: &[u8; 4] = b"VXVE";
const V1_PLAIN: u8 = 1;
const V2_DICT: u8 = 2;
const V3_SORTED: u8 = 3;
/// Bytes before the data section (magic + version).
const DATA_START: u64 = 5;
/// Dictionary compaction cut-off (one `u8` code per record).
const MAX_DICT: usize = 128;

/// A shared temporary spill file, page-allocated through one bounded
/// [`Pager`] pool. Many [`SpillVector`]s interleave their pages in it; the
/// file is deleted when the pool is dropped.
pub struct SpillPool {
    pager: Pager,
    path: PathBuf,
}

impl SpillPool {
    /// Creates (truncating any leftover) a spill file with a buffer pool of
    /// `frames` page frames — the ingest pipeline's total paging budget.
    pub fn create(path: &Path, frames: usize) -> Result<Self> {
        // A stale file from a crashed run would make the pager append after
        // its old pages; start from zero length.
        let _ = std::fs::remove_file(path);
        Ok(SpillPool {
            pager: Pager::open(path, frames)?,
            path: path.to_path_buf(),
        })
    }

    /// Buffer-pool statistics (hits/misses/evictions/writebacks).
    pub fn stats(&self) -> PagerStats {
        self.pager.stats()
    }

    /// Pages allocated in the spill file so far (across all vectors).
    pub fn page_count(&self) -> u64 {
        self.pager.page_count()
    }
}

impl Drop for SpillPool {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One path's record stream: full pages in the pool, plus a one-page tail.
pub struct SpillVector {
    /// Spill-file pages holding full `PAGE_SIZE` slices of the stream.
    pages: Vec<u64>,
    tail: Box<[u8; PAGE_SIZE]>,
    tail_len: usize,
    count: u64,
    /// Total record-stream bytes (varint prefixes + raw values).
    stream_len: u64,
    value_bytes: u64,
    /// Data-relative offsets of records `0, 256, 512, …`.
    skips: Vec<u64>,
    /// Dictionary candidate in first-occurrence order; emptied on overflow.
    dict: Vec<Vec<u8>>,
    dict_overflow: bool,
}

impl Default for SpillVector {
    fn default() -> Self {
        SpillVector::new()
    }
}

impl SpillVector {
    pub fn new() -> Self {
        SpillVector {
            pages: Vec::new(),
            tail: Box::new([0u8; PAGE_SIZE]),
            tail_len: 0,
            count: 0,
            stream_len: 0,
            value_bytes: 0,
            skips: Vec::new(),
            dict: Vec::new(),
            dict_overflow: false,
        }
    }

    /// Records appended so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends one value, spilling the tail page when it fills.
    pub fn append(&mut self, pool: &mut SpillPool, value: &[u8]) -> Result<()> {
        if self.count.is_multiple_of(SKIP_STRIDE) {
            self.skips.push(self.stream_len);
        }
        let mut prefix = Vec::with_capacity(varint::MAX_LEN);
        varint::write(&mut prefix, value.len() as u64);
        self.write_stream(pool, &prefix)?;
        self.write_stream(pool, value)?;
        if !self.dict_overflow && !self.dict.iter().any(|d| d == value) {
            if self.dict.len() >= MAX_DICT {
                self.dict_overflow = true;
                self.dict = Vec::new();
            } else {
                self.dict.push(value.to_vec());
            }
        }
        self.count += 1;
        self.value_bytes += value.len() as u64;
        Ok(())
    }

    fn write_stream(&mut self, pool: &mut SpillPool, mut bytes: &[u8]) -> Result<()> {
        self.stream_len += bytes.len() as u64;
        while !bytes.is_empty() {
            let room = PAGE_SIZE - self.tail_len;
            let take = room.min(bytes.len());
            self.tail[self.tail_len..self.tail_len + take].copy_from_slice(&bytes[..take]);
            self.tail_len += take;
            bytes = &bytes[take..];
            if self.tail_len == PAGE_SIZE {
                let page = pool.pager.allocate()?;
                pool.pager
                    .with_page_mut(page, |data| data.copy_from_slice(&self.tail[..]))?;
                self.pages.push(page);
                self.tail_len = 0;
            }
        }
        Ok(())
    }

    /// Total on-disk size of the version-1 encoding.
    fn plain_size(&self) -> u64 {
        let skip_bytes: u64 = self
            .skips
            .iter()
            .map(|&s| varint::encoded_len(s) as u64)
            .sum();
        DATA_START + self.stream_len + skip_bytes + 28
    }

    /// Total on-disk size of the version-2 encoding, if possible.
    fn dict_size(&self) -> Option<u64> {
        if self.dict_overflow {
            return None;
        }
        let dict_bytes: u64 = self
            .dict
            .iter()
            .map(|e| (varint::encoded_len(e.len() as u64) + e.len()) as u64)
            .sum();
        Some(
            DATA_START
                + varint::encoded_len(self.dict.len() as u64) as u64
                + dict_bytes
                + self.count
                + 28,
        )
    }

    /// Streams the record stream (pages then tail) into `out`.
    fn copy_stream(&self, pool: &mut SpillPool, out: &mut impl Write) -> Result<()> {
        for &page in &self.pages {
            pool.pager
                .with_page(page, |data| out.write_all(&data[..]))??;
        }
        out.write_all(&self.tail[..self.tail_len])?;
        Ok(())
    }

    /// Writes the version-1 (plain) encoding — byte-identical to
    /// [`crate::Writer::encode_plain`] over the same values.
    pub fn finish_plain(self, pool: &mut SpillPool, out: &mut impl Write) -> Result<VectorStats> {
        out.write_all(MAGIC)?;
        out.write_all(&[V1_PLAIN])?;
        self.copy_stream(pool, out)?;
        let mut index = Vec::new();
        for &skip in &self.skips {
            varint::write(&mut index, skip);
        }
        let data_end = DATA_START + self.stream_len;
        write_trailer(&mut index, data_end, data_end, self.count);
        out.write_all(&index)?;
        Ok(VectorStats {
            count: self.count,
            data_bytes: self.stream_len,
            value_bytes: self.value_bytes,
            index_bytes: 0,
            version: V1_PLAIN,
        })
    }

    /// Writes the version-3 (indexed) encoding — byte-identical to
    /// [`crate::Writer::encode_indexed`] over the same values.
    ///
    /// Building the value index is the one finish step that is not
    /// bounded-memory: the spilled values are re-streamed through the
    /// pool and held in memory to sort. The record *stream* itself is
    /// still copied page-at-a-time; only the sort working set grows
    /// with the vector.
    pub fn finish_indexed(self, pool: &mut SpillPool, out: &mut impl Write) -> Result<VectorStats> {
        out.write_all(MAGIC)?;
        out.write_all(&[V3_SORTED])?;
        self.copy_stream(pool, out)?;

        let mut cursor = SpillCursor::new(&self);
        let mut values: Vec<Vec<u8>> = Vec::with_capacity(self.count as usize);
        let mut value = Vec::new();
        for _ in 0..self.count {
            cursor.next_value(&self, pool, &mut value)?;
            values.push(value.clone());
        }
        let mut order: Vec<u32> = (0..self.count as u32).collect();
        order.sort_by(|&a, &b| values[a as usize].cmp(&values[b as usize]).then(a.cmp(&b)));

        let mut tail = Vec::new();
        varint::write(&mut tail, self.count);
        for pos in order {
            tail.extend_from_slice(&pos.to_le_bytes());
        }
        let index_bytes = tail.len() as u64;
        for &skip in &self.skips {
            varint::write(&mut tail, skip);
        }
        let data_end = DATA_START + self.stream_len;
        write_trailer(&mut tail, data_end, data_end + index_bytes, self.count);
        out.write_all(&tail)?;
        Ok(VectorStats {
            count: self.count,
            data_bytes: self.stream_len,
            value_bytes: self.value_bytes,
            index_bytes,
            version: V3_SORTED,
        })
    }

    /// Total on-disk size of the version-3 encoding.
    fn indexed_size(&self) -> u64 {
        self.plain_size() + varint::encoded_len(self.count) as u64 + 4 * self.count
    }

    /// Writes whichever encoding [`crate::Writer::encode_auto`] would
    /// pick — version 3 at [`INDEX_MIN_COUNT`] records or more, else
    /// version 1, with the dictionary form winning whenever it is both
    /// possible and strictly smaller — byte-identical to it.
    pub fn finish_auto(self, pool: &mut SpillPool, out: &mut impl Write) -> Result<VectorStats> {
        let candidate_size = if self.count >= INDEX_MIN_COUNT {
            self.indexed_size()
        } else {
            self.plain_size()
        };
        match self.dict_size() {
            Some(dict_size) if dict_size < candidate_size => self.finish_dict(pool, out),
            _ if self.count >= INDEX_MIN_COUNT => self.finish_indexed(pool, out),
            _ => self.finish_plain(pool, out),
        }
    }

    /// Writes the version-2 (dictionary) encoding. The record stream is
    /// re-read through the pager one value at a time to emit codes.
    fn finish_dict(self, pool: &mut SpillPool, out: &mut impl Write) -> Result<VectorStats> {
        debug_assert!(!self.dict_overflow);
        let mut head = Vec::new();
        head.extend_from_slice(MAGIC);
        head.push(V2_DICT);
        varint::write(&mut head, self.dict.len() as u64);
        for entry in &self.dict {
            varint::write(&mut head, entry.len() as u64);
            head.extend_from_slice(entry);
        }
        out.write_all(&head)?;
        let mut cursor = SpillCursor::new(&self);
        let mut codes = Vec::with_capacity(self.count as usize);
        let mut value = Vec::new();
        for i in 0..self.count {
            cursor.next_value(&self, pool, &mut value)?;
            let code = self
                .dict
                .iter()
                .position(|d| *d == value)
                .ok_or(VectorError::Corrupt {
                    offset: cursor.stream_pos as usize,
                    message: format!("spilled record {i} missing from dictionary"),
                })?;
            codes.push(code as u8);
        }
        out.write_all(&codes)?;
        let data_end = head.len() as u64 + self.count;
        let mut trailer = Vec::new();
        write_trailer(&mut trailer, data_end, data_end, self.count);
        out.write_all(&trailer)?;
        Ok(VectorStats {
            count: self.count,
            data_bytes: self.count,
            value_bytes: self.value_bytes,
            index_bytes: 0,
            version: V2_DICT,
        })
    }
}

fn write_trailer(out: &mut Vec<u8>, data_end: u64, skip_start: u64, count: u64) {
    out.extend_from_slice(&data_end.to_le_bytes());
    out.extend_from_slice(&skip_start.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
}

/// Sequential reader over a [`SpillVector`]'s record stream: one page-sized
/// chunk resident at a time, pulled through the pool.
struct SpillCursor {
    /// Index into `pages`; `pages.len()` means the tail.
    chunk_idx: usize,
    chunk: Vec<u8>,
    pos: usize,
    stream_pos: u64,
}

impl SpillCursor {
    fn new(vec: &SpillVector) -> Self {
        SpillCursor {
            chunk_idx: 0,
            chunk: if vec.pages.is_empty() {
                vec.tail[..vec.tail_len].to_vec()
            } else {
                Vec::new() // loaded lazily on first read
            },
            pos: 0,
            stream_pos: 0,
        }
    }

    fn load(&mut self, vec: &SpillVector, pool: &mut SpillPool) -> Result<()> {
        while self.pos >= self.chunk.len() {
            if self.chunk_idx >= vec.pages.len() {
                if self.chunk_idx == vec.pages.len() && !vec.pages.is_empty() {
                    self.chunk = vec.tail[..vec.tail_len].to_vec();
                    self.pos = 0;
                    self.chunk_idx += 1;
                    continue;
                }
                return Err(VectorError::Corrupt {
                    offset: self.stream_pos as usize,
                    message: "spilled record stream truncated".into(),
                });
            }
            let page = vec.pages[self.chunk_idx];
            self.chunk = pool.pager.with_page(page, |data| data.to_vec())?;
            self.pos = 0;
            self.chunk_idx += 1;
        }
        Ok(())
    }

    fn read_byte(&mut self, vec: &SpillVector, pool: &mut SpillPool) -> Result<u8> {
        self.load(vec, pool)?;
        let b = self.chunk[self.pos];
        self.pos += 1;
        self.stream_pos += 1;
        Ok(b)
    }

    /// Reads one varint-prefixed record into `out` (cleared first).
    fn next_value(
        &mut self,
        vec: &SpillVector,
        pool: &mut SpillPool,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let mut len: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_byte(vec, pool)?;
            len |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        out.clear();
        let mut remaining = len as usize;
        while remaining > 0 {
            self.load(vec, pool)?;
            let take = remaining.min(self.chunk.len() - self.pos);
            out.extend_from_slice(&self.chunk[self.pos..self.pos + take]);
            self.pos += take;
            self.stream_pos += take as u64;
            remaining -= take;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Writer;

    fn temp_spill(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vx-spill-{}-{name}.spill", std::process::id()))
    }

    fn finish_both(values: &[Vec<u8>], name: &str, auto: bool) -> (Vec<u8>, Vec<u8>) {
        let mut w = Writer::new();
        for v in values {
            w.push(v);
        }
        let reference = if auto {
            w.encode_auto()
        } else {
            w.encode_plain()
        };

        let path = temp_spill(name);
        let mut pool = SpillPool::create(&path, 4).unwrap();
        let mut sv = SpillVector::new();
        for v in values {
            sv.append(&mut pool, v).unwrap();
        }
        let mut streamed = Vec::new();
        if auto {
            sv.finish_auto(&mut pool, &mut streamed).unwrap();
        } else {
            sv.finish_plain(&mut pool, &mut streamed).unwrap();
        }
        drop(pool);
        assert!(!path.exists(), "spill file must be removed on drop");
        (reference, streamed)
    }

    #[test]
    fn plain_matches_in_memory_writer() {
        let values: Vec<Vec<u8>> = (0..3000)
            .map(|i| format!("value-{i:05}-{}", "x".repeat(i % 90)).into_bytes())
            .collect();
        let (reference, streamed) = finish_both(&values, "plain", false);
        assert_eq!(reference, streamed);
    }

    #[test]
    fn values_larger_than_a_page_match() {
        let values = vec![
            vec![b'a'; PAGE_SIZE * 3 + 17],
            Vec::new(),
            vec![b'b'; PAGE_SIZE - 1],
            vec![b'c'; PAGE_SIZE],
            vec![b'd'; 5],
        ];
        for auto in [false, true] {
            let (reference, streamed) =
                finish_both(&values, if auto { "big-a" } else { "big-p" }, auto);
            assert_eq!(reference, streamed);
        }
    }

    #[test]
    fn low_cardinality_picks_dictionary_identically() {
        let values: Vec<Vec<u8>> = (0..4000)
            .map(|i| format!("{}", i % 9).into_bytes())
            .collect();
        let (reference, streamed) = finish_both(&values, "dict", true);
        assert_eq!(reference[4], 2, "reference must pick the dict encoding");
        assert_eq!(reference, streamed);
    }

    #[test]
    fn high_cardinality_falls_back_to_indexed_identically() {
        let values: Vec<Vec<u8>> = (0..600).map(|i| format!("{i}").into_bytes()).collect();
        let (reference, streamed) = finish_both(&values, "fallback", true);
        assert_eq!(reference[4], 3, "reference must fall back to indexed plain");
        assert_eq!(reference, streamed);
    }

    #[test]
    fn explicit_indexed_matches_in_memory_writer() {
        let values: Vec<Vec<u8>> = (0..900)
            .map(|i| format!("key-{:04}", (i * 37) % 900).into_bytes())
            .collect();
        let mut w = Writer::new();
        for v in &values {
            w.push(v);
        }
        let reference = w.encode_indexed();

        let path = temp_spill("indexed");
        let mut pool = SpillPool::create(&path, 4).unwrap();
        let mut sv = SpillVector::new();
        for v in &values {
            sv.append(&mut pool, v).unwrap();
        }
        let mut streamed = Vec::new();
        sv.finish_indexed(&mut pool, &mut streamed).unwrap();
        assert_eq!(reference, streamed);
    }

    #[test]
    fn small_vector_auto_stays_plain() {
        let values: Vec<Vec<u8>> = (0..40).map(|i| format!("d{i}").into_bytes()).collect();
        let (reference, streamed) = finish_both(&values, "small", true);
        assert_eq!(reference[4], 1, "below INDEX_MIN_COUNT auto stays v1");
        assert_eq!(reference, streamed);
    }

    #[test]
    fn borderline_dictionary_decision_matches() {
        // Exactly 128 distinct values, short records: auto must agree.
        let values: Vec<Vec<u8>> = (0..1000)
            .map(|i| format!("{}", i % 128).into_bytes())
            .collect();
        let (reference, streamed) = finish_both(&values, "border", true);
        assert_eq!(reference, streamed);
        // Tiny vector where the dictionary overhead loses: still identical.
        let values = vec![b"only".to_vec()];
        let (reference, streamed) = finish_both(&values, "tiny", true);
        assert_eq!(reference, streamed);
    }

    #[test]
    fn empty_vector_matches() {
        for auto in [false, true] {
            let (reference, streamed) =
                finish_both(&[], if auto { "empty-a" } else { "empty-p" }, auto);
            assert_eq!(reference, streamed);
        }
    }

    #[test]
    fn many_vectors_interleave_in_one_pool() {
        let path = temp_spill("interleave");
        let mut pool = SpillPool::create(&path, 3).unwrap();
        let mut vectors: Vec<SpillVector> = (0..8).map(|_| SpillVector::new()).collect();
        let mut expected: Vec<Writer> = (0..8).map(|_| Writer::new()).collect();
        for round in 0..2000 {
            for (k, sv) in vectors.iter_mut().enumerate() {
                let value = format!("v{k}-{round}-{}", "p".repeat(round % 30));
                sv.append(&mut pool, value.as_bytes()).unwrap();
                expected[k].push(value.as_bytes());
            }
        }
        assert!(pool.page_count() > 8, "interleaved streams must spill");
        for (sv, w) in vectors.into_iter().zip(&expected) {
            let mut streamed = Vec::new();
            sv.finish_auto(&mut pool, &mut streamed).unwrap();
            assert_eq!(streamed, w.encode_auto());
        }
        assert!(pool.stats().evictions > 0, "bounded pool must evict");
    }
}
