//! `vx-vector` — the data-vector layer (DESIGN.md row 4).
//!
//! A *data vector* holds, in document order, every text value of one
//! root-to-text tag path. On disk a vector is a `.vec` file:
//!
//! ```text
//! "VXVC"  u8 version
//! -- version 1 (plain):
//!     record*            record := varint byte_len, raw bytes
//!     skip*              skip   := varint data-relative byte offset of
//!                                  record k·256, k = 0 .. ⌈count/256⌉-1
//! -- version 2 (dictionary-compacted, ≤ 128 distinct values):
//!     varint dict_len
//!     dict_len × ( varint byte_len, raw bytes )   -- first-occurrence order
//!     count × u8 code                             -- fixed width, no skip
//! -- version 3 (plain + persistent value index):
//!     record*            -- as version 1
//!     varint count       -- value index: record positions sorted by
//!     count × u32le pos  --   (value bytes asc, position asc)
//!     skip*              -- as version 1
//! -- all:
//!     u64le data_end     -- file offset where the record/code stream ends
//!     u64le skip_start   -- == data_end for v1/v2; v3's value index
//!                        --   occupies [data_end, skip_start)
//!     u64le record_count
//!     "VXVE"
//! ```
//!
//! Offsets in the skip index are relative to the start of the data section
//! (file offset 5); the trailer's `u64` fields are absolute file offsets.
//! The layout was reconstructed from the surviving `bench_results/stores/`
//! artifacts; [`Vector::open_salvage`] reads files damaged by the seed
//! capture's byte-dropping sanitizer, driven by the catalog's record count.

mod format;
mod spill;

pub use format::{Cursor, CursorStats, Vector, VectorStats, Writer, INDEX_MIN_COUNT, SKIP_STRIDE};
pub use spill::{SpillPool, SpillVector};

use std::fmt;

/// Errors produced by the vector layer.
#[derive(Debug)]
pub enum VectorError {
    Storage(vx_storage::StorageError),
    Io(std::io::Error),
    /// Missing magic, bad version byte, or a malformed trailer.
    BadHeader(String),
    /// Structural corruption detected by the strict reader.
    Corrupt {
        offset: usize,
        message: String,
    },
    /// Requested record index ≥ record count.
    OutOfBounds {
        index: u64,
        count: u64,
    },
    /// Dictionary compaction requested for data with > 128 distinct values.
    DictionaryTooLarge {
        distinct: usize,
    },
}

impl fmt::Display for VectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorError::Storage(e) => write!(f, "vector storage error: {e}"),
            VectorError::Io(e) => write!(f, "vector I/O error: {e}"),
            VectorError::BadHeader(m) => write!(f, "bad .vec header: {m}"),
            VectorError::Corrupt { offset, message } => {
                write!(f, "corrupt .vec at byte {offset}: {message}")
            }
            VectorError::OutOfBounds { index, count } => {
                write!(f, "record {index} out of bounds (vector has {count})")
            }
            VectorError::DictionaryTooLarge { distinct } => {
                write!(
                    f,
                    "dictionary compaction needs ≤ 128 distinct values, found {distinct}"
                )
            }
        }
    }
}

impl std::error::Error for VectorError {}

impl From<vx_storage::StorageError> for VectorError {
    fn from(e: vx_storage::StorageError) -> Self {
        VectorError::Storage(e)
    }
}

impl From<std::io::Error> for VectorError {
    fn from(e: std::io::Error) -> Self {
        VectorError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, VectorError>;
