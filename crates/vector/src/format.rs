//! `.vec` reading and writing.

use crate::{Result, VectorError};
use std::fs;
use std::path::Path;
use vx_storage::pager::{Pager, PagerStats, PAGE_SIZE};
use vx_storage::varint;

const MAGIC: &[u8; 4] = b"VXVC";
const TRAILER_MAGIC: &[u8; 4] = b"VXVE";
const V1_PLAIN: u8 = 1;
const V2_DICT: u8 = 2;
/// One skip entry per this many records (version 1).
pub const SKIP_STRIDE: u64 = 256;
/// Data section starts right after magic + version byte.
const DATA_START: usize = 5;

/// Builds a `.vec` file in memory.
pub struct Writer {
    records: Vec<Vec<u8>>,
}

impl Default for Writer {
    fn default() -> Self {
        Writer::new()
    }
}

impl Writer {
    pub fn new() -> Self {
        Writer {
            records: Vec::new(),
        }
    }

    pub fn push(&mut self, value: &[u8]) {
        self.records.push(value.to_vec());
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Encodes as version 1 (plain).
    pub fn encode_plain(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(V1_PLAIN);
        let mut skips: Vec<u64> = Vec::new();
        for (i, record) in self.records.iter().enumerate() {
            if (i as u64).is_multiple_of(SKIP_STRIDE) {
                skips.push((out.len() - DATA_START) as u64);
            }
            varint::write(&mut out, record.len() as u64);
            out.extend_from_slice(record);
        }
        let data_end = out.len() as u64;
        for offset in skips {
            varint::write(&mut out, offset);
        }
        finish_trailer(&mut out, data_end, self.records.len() as u64);
        out
    }

    /// Encodes as version 2 (dictionary-compacted). Fails when the data has
    /// more than 128 distinct values; callers fall back to version 1.
    pub fn encode_dictionary(&self) -> Result<Vec<u8>> {
        let mut dict: Vec<&[u8]> = Vec::new();
        let mut codes: Vec<u8> = Vec::with_capacity(self.records.len());
        for record in &self.records {
            let code = match dict.iter().position(|d| *d == record.as_slice()) {
                Some(i) => i,
                None => {
                    if dict.len() >= 128 {
                        return Err(VectorError::DictionaryTooLarge {
                            distinct: dict.len() + 1,
                        });
                    }
                    dict.push(record.as_slice());
                    dict.len() - 1
                }
            };
            codes.push(code as u8);
        }
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(V2_DICT);
        varint::write(&mut out, dict.len() as u64);
        for entry in &dict {
            varint::write(&mut out, entry.len() as u64);
            out.extend_from_slice(entry);
        }
        out.extend_from_slice(&codes);
        let data_end = out.len() as u64;
        finish_trailer(&mut out, data_end, self.records.len() as u64);
        Ok(out)
    }

    /// Picks version 2 when it is both possible and smaller, else version 1.
    pub fn encode_auto(&self) -> Vec<u8> {
        match self.encode_dictionary() {
            Ok(dict) => {
                let plain = self.encode_plain();
                if dict.len() < plain.len() {
                    dict
                } else {
                    plain
                }
            }
            Err(_) => self.encode_plain(),
        }
    }
}

fn finish_trailer(out: &mut Vec<u8>, data_end: u64, count: u64) {
    let skip_start = data_end;
    out.extend_from_slice(&data_end.to_le_bytes());
    out.extend_from_slice(&skip_start.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
}

/// Size statistics for a loaded vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorStats {
    pub count: u64,
    /// Bytes of the record/code stream (the catalog's `data_bytes`).
    pub data_bytes: u64,
    /// Sum of raw value lengths.
    pub value_bytes: u64,
    pub version: u8,
}

enum Body {
    Plain {
        /// `(offset, len)` into `data` per record.
        index: Vec<(u32, u32)>,
        data: Vec<u8>,
        skips: Vec<u64>,
    },
    Dict {
        dict: Vec<Vec<u8>>,
        codes: Vec<u8>,
    },
}

/// A fully loaded, randomly accessible vector.
pub struct Vector {
    body: Body,
    stats: VectorStats,
}

impl Vector {
    /// Strict load: validates magic, version, trailer, skip index, and
    /// record-stream integrity.
    pub fn open(path: &Path) -> Result<Self> {
        Self::decode(&fs::read(path)?)
    }

    /// Strict load through a bounded [`Pager`] buffer pool of `frames`
    /// frames, returning the pool's hit/miss/eviction statistics along
    /// with the vector — the bounded-memory read path `vx stats
    /// --metrics` reports on.
    pub fn open_paged(path: &Path, frames: usize) -> Result<(Self, PagerStats)> {
        let len = fs::metadata(path)?.len() as usize;
        let mut pager = Pager::open(path, frames)?;
        let mut bytes = Vec::with_capacity(len);
        for page in 0..pager.page_count() {
            let take = (len - bytes.len()).min(PAGE_SIZE);
            pager.with_page(page, |data| bytes.extend_from_slice(&data[..take]))?;
        }
        let stats = pager.stats();
        Ok((Self::decode(&bytes)?, stats))
    }

    /// Strict decode from bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let version = check_header(bytes)?;
        if bytes.len() < DATA_START + 28 {
            return Err(VectorError::BadHeader("file too short for trailer".into()));
        }
        let tail = &bytes[bytes.len() - 28..];
        if &tail[24..28] != TRAILER_MAGIC {
            return Err(VectorError::BadHeader("missing VXVE trailer magic".into()));
        }
        let data_end = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes")) as usize;
        let skip_start = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes")) as usize;
        let count = u64::from_le_bytes(tail[16..24].try_into().expect("8 bytes"));
        if data_end < DATA_START || data_end > bytes.len() - 28 || skip_start != data_end {
            return Err(VectorError::Corrupt {
                offset: bytes.len() - 28,
                message: "inconsistent trailer offsets".into(),
            });
        }
        match version {
            V1_PLAIN => Self::decode_plain(bytes, data_end, count, true),
            V2_DICT => Self::decode_dict(bytes, data_end, count, true),
            _ => unreachable!("check_header validated version"),
        }
    }

    /// Salvage load for files whose trailer was damaged by the seed
    /// capture's sanitizer: trusts the caller's record count (from
    /// `catalog.json`) and parses the record stream forward, ignoring the
    /// trailer entirely.
    pub fn open_salvage(path: &Path, expected_count: u64) -> Result<Self> {
        let bytes = fs::read(path)?;
        let version = check_header(&bytes)?;
        match version {
            V1_PLAIN => Self::decode_plain(&bytes, usize::MAX, expected_count, false),
            V2_DICT => Self::decode_dict(&bytes, usize::MAX, expected_count, false),
            _ => unreachable!("check_header validated version"),
        }
    }

    fn decode_plain(bytes: &[u8], data_end: usize, count: u64, strict: bool) -> Result<Self> {
        let mut index = Vec::with_capacity(count as usize);
        let mut data = Vec::new();
        let mut pos = DATA_START;
        let mut record_starts: Vec<u64> = Vec::new();
        for i in 0..count {
            if i % SKIP_STRIDE == 0 {
                record_starts.push((pos - DATA_START) as u64);
            }
            let (len, next) = varint::read(bytes, pos)?;
            let end = next
                .checked_add(len as usize)
                .filter(|&e| e <= if strict { data_end } else { bytes.len() })
                .ok_or(VectorError::Corrupt {
                    offset: pos,
                    message: format!("record {i} runs past data section"),
                })?;
            index.push((data.len() as u32, len as u32));
            data.extend_from_slice(&bytes[next..end]);
            pos = end;
        }
        let data_bytes = (pos - DATA_START) as u64;
        if strict {
            if pos != data_end {
                return Err(VectorError::Corrupt {
                    offset: pos,
                    message: "record stream does not end at data_end".into(),
                });
            }
            // Validate the skip index against the actual record offsets.
            let mut sp = data_end;
            for (k, &expected) in record_starts.iter().enumerate() {
                let (entry, next) = varint::read(bytes, sp)?;
                if entry != expected {
                    return Err(VectorError::Corrupt {
                        offset: sp,
                        message: format!("skip entry {k}: {entry} != {expected}"),
                    });
                }
                sp = next;
            }
            if sp != bytes.len() - 28 {
                return Err(VectorError::Corrupt {
                    offset: sp,
                    message: "skip index does not end at trailer".into(),
                });
            }
        }
        let value_bytes = data.len() as u64;
        Ok(Vector {
            body: Body::Plain {
                index,
                data,
                skips: record_starts,
            },
            stats: VectorStats {
                count,
                data_bytes,
                value_bytes,
                version: V1_PLAIN,
            },
        })
    }

    fn decode_dict(bytes: &[u8], data_end: usize, count: u64, strict: bool) -> Result<Self> {
        let (dict_len, mut pos) = varint::read(bytes, DATA_START)?;
        let mut dict = Vec::with_capacity(dict_len as usize);
        for i in 0..dict_len {
            let (len, next) = varint::read(bytes, pos)?;
            let end = next
                .checked_add(len as usize)
                .filter(|&e| e <= bytes.len())
                .ok_or(VectorError::Corrupt {
                    offset: pos,
                    message: format!("dictionary entry {i} runs past end"),
                })?;
            dict.push(bytes[next..end].to_vec());
            pos = end;
        }
        let codes_end = pos + count as usize;
        if codes_end > bytes.len() {
            return Err(VectorError::Corrupt {
                offset: pos,
                message: "code stream truncated".into(),
            });
        }
        let codes = bytes[pos..codes_end].to_vec();
        if strict && codes_end != data_end {
            return Err(VectorError::Corrupt {
                offset: codes_end,
                message: "code stream does not end at data_end".into(),
            });
        }
        let mut value_bytes = 0u64;
        for (i, &code) in codes.iter().enumerate() {
            let entry = dict.get(code as usize).ok_or(VectorError::Corrupt {
                offset: pos + i,
                message: format!("code {code} out of dictionary range"),
            })?;
            value_bytes += entry.len() as u64;
        }
        Ok(Vector {
            body: Body::Dict { dict, codes },
            stats: VectorStats {
                count,
                data_bytes: count,
                value_bytes,
                version: V2_DICT,
            },
        })
    }

    pub fn stats(&self) -> VectorStats {
        self.stats
    }

    pub fn len(&self) -> u64 {
        self.stats.count
    }

    pub fn is_empty(&self) -> bool {
        self.stats.count == 0
    }

    /// Random access by occurrence position.
    pub fn get(&self, i: u64) -> Result<&[u8]> {
        if i >= self.stats.count {
            return Err(VectorError::OutOfBounds {
                index: i,
                count: self.stats.count,
            });
        }
        Ok(match &self.body {
            Body::Plain { index, data, .. } => {
                let (off, len) = index[i as usize];
                &data[off as usize..off as usize + len as usize]
            }
            Body::Dict { dict, codes } => &dict[codes[i as usize] as usize],
        })
    }

    /// Skip-index entries (version 1 only): data-relative byte offsets of
    /// records `0, 256, 512, …` as written on disk.
    pub fn skip_entries(&self) -> &[u64] {
        match &self.body {
            Body::Plain { skips, .. } => skips,
            Body::Dict { .. } => &[],
        }
    }

    /// Sequential scan cursor starting at record `start`.
    pub fn cursor(&self, start: u64) -> Cursor<'_> {
        Cursor {
            vector: self,
            next: start,
            stats: CursorStats::default(),
        }
    }

    /// Iterates all values.
    pub fn iter(&self) -> Cursor<'_> {
        self.cursor(0)
    }
}

/// What one cursor did: values it decoded versus values it jumped over
/// without touching (forward seeks). Deterministic for a given access
/// pattern.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CursorStats {
    /// Values returned by `next()`.
    pub decoded: u64,
    /// Values skipped by forward `seek`s without being decoded.
    pub skipped: u64,
}

/// Sequential scan over a vector.
pub struct Cursor<'a> {
    vector: &'a Vector,
    next: u64,
    stats: CursorStats,
}

impl Cursor<'_> {
    /// Repositions the cursor. Forward moves count the jumped-over
    /// values as skipped.
    pub fn seek(&mut self, index: u64) {
        if index > self.next {
            self.stats.skipped += index - self.next;
        }
        self.next = index;
    }

    /// Current position (index of the value `next()` would return).
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Decoded/skipped tallies for this cursor so far.
    pub fn stats(&self) -> CursorStats {
        self.stats
    }
}

impl<'a> Iterator for Cursor<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let v = self.vector.get(self.next).ok()?;
        self.next += 1;
        self.stats.decoded += 1;
        Some(v)
    }
}

fn check_header(bytes: &[u8]) -> Result<u8> {
    if bytes.len() < DATA_START || &bytes[0..4] != MAGIC {
        return Err(VectorError::BadHeader("missing VXVC magic".into()));
    }
    match bytes[4] {
        v @ (V1_PLAIN | V2_DICT) => Ok(v),
        v => Err(VectorError::BadHeader(format!("unsupported version {v}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("value-{i:05}-{}", "x".repeat(i % 40)).into_bytes())
            .collect()
    }

    #[test]
    fn plain_round_trip_with_skip_index() {
        let values = sample_values(1000);
        let mut w = Writer::new();
        for v in &values {
            w.push(v);
        }
        let bytes = w.encode_plain();
        let vec = Vector::decode(&bytes).unwrap();
        assert_eq!(vec.len(), 1000);
        assert_eq!(vec.skip_entries().len(), 4); // records 0, 256, 512, 768
        for (i, v) in values.iter().enumerate() {
            assert_eq!(vec.get(i as u64).unwrap(), v.as_slice());
        }
        assert_eq!(
            vec.stats().value_bytes,
            values.iter().map(|v| v.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn empty_vector_round_trips() {
        let bytes = Writer::new().encode_plain();
        let vec = Vector::decode(&bytes).unwrap();
        assert!(vec.is_empty());
        assert!(vec.get(0).is_err());
    }

    #[test]
    fn large_records_round_trip() {
        let mut w = Writer::new();
        let big = vec![b'z'; 100_000];
        w.push(&big);
        w.push(b"");
        w.push(&big);
        let bytes = w.encode_plain();
        let vec = Vector::decode(&bytes).unwrap();
        assert_eq!(vec.get(0).unwrap().len(), 100_000);
        assert_eq!(vec.get(1).unwrap(), b"");
        assert_eq!(vec.get(2).unwrap(), &big[..]);
    }

    #[test]
    fn dictionary_round_trip() {
        let mut w = Writer::new();
        for i in 0..500usize {
            w.push(format!("{}", i % 7).as_bytes());
        }
        let bytes = w.encode_dictionary().unwrap();
        let vec = Vector::decode(&bytes).unwrap();
        assert_eq!(vec.stats().version, 2);
        assert_eq!(vec.stats().data_bytes, 500);
        for i in 0..500u64 {
            assert_eq!(vec.get(i).unwrap(), format!("{}", i % 7).as_bytes());
        }
    }

    #[test]
    fn dictionary_rejects_high_cardinality() {
        let mut w = Writer::new();
        for i in 0..200usize {
            w.push(format!("{i}").as_bytes());
        }
        assert!(matches!(
            w.encode_dictionary(),
            Err(VectorError::DictionaryTooLarge { .. })
        ));
        // encode_auto falls back to plain.
        let vec = Vector::decode(&w.encode_auto()).unwrap();
        assert_eq!(vec.stats().version, 1);
    }

    #[test]
    fn cursor_scans_and_seeks() {
        let values = sample_values(300);
        let mut w = Writer::new();
        for v in &values {
            w.push(v);
        }
        let vec = Vector::decode(&w.encode_plain()).unwrap();
        let collected: Vec<_> = vec.iter().map(|v| v.to_vec()).collect();
        assert_eq!(collected, values);
        let mut c = vec.cursor(0);
        c.seek(299);
        assert_eq!(c.next().unwrap(), values[299].as_slice());
        assert!(c.next().is_none());
    }

    #[test]
    fn strict_reader_rejects_corruption() {
        let mut w = Writer::new();
        for v in sample_values(10) {
            w.push(&v);
        }
        let good = w.encode_plain();
        // Flip the record count in the trailer.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 12] ^= 0x01;
        assert!(Vector::decode(&bad).is_err());
        // Truncate mid-data.
        assert!(Vector::decode(&good[..good.len() - 40]).is_err());
    }

    #[test]
    fn salvage_reads_without_trailer() {
        let values = sample_values(50);
        let mut w = Writer::new();
        for v in &values {
            w.push(v);
        }
        let mut bytes = w.encode_plain();
        // Destroy the entire trailer region.
        let n = bytes.len();
        bytes.truncate(n - 20);
        let path = std::env::temp_dir().join(format!("vx-vec-salvage-{}.vec", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let vec = Vector::open_salvage(&path, 50).unwrap();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(vec.get(i as u64).unwrap(), v.as_slice());
        }
        let _ = std::fs::remove_file(&path);
    }
}
