//! `.vec` reading and writing.

use crate::{Result, VectorError};
use std::fs;
use std::path::Path;
use vx_storage::pager::{Pager, PagerStats, PAGE_SIZE};
use vx_storage::varint;

const MAGIC: &[u8; 4] = b"VXVC";
const TRAILER_MAGIC: &[u8; 4] = b"VXVE";
const V1_PLAIN: u8 = 1;
const V2_DICT: u8 = 2;
const V3_SORTED: u8 = 3;
/// One skip entry per this many records (version 1).
pub const SKIP_STRIDE: u64 = 256;
/// Vectors shorter than this skip the version-3 value index: a linear
/// scan beats the index bookkeeping at that size.
pub const INDEX_MIN_COUNT: u64 = 64;
/// Data section starts right after magic + version byte.
const DATA_START: usize = 5;

/// Builds a `.vec` file in memory.
pub struct Writer {
    records: Vec<Vec<u8>>,
}

impl Default for Writer {
    fn default() -> Self {
        Writer::new()
    }
}

impl Writer {
    pub fn new() -> Self {
        Writer {
            records: Vec::new(),
        }
    }

    pub fn push(&mut self, value: &[u8]) {
        self.records.push(value.to_vec());
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Encodes as version 1 (plain).
    pub fn encode_plain(&self) -> Vec<u8> {
        self.encode_records(V1_PLAIN)
    }

    /// Encodes as version 3: the plain record stream plus a persistent
    /// value index (record positions sorted by value bytes, ties in
    /// document order) between the data section and the skip index.
    pub fn encode_indexed(&self) -> Vec<u8> {
        self.encode_records(V3_SORTED)
    }

    fn encode_records(&self, version: u8) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(version);
        let mut skips: Vec<u64> = Vec::new();
        for (i, record) in self.records.iter().enumerate() {
            if (i as u64).is_multiple_of(SKIP_STRIDE) {
                skips.push((out.len() - DATA_START) as u64);
            }
            varint::write(&mut out, record.len() as u64);
            out.extend_from_slice(record);
        }
        let data_end = out.len() as u64;
        if version == V3_SORTED {
            write_value_index(&mut out, &self.records);
        }
        let skip_start = out.len() as u64;
        for offset in skips {
            varint::write(&mut out, offset);
        }
        finish_trailer(&mut out, data_end, skip_start, self.records.len() as u64);
        out
    }

    /// Encodes as version 2 (dictionary-compacted). Fails when the data has
    /// more than 128 distinct values; callers fall back to version 1.
    pub fn encode_dictionary(&self) -> Result<Vec<u8>> {
        let mut dict: Vec<&[u8]> = Vec::new();
        let mut codes: Vec<u8> = Vec::with_capacity(self.records.len());
        for record in &self.records {
            let code = match dict.iter().position(|d| *d == record.as_slice()) {
                Some(i) => i,
                None => {
                    if dict.len() >= 128 {
                        return Err(VectorError::DictionaryTooLarge {
                            distinct: dict.len() + 1,
                        });
                    }
                    dict.push(record.as_slice());
                    dict.len() - 1
                }
            };
            codes.push(code as u8);
        }
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(V2_DICT);
        varint::write(&mut out, dict.len() as u64);
        for entry in &dict {
            varint::write(&mut out, entry.len() as u64);
            out.extend_from_slice(entry);
        }
        out.extend_from_slice(&codes);
        let data_end = out.len() as u64;
        finish_trailer(&mut out, data_end, data_end, self.records.len() as u64);
        Ok(out)
    }

    /// Picks the best encoding: version 3 (indexed) for vectors of at
    /// least [`INDEX_MIN_COUNT`] records, else version 1 — unless the
    /// dictionary form is both possible and strictly smaller.
    pub fn encode_auto(&self) -> Vec<u8> {
        let candidate = if self.records.len() as u64 >= INDEX_MIN_COUNT {
            self.encode_indexed()
        } else {
            self.encode_plain()
        };
        match self.encode_dictionary() {
            Ok(dict) if dict.len() < candidate.len() => dict,
            _ => candidate,
        }
    }
}

/// Appends the version-3 value index: a varint record count followed by
/// one little-endian `u32` record position per record, ordered by value
/// bytes ascending with document order breaking ties.
fn write_value_index(out: &mut Vec<u8>, records: &[Vec<u8>]) {
    let mut order: Vec<u32> = (0..records.len() as u32).collect();
    order.sort_by(|&a, &b| {
        records[a as usize]
            .cmp(&records[b as usize])
            .then(a.cmp(&b))
    });
    varint::write(out, order.len() as u64);
    for pos in order {
        out.extend_from_slice(&pos.to_le_bytes());
    }
}

fn finish_trailer(out: &mut Vec<u8>, data_end: u64, skip_start: u64, count: u64) {
    out.extend_from_slice(&data_end.to_le_bytes());
    out.extend_from_slice(&skip_start.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
}

/// Size statistics for a loaded vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorStats {
    pub count: u64,
    /// Bytes of the record/code stream (the catalog's `data_bytes`).
    pub data_bytes: u64,
    /// Sum of raw value lengths.
    pub value_bytes: u64,
    /// Bytes of the persistent value index (0 for versions 1 and 2).
    pub index_bytes: u64,
    pub version: u8,
}

enum Body {
    Plain {
        /// `(offset, len)` into `data` per record.
        index: Vec<(u32, u32)>,
        data: Vec<u8>,
        skips: Vec<u64>,
        /// Version-3 value index: record positions sorted by value.
        sorted: Option<Vec<u32>>,
    },
    Dict {
        dict: Vec<Vec<u8>>,
        codes: Vec<u8>,
    },
}

/// A fully loaded, randomly accessible vector.
pub struct Vector {
    body: Body,
    stats: VectorStats,
}

impl Vector {
    /// Strict load: validates magic, version, trailer, skip index, and
    /// record-stream integrity.
    pub fn open(path: &Path) -> Result<Self> {
        Self::decode(&fs::read(path)?)
    }

    /// Strict load through a bounded [`Pager`] buffer pool of `frames`
    /// frames, returning the pool's hit/miss/eviction statistics along
    /// with the vector — the bounded-memory read path `vx stats
    /// --metrics` reports on.
    pub fn open_paged(path: &Path, frames: usize) -> Result<(Self, PagerStats)> {
        let len = fs::metadata(path)?.len() as usize;
        let mut pager = Pager::open(path, frames)?;
        let mut bytes = Vec::with_capacity(len);
        for page in 0..pager.page_count() {
            let take = (len - bytes.len()).min(PAGE_SIZE);
            pager.with_page(page, |data| bytes.extend_from_slice(&data[..take]))?;
        }
        let stats = pager.stats();
        Ok((Self::decode(&bytes)?, stats))
    }

    /// Strict decode from bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let version = check_header(bytes)?;
        if bytes.len() < DATA_START + 28 {
            return Err(VectorError::BadHeader("file too short for trailer".into()));
        }
        let tail = &bytes[bytes.len() - 28..];
        if &tail[24..28] != TRAILER_MAGIC {
            return Err(VectorError::BadHeader("missing VXVE trailer magic".into()));
        }
        let data_end = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes")) as usize;
        let skip_start = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes")) as usize;
        let count = u64::from_le_bytes(tail[16..24].try_into().expect("8 bytes"));
        // Versions 1/2 have no index section: skip_start must equal
        // data_end. Version 3's value index lives in the gap.
        let gap_ok = match version {
            V3_SORTED => skip_start >= data_end && skip_start <= bytes.len() - 28,
            _ => skip_start == data_end,
        };
        if data_end < DATA_START || data_end > bytes.len() - 28 || !gap_ok {
            return Err(VectorError::Corrupt {
                offset: bytes.len() - 28,
                message: "inconsistent trailer offsets".into(),
            });
        }
        match version {
            V1_PLAIN => Self::decode_plain(bytes, data_end, count, true),
            V2_DICT => Self::decode_dict(bytes, data_end, count, true),
            V3_SORTED => Self::decode_v3(bytes, data_end, Some(skip_start), count),
            _ => unreachable!("check_header validated version"),
        }
    }

    /// Salvage load for files whose trailer was damaged by the seed
    /// capture's sanitizer: trusts the caller's record count (from
    /// `catalog.json`) and parses the record stream forward, ignoring the
    /// trailer entirely.
    pub fn open_salvage(path: &Path, expected_count: u64) -> Result<Self> {
        let bytes = fs::read(path)?;
        let version = check_header(&bytes)?;
        match version {
            V1_PLAIN => Self::decode_plain(&bytes, usize::MAX, expected_count, false),
            V2_DICT => Self::decode_dict(&bytes, usize::MAX, expected_count, false),
            V3_SORTED => Self::decode_v3(&bytes, usize::MAX, None, expected_count),
            _ => unreachable!("check_header validated version"),
        }
    }

    fn decode_plain(bytes: &[u8], data_end: usize, count: u64, strict: bool) -> Result<Self> {
        let parsed = parse_records(bytes, data_end, count, strict)?;
        if strict {
            if parsed.end != data_end {
                return Err(VectorError::Corrupt {
                    offset: parsed.end,
                    message: "record stream does not end at data_end".into(),
                });
            }
            validate_skips(bytes, data_end, &parsed.record_starts)?;
        }
        Ok(Vector {
            stats: VectorStats {
                count,
                data_bytes: (parsed.end - DATA_START) as u64,
                value_bytes: parsed.data.len() as u64,
                index_bytes: 0,
                version: V1_PLAIN,
            },
            body: Body::Plain {
                index: parsed.index,
                data: parsed.data,
                skips: parsed.record_starts,
                sorted: None,
            },
        })
    }

    /// Version 3: plain records, then the value index in
    /// `[data_end, skip_start)`, then the skip index. `skip_start` is
    /// `None` in salvage mode — the index is parsed right after the
    /// forward-recovered record stream, and any damage to it degrades
    /// the vector to "no index" rather than failing the load.
    fn decode_v3(
        bytes: &[u8],
        data_end: usize,
        skip_start: Option<usize>,
        count: u64,
    ) -> Result<Self> {
        let strict = skip_start.is_some();
        let parsed = parse_records(bytes, data_end, count, strict)?;
        let sorted: Option<Vec<u32>>;
        let index_bytes: u64;
        if let Some(skip_start) = skip_start {
            if parsed.end != data_end {
                return Err(VectorError::Corrupt {
                    offset: parsed.end,
                    message: "record stream does not end at data_end".into(),
                });
            }
            let (order, index_end) = parse_value_index(bytes, data_end, count)?;
            if index_end != skip_start {
                return Err(VectorError::Corrupt {
                    offset: index_end,
                    message: "value index does not end at skip_start".into(),
                });
            }
            validate_value_index(&order, &parsed, data_end)?;
            validate_skips(bytes, skip_start, &parsed.record_starts)?;
            index_bytes = (skip_start - data_end) as u64;
            sorted = Some(order);
        } else {
            // Salvage: a short or inconsistent index section means the
            // vector simply loads without one.
            (sorted, index_bytes) = match parse_value_index(bytes, parsed.end, count) {
                Ok((order, end)) if validate_value_index(&order, &parsed, parsed.end).is_ok() => {
                    let len = (end - parsed.end) as u64;
                    (Some(order), len)
                }
                _ => (None, 0),
            };
        }
        Ok(Vector {
            stats: VectorStats {
                count,
                data_bytes: (parsed.end - DATA_START) as u64,
                value_bytes: parsed.data.len() as u64,
                index_bytes,
                version: V3_SORTED,
            },
            body: Body::Plain {
                index: parsed.index,
                data: parsed.data,
                skips: parsed.record_starts,
                sorted,
            },
        })
    }

    fn decode_dict(bytes: &[u8], data_end: usize, count: u64, strict: bool) -> Result<Self> {
        let (dict_len, mut pos) = varint::read(bytes, DATA_START)?;
        let mut dict = Vec::with_capacity(dict_len as usize);
        for i in 0..dict_len {
            let (len, next) = varint::read(bytes, pos)?;
            let end = next
                .checked_add(len as usize)
                .filter(|&e| e <= bytes.len())
                .ok_or(VectorError::Corrupt {
                    offset: pos,
                    message: format!("dictionary entry {i} runs past end"),
                })?;
            dict.push(bytes[next..end].to_vec());
            pos = end;
        }
        let codes_end = pos + count as usize;
        if codes_end > bytes.len() {
            return Err(VectorError::Corrupt {
                offset: pos,
                message: "code stream truncated".into(),
            });
        }
        let codes = bytes[pos..codes_end].to_vec();
        if strict && codes_end != data_end {
            return Err(VectorError::Corrupt {
                offset: codes_end,
                message: "code stream does not end at data_end".into(),
            });
        }
        let mut value_bytes = 0u64;
        for (i, &code) in codes.iter().enumerate() {
            let entry = dict.get(code as usize).ok_or(VectorError::Corrupt {
                offset: pos + i,
                message: format!("code {code} out of dictionary range"),
            })?;
            value_bytes += entry.len() as u64;
        }
        Ok(Vector {
            body: Body::Dict { dict, codes },
            stats: VectorStats {
                count,
                data_bytes: count,
                value_bytes,
                index_bytes: 0,
                version: V2_DICT,
            },
        })
    }

    pub fn stats(&self) -> VectorStats {
        self.stats
    }

    pub fn len(&self) -> u64 {
        self.stats.count
    }

    pub fn is_empty(&self) -> bool {
        self.stats.count == 0
    }

    /// Random access by occurrence position.
    pub fn get(&self, i: u64) -> Result<&[u8]> {
        if i >= self.stats.count {
            return Err(VectorError::OutOfBounds {
                index: i,
                count: self.stats.count,
            });
        }
        Ok(match &self.body {
            Body::Plain { index, data, .. } => {
                let (off, len) = index[i as usize];
                &data[off as usize..off as usize + len as usize]
            }
            Body::Dict { dict, codes } => &dict[codes[i as usize] as usize],
        })
    }

    /// Skip-index entries (versions 1 and 3): data-relative byte offsets
    /// of records `0, 256, 512, …` as written on disk.
    pub fn skip_entries(&self) -> &[u64] {
        match &self.body {
            Body::Plain { skips, .. } => skips,
            Body::Dict { .. } => &[],
        }
    }

    /// The persistent value index, when this vector has one (version 3):
    /// record positions ordered by value bytes ascending, ties in
    /// document order. `None` for versions 1/2 and for salvaged
    /// version-3 files whose index section was damaged.
    pub fn sorted_order(&self) -> Option<&[u32]> {
        match &self.body {
            Body::Plain { sorted, .. } => sorted.as_deref(),
            Body::Dict { .. } => None,
        }
    }

    /// Sequential scan cursor starting at record `start`.
    pub fn cursor(&self, start: u64) -> Cursor<'_> {
        Cursor {
            vector: self,
            next: start,
            stats: CursorStats::default(),
        }
    }

    /// Iterates all values.
    pub fn iter(&self) -> Cursor<'_> {
        self.cursor(0)
    }
}

/// What one cursor did: values it decoded versus values it jumped over
/// without touching (forward seeks). Deterministic for a given access
/// pattern.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CursorStats {
    /// Values returned by `next()`.
    pub decoded: u64,
    /// Values skipped by forward `seek`s without being decoded.
    pub skipped: u64,
}

/// Sequential scan over a vector.
pub struct Cursor<'a> {
    vector: &'a Vector,
    next: u64,
    stats: CursorStats,
}

impl Cursor<'_> {
    /// Repositions the cursor. Forward moves count the jumped-over
    /// values as skipped.
    pub fn seek(&mut self, index: u64) {
        if index > self.next {
            self.stats.skipped += index - self.next;
        }
        self.next = index;
    }

    /// Current position (index of the value `next()` would return).
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Decoded/skipped tallies for this cursor so far.
    pub fn stats(&self) -> CursorStats {
        self.stats
    }
}

impl<'a> Iterator for Cursor<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let v = self.vector.get(self.next).ok()?;
        self.next += 1;
        self.stats.decoded += 1;
        Some(v)
    }
}

/// Records parsed forward from `DATA_START`.
struct ParsedRecords {
    /// `(offset, len)` into `data` per record.
    index: Vec<(u32, u32)>,
    data: Vec<u8>,
    /// Data-relative byte offsets of records `0, 256, 512, …`.
    record_starts: Vec<u64>,
    /// Absolute offset one past the last record.
    end: usize,
}

fn parse_records(bytes: &[u8], data_end: usize, count: u64, strict: bool) -> Result<ParsedRecords> {
    let mut index = Vec::with_capacity(count as usize);
    let mut data = Vec::new();
    let mut pos = DATA_START;
    let mut record_starts: Vec<u64> = Vec::new();
    for i in 0..count {
        if i % SKIP_STRIDE == 0 {
            record_starts.push((pos - DATA_START) as u64);
        }
        let (len, next) = varint::read(bytes, pos)?;
        let end = next
            .checked_add(len as usize)
            .filter(|&e| e <= if strict { data_end } else { bytes.len() })
            .ok_or(VectorError::Corrupt {
                offset: pos,
                message: format!("record {i} runs past data section"),
            })?;
        index.push((data.len() as u32, len as u32));
        data.extend_from_slice(&bytes[next..end]);
        pos = end;
    }
    Ok(ParsedRecords {
        index,
        data,
        record_starts,
        end: pos,
    })
}

/// Parses a value-index section at `start`: varint record count, then
/// one `u32` position per record. Returns the order and the offset one
/// past the section.
fn parse_value_index(bytes: &[u8], start: usize, count: u64) -> Result<(Vec<u32>, usize)> {
    let (n, mut pos) = varint::read(bytes, start)?;
    if n != count {
        return Err(VectorError::Corrupt {
            offset: start,
            message: format!("value index covers {n} records, expected {count}"),
        });
    }
    let end = pos
        .checked_add(4 * n as usize)
        .filter(|&e| e <= bytes.len())
        .ok_or(VectorError::Corrupt {
            offset: pos,
            message: "value index truncated".into(),
        })?;
    let mut order = Vec::with_capacity(n as usize);
    while pos < end {
        order.push(u32::from_le_bytes(
            bytes[pos..pos + 4].try_into().expect("4 bytes"),
        ));
        pos += 4;
    }
    Ok((order, end))
}

/// Checks that `order` is a permutation of the record positions sorted
/// by `(value bytes, position)`.
fn validate_value_index(order: &[u32], parsed: &ParsedRecords, at: usize) -> Result<()> {
    let value = |p: u32| -> &[u8] {
        let (off, len) = parsed.index[p as usize];
        &parsed.data[off as usize..(off + len) as usize]
    };
    let count = parsed.index.len();
    let mut seen = vec![false; count];
    for (k, &p) in order.iter().enumerate() {
        if p as usize >= count || std::mem::replace(&mut seen[p as usize], true) {
            return Err(VectorError::Corrupt {
                offset: at,
                message: format!("value index entry {k} is not a fresh record position"),
            });
        }
        if k > 0 {
            let q = order[k - 1];
            if (value(q), q) >= (value(p), p) {
                return Err(VectorError::Corrupt {
                    offset: at,
                    message: format!("value index not sorted at entry {k}"),
                });
            }
        }
    }
    Ok(())
}

/// Validates the skip index at `start` against the actual record
/// offsets, and that it ends exactly at the trailer.
fn validate_skips(bytes: &[u8], start: usize, record_starts: &[u64]) -> Result<()> {
    let mut sp = start;
    for (k, &expected) in record_starts.iter().enumerate() {
        let (entry, next) = varint::read(bytes, sp)?;
        if entry != expected {
            return Err(VectorError::Corrupt {
                offset: sp,
                message: format!("skip entry {k}: {entry} != {expected}"),
            });
        }
        sp = next;
    }
    if sp != bytes.len() - 28 {
        return Err(VectorError::Corrupt {
            offset: sp,
            message: "skip index does not end at trailer".into(),
        });
    }
    Ok(())
}

fn check_header(bytes: &[u8]) -> Result<u8> {
    if bytes.len() < DATA_START || &bytes[0..4] != MAGIC {
        return Err(VectorError::BadHeader("missing VXVC magic".into()));
    }
    match bytes[4] {
        v @ (V1_PLAIN | V2_DICT | V3_SORTED) => Ok(v),
        v => Err(VectorError::BadHeader(format!("unsupported version {v}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("value-{i:05}-{}", "x".repeat(i % 40)).into_bytes())
            .collect()
    }

    #[test]
    fn plain_round_trip_with_skip_index() {
        let values = sample_values(1000);
        let mut w = Writer::new();
        for v in &values {
            w.push(v);
        }
        let bytes = w.encode_plain();
        let vec = Vector::decode(&bytes).unwrap();
        assert_eq!(vec.len(), 1000);
        assert_eq!(vec.skip_entries().len(), 4); // records 0, 256, 512, 768
        for (i, v) in values.iter().enumerate() {
            assert_eq!(vec.get(i as u64).unwrap(), v.as_slice());
        }
        assert_eq!(
            vec.stats().value_bytes,
            values.iter().map(|v| v.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn empty_vector_round_trips() {
        let bytes = Writer::new().encode_plain();
        let vec = Vector::decode(&bytes).unwrap();
        assert!(vec.is_empty());
        assert!(vec.get(0).is_err());
    }

    #[test]
    fn large_records_round_trip() {
        let mut w = Writer::new();
        let big = vec![b'z'; 100_000];
        w.push(&big);
        w.push(b"");
        w.push(&big);
        let bytes = w.encode_plain();
        let vec = Vector::decode(&bytes).unwrap();
        assert_eq!(vec.get(0).unwrap().len(), 100_000);
        assert_eq!(vec.get(1).unwrap(), b"");
        assert_eq!(vec.get(2).unwrap(), &big[..]);
    }

    #[test]
    fn dictionary_round_trip() {
        let mut w = Writer::new();
        for i in 0..500usize {
            w.push(format!("{}", i % 7).as_bytes());
        }
        let bytes = w.encode_dictionary().unwrap();
        let vec = Vector::decode(&bytes).unwrap();
        assert_eq!(vec.stats().version, 2);
        assert_eq!(vec.stats().data_bytes, 500);
        for i in 0..500u64 {
            assert_eq!(vec.get(i).unwrap(), format!("{}", i % 7).as_bytes());
        }
    }

    #[test]
    fn dictionary_rejects_high_cardinality() {
        let mut w = Writer::new();
        for i in 0..200usize {
            w.push(format!("{i}").as_bytes());
        }
        assert!(matches!(
            w.encode_dictionary(),
            Err(VectorError::DictionaryTooLarge { .. })
        ));
        // encode_auto falls back to the indexed plain form.
        let vec = Vector::decode(&w.encode_auto()).unwrap();
        assert_eq!(vec.stats().version, 3);
        assert!(vec.sorted_order().is_some());
    }

    #[test]
    fn indexed_round_trip_orders_values() {
        let values = sample_values(300);
        let mut w = Writer::new();
        for v in values.iter().rev() {
            w.push(v);
        }
        let bytes = w.encode_indexed();
        let vec = Vector::decode(&bytes).unwrap();
        assert_eq!(vec.stats().version, 3);
        assert_eq!(vec.stats().index_bytes, 2 + 4 * 300);
        assert_eq!(vec.skip_entries().len(), 2); // records 0, 256
        for (i, v) in values.iter().rev().enumerate() {
            assert_eq!(vec.get(i as u64).unwrap(), v.as_slice());
        }
        let order = vec.sorted_order().unwrap();
        assert_eq!(order.len(), 300);
        for pair in order.windows(2) {
            let a = vec.get(pair[0] as u64).unwrap();
            let b = vec.get(pair[1] as u64).unwrap();
            assert!((a, pair[0]) < (b, pair[1]), "index out of order");
        }
    }

    #[test]
    fn indexed_ties_stay_in_document_order() {
        let mut w = Writer::new();
        for i in 0..100usize {
            w.push(format!("{}", i % 3).as_bytes());
        }
        let vec = Vector::decode(&w.encode_indexed()).unwrap();
        let order = vec.sorted_order().unwrap();
        // Equal values keep ascending positions.
        for pair in order.windows(2) {
            if vec.get(pair[0] as u64).unwrap() == vec.get(pair[1] as u64).unwrap() {
                assert!(pair[0] < pair[1]);
            }
        }
    }

    #[test]
    fn auto_picks_indexed_only_at_scale() {
        // Below INDEX_MIN_COUNT the plain form wins over the index.
        let mut small = Writer::new();
        for i in 0..(INDEX_MIN_COUNT - 1) as usize {
            small.push(format!("v{i}").as_bytes());
        }
        let small = Vector::decode(&small.encode_auto()).unwrap();
        assert_eq!(small.stats().version, 1);
        // At scale with > 128 distinct values (dictionary impossible)
        // the indexed form wins.
        let mut big = Writer::new();
        for i in 0..200usize {
            big.push(format!("v{i}").as_bytes());
        }
        assert_eq!(
            Vector::decode(&big.encode_auto()).unwrap().stats().version,
            3
        );
        // Low-cardinality data still prefers the dictionary: one byte
        // per record beats plain data plus a four-byte index entry.
        let mut dictish = Writer::new();
        for i in 0..200usize {
            dictish.push(format!("{}", i % 5).as_bytes());
        }
        assert_eq!(
            Vector::decode(&dictish.encode_auto())
                .unwrap()
                .stats()
                .version,
            2
        );
    }

    #[test]
    fn strict_reader_rejects_unsorted_index() {
        let mut w = Writer::new();
        for v in sample_values(80) {
            w.push(&v);
        }
        let good = w.encode_indexed();
        let vec = Vector::decode(&good).unwrap();
        assert_eq!(vec.stats().version, 3);
        // Swap the first two index entries: positions stay a permutation
        // but the value order breaks.
        let data_end = good.len()
            - 28
            - vec.skip_entries().len() // 1-byte varints at this size
            - vec.stats().index_bytes as usize;
        let mut bad = good.clone();
        let e0 = data_end + 1; // past the 1-byte varint count
        for k in 0..4 {
            bad.swap(e0 + k, e0 + 4 + k);
        }
        assert!(Vector::decode(&bad).is_err());
    }

    #[test]
    fn salvage_reads_indexed_without_trailer() {
        let values = sample_values(90);
        let mut w = Writer::new();
        for v in &values {
            w.push(v);
        }
        let mut bytes = w.encode_indexed();
        let n = bytes.len();
        bytes.truncate(n - 20);
        let path =
            std::env::temp_dir().join(format!("vx-vec-salvage-v3-{}.vec", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let vec = Vector::open_salvage(&path, 90).unwrap();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(vec.get(i as u64).unwrap(), v.as_slice());
        }
        // The index section survives trailer loss intact.
        assert!(vec.sorted_order().is_some());

        // Truncating into the index itself degrades to "no index"
        // without failing the load.
        let index_start = DATA_START + vec.stats().data_bytes as usize;
        std::fs::write(&path, &bytes[..index_start + 10]).unwrap();
        let vec = Vector::open_salvage(&path, 90).unwrap();
        assert!(vec.sorted_order().is_none());
        assert_eq!(vec.len(), 90);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cursor_scans_and_seeks() {
        let values = sample_values(300);
        let mut w = Writer::new();
        for v in &values {
            w.push(v);
        }
        let vec = Vector::decode(&w.encode_plain()).unwrap();
        let collected: Vec<_> = vec.iter().map(|v| v.to_vec()).collect();
        assert_eq!(collected, values);
        let mut c = vec.cursor(0);
        c.seek(299);
        assert_eq!(c.next().unwrap(), values[299].as_slice());
        assert!(c.next().is_none());
    }

    #[test]
    fn strict_reader_rejects_corruption() {
        let mut w = Writer::new();
        for v in sample_values(10) {
            w.push(&v);
        }
        let good = w.encode_plain();
        // Flip the record count in the trailer.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 12] ^= 0x01;
        assert!(Vector::decode(&bad).is_err());
        // Truncate mid-data.
        assert!(Vector::decode(&good[..good.len() - 40]).is_err());
    }

    #[test]
    fn salvage_reads_without_trailer() {
        let values = sample_values(50);
        let mut w = Writer::new();
        for v in &values {
            w.push(v);
        }
        let mut bytes = w.encode_plain();
        // Destroy the entire trailer region.
        let n = bytes.len();
        bytes.truncate(n - 20);
        let path = std::env::temp_dir().join(format!("vx-vec-salvage-{}.vec", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let vec = Vector::open_salvage(&path, 50).unwrap();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(vec.get(i as u64).unwrap(), v.as_slice());
        }
        let _ = std::fs::remove_file(&path);
    }
}
