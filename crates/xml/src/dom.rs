//! Owned DOM types.

/// The XML declaration (`<?xml version="1.0" ...?>`), if present.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlDecl {
    pub version: String,
    pub encoding: Option<String>,
    pub standalone: Option<bool>,
}

/// A parsed document: optional declaration, prolog/epilog misc nodes, and
/// exactly one root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    pub decl: Option<XmlDecl>,
    /// Comments and processing instructions appearing before the root.
    pub prolog: Vec<Node>,
    pub root: Element,
    /// Comments and processing instructions appearing after the root.
    pub epilog: Vec<Node>,
}

impl Document {
    /// Wraps an element as a document with no prolog or epilog.
    pub fn from_root(root: Element) -> Self {
        Document {
            decl: None,
            prolog: Vec::new(),
            root,
            epilog: Vec::new(),
        }
    }
}

/// An element: tag name, attributes in source order, children in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    pub name: String,
    pub attributes: Vec<(String, String)>,
    pub children: Vec<Node>,
}

impl Element {
    /// A childless, attribute-less element.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: appends a child node (or element).
    pub fn with_child(mut self, child: impl Into<Node>) -> Self {
        self.children.push(child.into());
        self
    }

    /// Wraps the element as a [`Node`].
    pub fn into_node(self) -> Node {
        Node::Element(self)
    }

    /// Builder-style: appends a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Builder-style: appends an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// First attribute value with the given name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Iterator over child elements.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|c| match c {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// First child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Concatenation of all directly contained text and CDATA.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            match c {
                Node::Text(t) | Node::CData(t) => out.push_str(t),
                _ => {}
            }
        }
        out
    }

    /// Total node count (this element, its attributes' values excluded,
    /// plus all descendant elements and text-class nodes).
    pub fn node_count(&self) -> u64 {
        let mut n = 1;
        for c in &self.children {
            n += match c {
                Node::Element(e) => e.node_count(),
                _ => 1,
            };
        }
        n
    }
}

/// A DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    Element(Element),
    /// Character data (entity references already expanded).
    Text(String),
    /// A CDATA section's literal contents.
    CData(String),
    Comment(String),
    ProcessingInstruction {
        target: String,
        data: String,
    },
}

impl Node {
    pub fn element(name: impl Into<String>) -> Node {
        Node::Element(Element::new(name))
    }

    pub fn text(text: impl Into<String>) -> Node {
        Node::Text(text.into())
    }
}

impl From<Element> for Node {
    fn from(e: Element) -> Node {
        Node::Element(e)
    }
}
