//! Recursive-descent XML 1.0 parser.

use crate::dom::{Document, Element, Node, XmlDecl};
use crate::{Result, XmlError};

/// Parses a complete XML document.
pub fn parse(input: &str) -> Result<Document> {
    let mut p = Parser::new(input);
    p.document()
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            input,
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            line: self.line,
            column: self.column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else if b & 0xc0 != 0x80 {
            // Count UTF-8 scalar starts, not continuation bytes.
            self.column += 1;
        }
        Some(b)
    }

    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.starts_with(s) {
            self.advance(s.len());
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    // ---- grammar ---------------------------------------------------------

    fn document(&mut self) -> Result<Document> {
        let decl = self.xml_decl()?;
        let mut prolog = Vec::new();
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                prolog.push(self.comment()?);
            } else if self.starts_with("<!DOCTYPE") {
                self.doctype()?;
            } else if self.starts_with("<?") {
                prolog.push(self.processing_instruction()?);
            } else {
                break;
            }
        }
        self.skip_ws();
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        let root = self.element()?;
        let mut epilog = Vec::new();
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                epilog.push(self.comment()?);
            } else if self.starts_with("<?") {
                epilog.push(self.processing_instruction()?);
            } else {
                break;
            }
        }
        self.skip_ws();
        if !self.at_end() {
            return Err(self.err("content after root element"));
        }
        Ok(Document {
            decl,
            prolog,
            root,
            epilog,
        })
    }

    fn xml_decl(&mut self) -> Result<Option<XmlDecl>> {
        if !self.starts_with("<?xml") {
            return Ok(None);
        }
        // `<?xml-stylesheet` etc. are PIs, not the declaration.
        let after = self.bytes.get(self.pos + 5).copied();
        if !matches!(after, Some(b' ' | b'\t' | b'\r' | b'\n')) {
            return Ok(None);
        }
        self.advance(5);
        let mut decl = XmlDecl {
            version: "1.0".to_string(),
            encoding: None,
            standalone: None,
        };
        loop {
            self.skip_ws();
            if self.starts_with("?>") {
                self.advance(2);
                return Ok(Some(decl));
            }
            let (name, value) = self.attribute()?;
            match name.as_str() {
                "version" => decl.version = value,
                "encoding" => decl.encoding = Some(value),
                "standalone" => decl.standalone = Some(value == "yes"),
                other => {
                    return Err(self.err(format!("unknown XML declaration attribute `{other}`")))
                }
            }
        }
    }

    /// Skips a DOCTYPE declaration, including a bracketed internal subset.
    fn doctype(&mut self) -> Result<()> {
        self.expect("<!DOCTYPE")?;
        let mut depth = 0i32;
        loop {
            match self.bump() {
                Some(b'[') => depth += 1,
                Some(b']') => depth -= 1,
                Some(b'>') if depth == 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err("unterminated DOCTYPE")),
            }
        }
    }

    fn comment(&mut self) -> Result<Node> {
        self.expect("<!--")?;
        let start = self.pos;
        loop {
            if self.starts_with("-->") {
                let text = self.input[start..self.pos].to_string();
                if text.contains("--") {
                    return Err(self.err("`--` inside comment"));
                }
                self.advance(3);
                return Ok(Node::Comment(text));
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated comment"));
            }
        }
    }

    fn processing_instruction(&mut self) -> Result<Node> {
        self.expect("<?")?;
        let target = self.name()?;
        if target.eq_ignore_ascii_case("xml") {
            return Err(self.err("XML declaration not allowed here"));
        }
        self.skip_ws();
        let start = self.pos;
        loop {
            if self.starts_with("?>") {
                let data = self.input[start..self.pos].to_string();
                self.advance(2);
                return Ok(Node::ProcessingInstruction { target, data });
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated processing instruction"));
            }
        }
    }

    fn cdata(&mut self) -> Result<Node> {
        self.expect("<![CDATA[")?;
        let start = self.pos;
        loop {
            if self.starts_with("]]>") {
                let data = self.input[start..self.pos].to_string();
                self.advance(3);
                return Ok(Node::CData(data));
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated CDATA section"));
            }
        }
    }

    fn name(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => {
                self.bump();
            }
            _ => return Err(self.err("expected name")),
        }
        while let Some(b) = self.peek() {
            if is_name_char(b) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn attribute(&mut self) -> Result<(String, String)> {
        let name = self.name()?;
        self.skip_ws();
        self.expect("=")?;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.bump();
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(q) if q == quote => {
                    self.bump();
                    return Ok((name, value));
                }
                Some(b'<') => return Err(self.err("`<` in attribute value")),
                Some(b'&') => value.push_str(&self.reference()?),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.bump();
                    }
                    value.push_str(&self.input[start..self.pos]);
                }
                None => return Err(self.err("unterminated attribute value")),
            }
        }
    }

    /// Parses `&...;` and returns the expanded text.
    fn reference(&mut self) -> Result<String> {
        self.expect("&")?;
        if self.peek() == Some(b'#') {
            self.bump();
            let (radix, digits_start) = if self.peek() == Some(b'x') {
                self.bump();
                (16, self.pos)
            } else {
                (10, self.pos)
            };
            while matches!(self.peek(), Some(b) if (b as char).is_digit(radix)) {
                self.bump();
            }
            let digits = &self.input[digits_start..self.pos];
            self.expect(";")?;
            let code = u32::from_str_radix(digits, radix)
                .map_err(|_| self.err("bad character reference"))?;
            let ch = char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?;
            return Ok(ch.to_string());
        }
        let name = self.name()?;
        self.expect(";")?;
        let expansion = match name.as_str() {
            "lt" => "<",
            "gt" => ">",
            "amp" => "&",
            "apos" => "'",
            "quot" => "\"",
            other => return Err(self.err(format!("unknown entity `&{other};`"))),
        };
        Ok(expansion.to_string())
    }

    fn element(&mut self) -> Result<Element> {
        self.expect("<")?;
        let name = self.name()?;
        let mut element = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let (attr_name, value) = self.attribute()?;
                    if element.attributes.iter().any(|(n, _)| *n == attr_name) {
                        return Err(self.err(format!("duplicate attribute `{attr_name}`")));
                    }
                    element.attributes.push((attr_name, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        self.content(&mut element)?;
        self.expect("</")?;
        let close = self.name()?;
        if close != element.name {
            return Err(self.err(format!(
                "mismatched end tag: expected `</{}>`, found `</{close}>`",
                element.name
            )));
        }
        self.skip_ws();
        self.expect(">")?;
        Ok(element)
    }

    fn content(&mut self, element: &mut Element) -> Result<()> {
        let mut text = String::new();
        loop {
            match self.peek() {
                Some(b'<') => {
                    if self.starts_with("</") {
                        if !text.is_empty() {
                            element.children.push(Node::Text(std::mem::take(&mut text)));
                        }
                        return Ok(());
                    }
                    if !text.is_empty() {
                        element.children.push(Node::Text(std::mem::take(&mut text)));
                    }
                    if self.starts_with("<!--") {
                        element.children.push(self.comment()?);
                    } else if self.starts_with("<![CDATA[") {
                        element.children.push(self.cdata()?);
                    } else if self.starts_with("<?") {
                        element.children.push(self.processing_instruction()?);
                    } else {
                        element.children.push(Node::Element(self.element()?));
                    }
                }
                Some(b'&') => text.push_str(&self.reference()?),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.bump();
                    }
                    text.push_str(&self.input[start..self.pos]);
                }
                None => return Err(self.err("unexpected end of input inside element")),
            }
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_document, WriteOptions};

    #[test]
    fn minimal_document() {
        let doc = parse("<a/>").unwrap();
        assert_eq!(doc.root.name, "a");
        assert!(doc.root.children.is_empty());
    }

    #[test]
    fn nested_with_text_and_attributes() {
        let doc = parse(r#"<a x="1" y="two"><b>hi</b><b>bye</b></a>"#).unwrap();
        assert_eq!(doc.root.attr("x"), Some("1"));
        assert_eq!(doc.root.attr("y"), Some("two"));
        let bs: Vec<_> = doc.root.child_elements().collect();
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].text(), "hi");
        assert_eq!(bs[1].text(), "bye");
    }

    #[test]
    fn entities_and_char_refs() {
        let doc = parse("<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>").unwrap();
        assert_eq!(doc.root.text(), "<>&'\"AB");
    }

    #[test]
    fn cdata_comments_pis() {
        let doc = parse("<a><!-- note --><![CDATA[1 < 2]]><?pi data?></a>").unwrap();
        assert_eq!(doc.root.children.len(), 3);
        assert!(matches!(&doc.root.children[0], Node::Comment(c) if c == " note "));
        assert!(matches!(&doc.root.children[1], Node::CData(c) if c == "1 < 2"));
        assert!(matches!(
            &doc.root.children[2],
            Node::ProcessingInstruction { target, data } if target == "pi" && data == "data"
        ));
    }

    #[test]
    fn declaration_doctype_prolog() {
        let doc = parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n<!-- pre -->\n<a/>",
        )
        .unwrap();
        let decl = doc.decl.unwrap();
        assert_eq!(decl.version, "1.0");
        assert_eq!(decl.encoding.as_deref(), Some("UTF-8"));
        assert_eq!(doc.prolog.len(), 1);
    }

    #[test]
    fn mixed_content_preserved() {
        let doc = parse("<p>one <b>two</b> three</p>").unwrap();
        assert_eq!(doc.root.children.len(), 3);
        assert!(matches!(&doc.root.children[0], Node::Text(t) if t == "one "));
        assert!(matches!(&doc.root.children[2], Node::Text(t) if t == " three"));
    }

    #[test]
    fn utf8_names_and_text() {
        let doc = parse("<données>héllo ✓</données>").unwrap();
        assert_eq!(doc.root.name, "données");
        assert_eq!(doc.root.text(), "héllo ✓");
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("mismatched end tag"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x='1' x='2'/>",
            "<a>&unknown;</a>",
            "<a/><b/>",
            "<a attr=novalue/>",
        ] {
            assert!(parse(bad).is_err(), "expected parse failure for {bad:?}");
        }
    }

    #[test]
    fn parse_write_parse_fixpoint() {
        let src = r#"<a x="&lt;q&gt;"><b>text &amp; more</b><c/><!-- c --><d>tail</d></a>"#;
        let doc = parse(src).unwrap();
        let written = write_document(&doc, &WriteOptions::compact());
        let reparsed = parse(&written).unwrap();
        assert_eq!(doc, reparsed);
    }
}
