//! Streaming pull-parser: an [`Events`] iterator over any [`Read`] source
//! that yields start/attr/text/end events without ever building a DOM.
//!
//! This is the ingestion-side twin of [`crate::parse`]: the same XML 1.0
//! subset (elements, attributes, text, CDATA, comments, PIs, predefined
//! entities, numeric character references, skipped internal DTD subset),
//! the same well-formedness checks, and the same text-coalescing rules —
//! consecutive character data and references merge into one [`Event::Text`],
//! CDATA sections stay separate — so a consumer that rebuilds a tree from
//! the events gets exactly what [`crate::parse`] would have produced.
//!
//! Memory is bounded by one look-ahead buffer plus the open-element name
//! stack plus the event currently being assembled; the input is never
//! materialized as a whole. This is what makes DOM-free, bounded-memory
//! vectorization (`vx-ingest`) possible.

use crate::dom::XmlDecl;
use crate::{Result, XmlError};
use std::io::Read;

/// Refill granularity of the look-ahead buffer.
const CHUNK: usize = 8192;
/// Consumed-prefix length that triggers compaction of the buffer.
const COMPACT_AT: usize = 4 * CHUNK;

/// One parsing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The `<?xml …?>` declaration. At most one, always first.
    Decl(XmlDecl),
    /// A start tag opened. Its attributes follow immediately as
    /// [`Event::Attr`] events; `<e/>` additionally yields [`Event::End`]
    /// right after them.
    Start(String),
    /// One attribute of the most recently started element.
    Attr { name: String, value: String },
    /// Character data with references expanded. Never empty; maximal —
    /// adjacent text and references are coalesced exactly as the DOM
    /// parser coalesces them into one `Node::Text`.
    Text(String),
    /// A CDATA section's literal contents (may be empty).
    CData(String),
    /// The named element closed.
    End(String),
    /// A comment (anywhere the DOM parser accepts one).
    Comment(String),
    /// A processing instruction.
    Pi { target: String, data: String },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Very beginning: the declaration is only recognized here.
    AtStart,
    /// Before the root element: misc items, DOCTYPE.
    Prolog,
    /// Inside a start tag, attributes pending.
    StartTag,
    /// Inside element content.
    Content,
    /// After the root element closed: misc items until EOF.
    Epilog,
    Done,
}

/// A pull-based event reader over any byte source.
///
/// Iteration yields `Result<Event>`; after the first error the iterator is
/// fused and returns `None` forever. Well-formedness violations are
/// reported with the same 1-based line/column positions as [`crate::parse`].
pub struct Events<R> {
    src: R,
    buf: Vec<u8>,
    pos: usize,
    eof: bool,
    line: u32,
    column: u32,
    state: State,
    stack: Vec<String>,
    seen_attrs: Vec<String>,
    failed: bool,
}

impl<R: Read> Events<R> {
    /// Wraps a byte source. `&[u8]` implements [`Read`], so
    /// `Events::new(text.as_bytes())` streams over an in-memory string.
    pub fn new(src: R) -> Self {
        Events {
            src,
            buf: Vec::new(),
            pos: 0,
            eof: false,
            line: 1,
            column: 1,
            state: State::AtStart,
            stack: Vec::new(),
            seen_attrs: Vec::new(),
            failed: false,
        }
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            line: self.line,
            column: self.column,
            message: message.into(),
        }
    }

    // ---- buffered cursor -------------------------------------------------

    fn refill(&mut self) -> Result<()> {
        if self.pos >= COMPACT_AT {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        let mut chunk = [0u8; CHUNK];
        loop {
            match self.src.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(self.err(format!("I/O error: {e}"))),
            }
        }
    }

    /// Best-effort: makes at least `n` bytes available unless EOF comes
    /// first.
    fn ensure(&mut self, n: usize) -> Result<()> {
        while self.buf.len() - self.pos < n && !self.eof {
            self.refill()?;
        }
        Ok(())
    }

    fn peek(&mut self) -> Result<Option<u8>> {
        self.ensure(1)?;
        Ok(self.buf.get(self.pos).copied())
    }

    fn starts_with(&mut self, s: &str) -> Result<bool> {
        self.ensure(s.len())?;
        Ok(self.buf[self.pos..].starts_with(s.as_bytes()))
    }

    fn bump(&mut self) -> Result<Option<u8>> {
        let Some(b) = self.peek()? else {
            return Ok(None);
        };
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else if b & 0xc0 != 0x80 {
            // Count UTF-8 scalar starts, not continuation bytes.
            self.column += 1;
        }
        Ok(Some(b))
    }

    fn advance(&mut self, n: usize) -> Result<()> {
        for _ in 0..n {
            self.bump()?;
        }
        Ok(())
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.starts_with(s)? {
            self.advance(s.len())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_ws(&mut self) -> Result<()> {
        while matches!(self.peek()?, Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump()?;
        }
        Ok(())
    }

    /// Copies bytes into `out` until one of `stops` (or EOF); the stop byte
    /// is not consumed.
    fn copy_until(&mut self, out: &mut Vec<u8>, stops: &[u8]) -> Result<()> {
        loop {
            if self.pos >= self.buf.len() {
                if self.eof {
                    return Ok(());
                }
                self.refill()?;
                continue;
            }
            let b = self.buf[self.pos];
            if stops.contains(&b) {
                return Ok(());
            }
            out.push(b);
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.column = 1;
            } else if b & 0xc0 != 0x80 {
                self.column += 1;
            }
        }
    }

    fn utf8(&self, bytes: Vec<u8>, what: &str) -> Result<String> {
        String::from_utf8(bytes).map_err(|_| self.err(format!("{what} is not valid UTF-8")))
    }

    // ---- grammar (mirrors `crate::parser`) -------------------------------

    fn name(&mut self) -> Result<String> {
        let mut out = Vec::new();
        match self.peek()? {
            Some(b) if is_name_start(b) => {
                out.push(b);
                self.bump()?;
            }
            _ => return Err(self.err("expected name")),
        }
        while let Some(b) = self.peek()? {
            if is_name_char(b) {
                out.push(b);
                self.bump()?;
            } else {
                break;
            }
        }
        self.utf8(out, "name")
    }

    /// Parses `&…;` and returns the expanded text.
    fn reference(&mut self) -> Result<String> {
        self.expect("&")?;
        if self.peek()? == Some(b'#') {
            self.bump()?;
            let radix = if self.peek()? == Some(b'x') {
                self.bump()?;
                16
            } else {
                10
            };
            let mut digits = String::new();
            while let Some(b) = self.peek()? {
                if (b as char).is_digit(radix) {
                    digits.push(b as char);
                    self.bump()?;
                } else {
                    break;
                }
            }
            self.expect(";")?;
            let code = u32::from_str_radix(&digits, radix)
                .map_err(|_| self.err("bad character reference"))?;
            let ch = char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?;
            return Ok(ch.to_string());
        }
        let name = self.name()?;
        self.expect(";")?;
        let expansion = match name.as_str() {
            "lt" => "<",
            "gt" => ">",
            "amp" => "&",
            "apos" => "'",
            "quot" => "\"",
            other => return Err(self.err(format!("unknown entity `&{other};`"))),
        };
        Ok(expansion.to_string())
    }

    fn attribute(&mut self) -> Result<(String, String)> {
        let name = self.name()?;
        self.skip_ws()?;
        self.expect("=")?;
        self.skip_ws()?;
        let quote = match self.peek()? {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.bump()?;
        let mut value = Vec::new();
        loop {
            match self.peek()? {
                Some(q) if q == quote => {
                    self.bump()?;
                    let value = self.utf8(value, "attribute value")?;
                    return Ok((name, value));
                }
                Some(b'<') => return Err(self.err("`<` in attribute value")),
                Some(b'&') => {
                    let expanded = self.reference()?;
                    value.extend_from_slice(expanded.as_bytes());
                }
                Some(_) => self.copy_until(&mut value, &[quote, b'&', b'<'])?,
                None => return Err(self.err("unterminated attribute value")),
            }
        }
    }

    fn xml_decl(&mut self) -> Result<Option<XmlDecl>> {
        if !self.starts_with("<?xml")? {
            return Ok(None);
        }
        // `<?xml-stylesheet` etc. are PIs, not the declaration.
        self.ensure(6)?;
        if !matches!(
            self.buf.get(self.pos + 5),
            Some(b' ' | b'\t' | b'\r' | b'\n')
        ) {
            return Ok(None);
        }
        self.advance(5)?;
        let mut decl = XmlDecl {
            version: "1.0".to_string(),
            encoding: None,
            standalone: None,
        };
        loop {
            self.skip_ws()?;
            if self.starts_with("?>")? {
                self.advance(2)?;
                return Ok(Some(decl));
            }
            let (name, value) = self.attribute()?;
            match name.as_str() {
                "version" => decl.version = value,
                "encoding" => decl.encoding = Some(value),
                "standalone" => decl.standalone = Some(value == "yes"),
                other => {
                    return Err(self.err(format!("unknown XML declaration attribute `{other}`")))
                }
            }
        }
    }

    /// Skips a DOCTYPE declaration, including a bracketed internal subset.
    fn doctype(&mut self) -> Result<()> {
        self.expect("<!DOCTYPE")?;
        let mut depth = 0i32;
        loop {
            match self.bump()? {
                Some(b'[') => depth += 1,
                Some(b']') => depth -= 1,
                Some(b'>') if depth == 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err("unterminated DOCTYPE")),
            }
        }
    }

    fn comment(&mut self) -> Result<String> {
        self.expect("<!--")?;
        let mut out = Vec::new();
        loop {
            if self.starts_with("-->")? {
                let text = self.utf8(out, "comment")?;
                if text.contains("--") {
                    return Err(self.err("`--` inside comment"));
                }
                self.advance(3)?;
                return Ok(text);
            }
            match self.bump()? {
                Some(b) => out.push(b),
                None => return Err(self.err("unterminated comment")),
            }
        }
    }

    fn processing_instruction(&mut self) -> Result<Event> {
        self.expect("<?")?;
        let target = self.name()?;
        if target.eq_ignore_ascii_case("xml") {
            return Err(self.err("XML declaration not allowed here"));
        }
        self.skip_ws()?;
        let mut out = Vec::new();
        loop {
            if self.starts_with("?>")? {
                let data = self.utf8(out, "processing instruction")?;
                self.advance(2)?;
                return Ok(Event::Pi { target, data });
            }
            match self.bump()? {
                Some(b) => out.push(b),
                None => return Err(self.err("unterminated processing instruction")),
            }
        }
    }

    fn cdata(&mut self) -> Result<String> {
        self.expect("<![CDATA[")?;
        let mut out = Vec::new();
        loop {
            if self.starts_with("]]>")? {
                self.advance(3)?;
                return self.utf8(out, "CDATA section");
            }
            match self.bump()? {
                Some(b) => out.push(b),
                None => return Err(self.err("unterminated CDATA section")),
            }
        }
    }

    /// Maximal run of character data and references.
    fn text(&mut self) -> Result<String> {
        let mut out = Vec::new();
        loop {
            match self.peek()? {
                Some(b'<') | None => break,
                Some(b'&') => {
                    let expanded = self.reference()?;
                    out.extend_from_slice(expanded.as_bytes());
                }
                Some(_) => self.copy_until(&mut out, b"<&")?,
            }
        }
        self.utf8(out, "text")
    }

    /// Consumes `<name`, pushes the open element, and switches to attribute
    /// parsing.
    fn open_tag(&mut self) -> Result<Event> {
        self.expect("<")?;
        let name = self.name()?;
        self.stack.push(name.clone());
        self.seen_attrs.clear();
        self.state = State::StartTag;
        Ok(Event::Start(name))
    }

    fn next_event(&mut self) -> Result<Option<Event>> {
        loop {
            match self.state {
                State::AtStart => {
                    self.state = State::Prolog;
                    if let Some(decl) = self.xml_decl()? {
                        return Ok(Some(Event::Decl(decl)));
                    }
                }
                State::Prolog => {
                    self.skip_ws()?;
                    if self.starts_with("<!--")? {
                        return Ok(Some(Event::Comment(self.comment()?)));
                    }
                    if self.starts_with("<!DOCTYPE")? {
                        self.doctype()?;
                        continue;
                    }
                    if self.starts_with("<?")? {
                        return Ok(Some(self.processing_instruction()?));
                    }
                    if self.peek()? == Some(b'<') {
                        return Ok(Some(self.open_tag()?));
                    }
                    return Err(self.err("expected root element"));
                }
                State::StartTag => {
                    self.skip_ws()?;
                    match self.peek()? {
                        Some(b'/') => {
                            self.expect("/>")?;
                            let name = self.stack.pop().expect("StartTag implies open element");
                            self.state = if self.stack.is_empty() {
                                State::Epilog
                            } else {
                                State::Content
                            };
                            return Ok(Some(Event::End(name)));
                        }
                        Some(b'>') => {
                            self.bump()?;
                            self.state = State::Content;
                        }
                        Some(_) => {
                            let (name, value) = self.attribute()?;
                            if self.seen_attrs.contains(&name) {
                                return Err(self.err(format!("duplicate attribute `{name}`")));
                            }
                            self.seen_attrs.push(name.clone());
                            return Ok(Some(Event::Attr { name, value }));
                        }
                        None => return Err(self.err("unterminated start tag")),
                    }
                }
                State::Content => match self.peek()? {
                    Some(b'<') => {
                        if self.starts_with("</")? {
                            self.expect("</")?;
                            let close = self.name()?;
                            let open = self.stack.last().expect("Content implies open element");
                            if close != *open {
                                return Err(self.err(format!(
                                    "mismatched end tag: expected `</{open}>`, found `</{close}>`"
                                )));
                            }
                            self.skip_ws()?;
                            self.expect(">")?;
                            self.stack.pop();
                            if self.stack.is_empty() {
                                self.state = State::Epilog;
                            }
                            return Ok(Some(Event::End(close)));
                        }
                        if self.starts_with("<!--")? {
                            return Ok(Some(Event::Comment(self.comment()?)));
                        }
                        if self.starts_with("<![CDATA[")? {
                            return Ok(Some(Event::CData(self.cdata()?)));
                        }
                        if self.starts_with("<?")? {
                            return Ok(Some(self.processing_instruction()?));
                        }
                        return Ok(Some(self.open_tag()?));
                    }
                    Some(_) => {
                        let text = self.text()?;
                        if !text.is_empty() {
                            return Ok(Some(Event::Text(text)));
                        }
                    }
                    None => return Err(self.err("unexpected end of input inside element")),
                },
                State::Epilog => {
                    self.skip_ws()?;
                    if self.starts_with("<!--")? {
                        return Ok(Some(Event::Comment(self.comment()?)));
                    }
                    if self.starts_with("<?")? {
                        return Ok(Some(self.processing_instruction()?));
                    }
                    if self.peek()?.is_none() {
                        self.state = State::Done;
                        return Ok(None);
                    }
                    return Err(self.err("content after root element"));
                }
                State::Done => return Ok(None),
            }
        }
    }
}

impl<R: Read> Iterator for Events<R> {
    type Item = Result<Event>;

    fn next(&mut self) -> Option<Result<Event>> {
        if self.failed {
            return None;
        }
        match self.next_event() {
            Ok(Some(event)) => Some(Ok(event)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::{Document, Element, Node};
    use crate::parse;

    /// Rebuilds a DOM from the event stream, for differential testing
    /// against `crate::parse`.
    fn build_document<R: Read>(events: Events<R>) -> Result<Document> {
        let mut decl = None;
        let mut prolog = Vec::new();
        let mut epilog = Vec::new();
        let mut root: Option<Element> = None;
        let mut stack: Vec<Element> = Vec::new();
        for event in events {
            match event? {
                Event::Decl(d) => decl = Some(d),
                Event::Start(name) => stack.push(Element::new(name)),
                Event::Attr { name, value } => stack
                    .last_mut()
                    .expect("attr outside element")
                    .attributes
                    .push((name, value)),
                Event::Text(t) => stack
                    .last_mut()
                    .expect("text outside element")
                    .children
                    .push(Node::Text(t)),
                Event::CData(t) => stack
                    .last_mut()
                    .expect("cdata outside element")
                    .children
                    .push(Node::CData(t)),
                Event::End(_) => {
                    let done = stack.pop().expect("unbalanced end");
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(Node::Element(done)),
                        None => root = Some(done),
                    }
                }
                Event::Comment(c) => match (stack.last_mut(), &root) {
                    (Some(parent), _) => parent.children.push(Node::Comment(c)),
                    (None, None) => prolog.push(Node::Comment(c)),
                    (None, Some(_)) => epilog.push(Node::Comment(c)),
                },
                Event::Pi { target, data } => {
                    let node = Node::ProcessingInstruction { target, data };
                    match (stack.last_mut(), &root) {
                        (Some(parent), _) => parent.children.push(node),
                        (None, None) => prolog.push(node),
                        (None, Some(_)) => epilog.push(node),
                    }
                }
            }
        }
        Ok(Document {
            decl,
            prolog,
            root: root.expect("no root element"),
            epilog,
        })
    }

    /// A reader that trickles one byte per `read` call, to exercise every
    /// buffer-refill path.
    struct OneByte<'a>(&'a [u8]);

    impl Read for OneByte<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.split_first() {
                Some((&b, rest)) => {
                    buf[0] = b;
                    self.0 = rest;
                    Ok(1)
                }
                None => Ok(0),
            }
        }
    }

    const CASES: &[&str] = &[
        "<a/>",
        r#"<a x="1" y="two"><b>hi</b><b>bye</b></a>"#,
        "<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>",
        "<a><!-- note --><![CDATA[1 < 2]]><?pi data?></a>",
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n<!-- pre -->\n<a/>",
        "<p>one <b>two</b> three</p>",
        "<données>héllo ✓</données>",
        "<a>x<!--c-->y</a>",
        "<a><![CDATA[]]></a>",
        "<a>t<![CDATA[c]]>u<![CDATA[d]]></a>",
        "<a  x = '1'\n y=\"2\" ><b /><b></b ><c>&amp;joined&#33;</c></a>",
        "<r><p><s><t>v</t></s></p><q><s><t>v</t></s></q></r>",
        "<a/><!-- after --><?post data?>",
        "<a\n>\n  text\n</a\n>",
    ];

    #[test]
    fn events_rebuild_exactly_what_parse_builds() {
        for case in CASES {
            let via_parse = parse(case).unwrap_or_else(|e| panic!("{case:?}: parse: {e}"));
            let via_events = build_document(Events::new(case.as_bytes()))
                .unwrap_or_else(|e| panic!("{case:?}: events: {e}"));
            assert_eq!(via_parse, via_events, "case {case:?}");
        }
    }

    #[test]
    fn one_byte_reads_match_slice_reads() {
        for case in CASES {
            let whole: Vec<_> = Events::new(case.as_bytes()).collect();
            let trickled: Vec<_> = Events::new(OneByte(case.as_bytes())).collect();
            let whole: Vec<_> = whole.into_iter().map(|r| r.unwrap()).collect();
            let trickled: Vec<_> = trickled.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(whole, trickled, "case {case:?}");
        }
    }

    #[test]
    fn event_sequence_is_as_documented() {
        let events: Vec<_> = Events::new(r#"<a x="1"><b>hi</b></a>"#.as_bytes())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(
            events,
            vec![
                Event::Start("a".into()),
                Event::Attr {
                    name: "x".into(),
                    value: "1".into()
                },
                Event::Start("b".into()),
                Event::Text("hi".into()),
                Event::End("b".into()),
                Event::End("a".into()),
            ]
        );
    }

    #[test]
    fn self_closing_yields_end_event() {
        let events: Vec<_> = Events::new("<a><b/></a>".as_bytes())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(
            events,
            vec![
                Event::Start("a".into()),
                Event::Start("b".into()),
                Event::End("b".into()),
                Event::End("a".into()),
            ]
        );
    }

    #[test]
    fn rejects_what_parse_rejects() {
        for bad in [
            "",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x='1' x='2'/>",
            "<a>&unknown;</a>",
            "<a/><b/>",
            "<a attr=novalue/>",
            "<a><!-- -- --></a>",
            "<a><?xml version='1.0'?></a>",
        ] {
            assert!(parse(bad).is_err(), "parse must reject {bad:?}");
            let result: Result<Vec<_>> = Events::new(bad.as_bytes()).collect();
            assert!(result.is_err(), "events must reject {bad:?}");
        }
    }

    #[test]
    fn errors_are_fused_and_positioned() {
        let mut events = Events::new("<a>\n  <b></c>\n</a>".as_bytes());
        let mut error = None;
        for item in &mut events {
            if let Err(e) = item {
                error = Some(e);
            }
        }
        let error = error.expect("mismatched end tag must error");
        assert_eq!(error.line, 2);
        assert!(error.message.contains("mismatched end tag"));
        assert!(events.next().is_none(), "iterator must fuse after error");
    }

    #[test]
    fn depth_tracks_open_elements() {
        let mut events = Events::new("<a><b>t</b></a>".as_bytes());
        assert_eq!(events.depth(), 0);
        events.next(); // Start(a)
        assert_eq!(events.depth(), 1);
        events.next(); // Start(b)
        assert_eq!(events.depth(), 2);
        events.next(); // Text
        events.next(); // End(b)
        assert_eq!(events.depth(), 1);
        events.next(); // End(a)
        assert_eq!(events.depth(), 0);
    }
}
