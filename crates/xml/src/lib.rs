//! `vx-xml` — XML 1.0 parsing, DOM, and serialization.
//!
//! This crate is the document layer of xmlvec (DESIGN.md row 1): a
//! from-scratch recursive-descent XML parser producing a simple owned DOM,
//! plus a writer that serializes the DOM back to text. It supports
//! elements, attributes, character data, CDATA sections, comments,
//! processing instructions, the five predefined entities, numeric
//! character references, and skips an internal DTD subset.
//!
//! It deliberately does **not** implement namespaces-as-scoping, external
//! entities, or validation: the vectorizer operates on tag names as opaque
//! strings, exactly as the paper's skeleton does.

mod dom;
mod events;
mod parser;
mod writer;

pub use dom::{Document, Element, Node, XmlDecl};
pub use events::{Event, Events};
pub use parser::parse;
pub use writer::{write_document, write_element, WriteOptions};

use std::fmt;

/// A parse error with 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub line: u32,
    pub column: u32,
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, XmlError>;
