//! DOM serialization.

use crate::dom::{Document, Element, Node};

/// Serialization options.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Indent width per nesting level; `None` emits no insignificant
    /// whitespace (required for lossless round-trips through the
    /// vectorizer).
    pub indent: Option<usize>,
    /// Emit an `<?xml version="1.0"?>` declaration even if the document
    /// has none.
    pub force_declaration: bool,
}

impl WriteOptions {
    /// No added whitespace.
    pub fn compact() -> Self {
        WriteOptions {
            indent: None,
            force_declaration: false,
        }
    }

    /// Two-space indentation (only safe for element-only content).
    pub fn pretty() -> Self {
        WriteOptions {
            indent: Some(2),
            force_declaration: false,
        }
    }
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions::compact()
    }
}

/// Serializes a document to a string.
pub fn write_document(doc: &Document, options: &WriteOptions) -> String {
    let mut out = String::new();
    if let Some(decl) = &doc.decl {
        out.push_str("<?xml version=\"");
        out.push_str(&decl.version);
        out.push('"');
        if let Some(enc) = &decl.encoding {
            out.push_str(" encoding=\"");
            out.push_str(enc);
            out.push('"');
        }
        if let Some(standalone) = decl.standalone {
            out.push_str(" standalone=\"");
            out.push_str(if standalone { "yes" } else { "no" });
            out.push('"');
        }
        out.push_str("?>");
        newline(&mut out, options);
    } else if options.force_declaration {
        out.push_str("<?xml version=\"1.0\"?>");
        newline(&mut out, options);
    }
    for node in &doc.prolog {
        write_node(&mut out, node, 0, options);
        newline(&mut out, options);
    }
    write_element_at(&mut out, &doc.root, 0, options);
    for node in &doc.epilog {
        newline(&mut out, options);
        write_node(&mut out, node, 0, options);
    }
    out
}

/// Serializes a single element (no declaration).
pub fn write_element(element: &Element, options: &WriteOptions) -> String {
    let mut out = String::new();
    write_element_at(&mut out, element, 0, options);
    out
}

fn newline(out: &mut String, options: &WriteOptions) {
    if options.indent.is_some() {
        out.push('\n');
    }
}

fn pad(out: &mut String, depth: usize, options: &WriteOptions) {
    if let Some(width) = options.indent {
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_element_at(out: &mut String, element: &Element, depth: usize, options: &WriteOptions) {
    out.push('<');
    out.push_str(&element.name);
    for (name, value) in &element.attributes {
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        escape_into(out, value, true);
        out.push('"');
    }
    if element.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    // Indentation is only safe when no direct child is text-like.
    let has_text = element
        .children
        .iter()
        .any(|c| matches!(c, Node::Text(_) | Node::CData(_)));
    let indent_children = options.indent.is_some() && !has_text;
    for child in &element.children {
        if indent_children {
            newline(out, options);
            pad(out, depth + 1, options);
        }
        write_node(out, child, depth + 1, options);
    }
    if indent_children {
        newline(out, options);
        pad(out, depth, options);
    }
    out.push_str("</");
    out.push_str(&element.name);
    out.push('>');
}

fn write_node(out: &mut String, node: &Node, depth: usize, options: &WriteOptions) {
    match node {
        Node::Element(e) => write_element_at(out, e, depth, options),
        Node::Text(t) => escape_into(out, t, false),
        Node::CData(t) => {
            out.push_str("<![CDATA[");
            out.push_str(t);
            out.push_str("]]>");
        }
        Node::Comment(t) => {
            out.push_str("<!--");
            out.push_str(t);
            out.push_str("-->");
        }
        Node::ProcessingInstruction { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
}

/// Escapes text content (`<`, `&`, `>`) or attribute values (also `"`).
pub fn escape_into(out: &mut String, text: &str, attribute: bool) {
    for ch in text.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attribute => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Element;
    use crate::parse;

    #[test]
    fn compact_output() {
        let e = Element::new("a")
            .with_attr("k", "v<w")
            .with_child(Node::Element(Element::new("b").with_text("x & y")));
        let s = write_element(&e, &WriteOptions::compact());
        assert_eq!(s, r#"<a k="v&lt;w"><b>x &amp; y</b></a>"#);
    }

    #[test]
    fn pretty_output_reparses_equal_modulo_whitespace() {
        let doc = parse("<a><b><c/></b><b/></a>").unwrap();
        let pretty = write_document(&doc, &WriteOptions::pretty());
        assert!(pretty.contains('\n'));
        // Pretty output adds whitespace-only text; structure must survive.
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(reparsed.root.child_elements().count(), 2);
    }
}
