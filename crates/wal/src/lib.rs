//! `vx-wal` — a checksummed, fsync'd write-ahead segment log.
//!
//! The durability layer under the store's append path (DESIGN.md §11).
//! A WAL lives in a `wal/` subdirectory of a store and holds a sequence
//! of **records**, each journaling one appended document, spread over
//! numbered **segment** files:
//!
//! ```text
//! wal/seg-000001.wal        8-byte magic, then CRC-framed records
//! wal/seg-000002.wal        …rolled to when a segment passes 8 MiB
//! ```
//!
//! Each record is framed as
//!
//! ```text
//! [payload_len: u32 LE][crc32: u32 LE][payload]
//! payload = [seq: u64 LE][kind: u8][flags: u8][body…]
//! ```
//!
//! with `crc32` (IEEE/zlib polynomial) taken over the whole payload.
//! `seq` is a store-wide monotonically increasing record number: the
//! generation manifest records the last sequence folded into the
//! on-disk generation, so replay after a compaction-then-crash never
//! applies a record twice.
//!
//! **Torn-tail tolerance**: a crash mid-append can leave a partial
//! frame at the end of the last segment. [`Wal::scan`] stops at the
//! first frame that is short, oversized, or fails its CRC and reports
//! the byte offset; every record before it is intact (each is guarded
//! by its own checksum). The next [`Wal::append`] truncates the torn
//! bytes before writing, so the log never accumulates garbage between
//! valid records.
//!
//! **Sync policy**: appends group-commit — all records of one call are
//! written, then a single `fdatasync` makes them durable (plus a
//! directory fsync when a segment is created). `VX_WAL_SYNC=off`
//! disables syncing for test/CI speed; crash *recovery logic* is
//! unaffected, only power-loss durability is.
//!
//! The payload body is opaque to this crate — `vx-core` journals XML
//! document bytes under [`KIND_APPEND_DOC`].

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Name of the WAL subdirectory inside a store directory.
pub const WAL_DIR: &str = "wal";

/// Record kind: the body is one appended XML document (bytes).
pub const KIND_APPEND_DOC: u8 = 1;

/// Flag bit on [`KIND_APPEND_DOC`]: the document was validated with
/// `drop_unrepresentable` (comments/PIs are dropped, not errors), so
/// replay must vectorize it the same way.
pub const FLAG_DROP_UNREPRESENTABLE: u8 = 1;

/// Segment files roll when they reach this size.
const SEGMENT_ROLL_BYTES: u64 = 8 * 1024 * 1024;

/// 8-byte segment header: format name + version.
const SEGMENT_MAGIC: &[u8; 8] = b"VXWAL001";

/// Frame header: payload length + CRC.
const FRAME_HEADER: usize = 8;

/// Payload prefix: seq + kind + flags.
const PAYLOAD_PREFIX: usize = 10;

/// Errors from the WAL layer.
#[derive(Debug)]
pub enum WalError {
    Io(std::io::Error),
    /// A segment file exists but does not start with the magic header.
    BadSegment(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::BadSegment(m) => write!(f, "bad WAL segment: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, WalError>;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub seq: u64,
    pub kind: u8,
    pub flags: u8,
    pub body: Vec<u8>,
}

/// When appends become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// `fdatasync` after every append batch (the default).
    #[default]
    Data,
    /// No syncing — fast mode for tests and CI (`VX_WAL_SYNC=off`).
    Off,
}

impl SyncMode {
    /// Reads `VX_WAL_SYNC`: `off`/`0`/`false` disable syncing,
    /// anything else (or unset) keeps the durable default.
    pub fn from_env() -> SyncMode {
        match std::env::var("VX_WAL_SYNC").as_deref() {
            Ok("off") | Ok("0") | Ok("false") => SyncMode::Off,
            _ => SyncMode::Data,
        }
    }
}

/// What [`Wal::scan`] found.
#[derive(Debug, Default)]
pub struct Scan {
    /// All intact records across all segments, in sequence order.
    pub records: Vec<Record>,
    /// Segment file names in scan order.
    pub segments: Vec<String>,
    /// Total bytes across segment files.
    pub bytes: u64,
    /// Trailing bytes in the last scanned segment that do not form a
    /// whole checksummed frame (a crash mid-append), if any: the
    /// segment name and the offset the good prefix ends at.
    pub torn: Option<(String, u64)>,
    /// Bytes past the last intact frame (0 when the log ends cleanly).
    pub torn_bytes: u64,
    /// The sequence number the next appended record should get (one
    /// past the highest seen; 1 for an empty log).
    pub next_seq: u64,
}

/// What one [`Wal::append`] call did.
#[derive(Debug, Clone)]
pub struct Appended {
    pub first_seq: u64,
    pub last_seq: u64,
    /// Segment file the records were written to.
    pub segment: String,
    /// Frame bytes written (excluding any salvage truncation).
    pub bytes: u64,
    /// Whether the batch was fsync'd ([`SyncMode::Data`]).
    pub synced: bool,
}

/// A store's write-ahead log: the `wal/` subdirectory of `store_dir`.
/// The directory is created lazily on the first append; a missing
/// directory scans as an empty log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    sync: SyncMode,
}

impl Wal {
    /// Addresses the WAL of the store at `store_dir` with the sync mode
    /// from the environment ([`SyncMode::from_env`]).
    pub fn open(store_dir: &Path) -> Wal {
        Wal::with_sync(store_dir, SyncMode::from_env())
    }

    /// Addresses the WAL with an explicit sync mode.
    pub fn with_sync(store_dir: &Path, sync: SyncMode) -> Wal {
        Wal {
            dir: store_dir.join(WAL_DIR),
            sync,
        }
    }

    /// The `wal/` directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Scans every segment in order and decodes all intact records.
    /// Stops (without error) at the first torn or corrupt frame and
    /// reports it in [`Scan::torn`] — everything before it is trusted,
    /// everything after it is not.
    pub fn scan(&self) -> Result<Scan> {
        let mut scan = Scan {
            next_seq: 1,
            ..Scan::default()
        };
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Ok(scan); // no wal/ directory: empty log
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("seg-") && n.ends_with(".wal"))
            .collect();
        names.sort();
        'segments: for name in names {
            let path = self.dir.join(&name);
            let mut bytes = Vec::new();
            fs::File::open(&path)?.read_to_end(&mut bytes)?;
            scan.bytes += bytes.len() as u64;
            scan.segments.push(name.clone());
            if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
                // A header-less file is a torn segment creation.
                scan.torn_bytes = bytes.len() as u64;
                scan.torn = Some((name, 0));
                break 'segments;
            }
            let mut offset = SEGMENT_MAGIC.len();
            while offset < bytes.len() {
                match decode_frame(&bytes[offset..]) {
                    Some((record, consumed)) => {
                        scan.next_seq = scan.next_seq.max(record.seq + 1);
                        scan.records.push(record);
                        offset += consumed;
                    }
                    None => {
                        scan.torn_bytes = (bytes.len() - offset) as u64;
                        scan.torn = Some((name, offset as u64));
                        break 'segments;
                    }
                }
            }
        }
        Ok(scan)
    }

    /// Appends one batch of `(kind, flags, body)` records, assigning
    /// consecutive sequence numbers starting at
    /// `max(scan.next_seq, min_seq)` (the caller passes the manifest's
    /// `wal_applied + 1` so sequences stay monotonic across
    /// compactions, which purge the log). Truncates any torn tail left
    /// by a previous crash before writing, writes every frame, then
    /// group-commits with a single `fdatasync` under [`SyncMode::Data`].
    pub fn append(&self, min_seq: u64, entries: &[(u8, u8, &[u8])]) -> Result<Appended> {
        assert!(!entries.is_empty(), "append of zero records");
        let scan = self.scan()?;
        let first_seq = scan.next_seq.max(min_seq);
        fs::create_dir_all(&self.dir)?;

        // Pick the segment: continue the last one below the roll
        // threshold, else start a fresh one.
        let (segment, created, good_len) = match scan.segments.last() {
            Some(last) => {
                let path = self.dir.join(last);
                let len = fs::metadata(&path)?.len();
                let good = match &scan.torn {
                    Some((name, offset)) if name == last => *offset,
                    _ => len,
                };
                if good >= SEGMENT_ROLL_BYTES || good < SEGMENT_MAGIC.len() as u64 {
                    (next_segment_name(last), true, 0)
                } else {
                    (last.clone(), false, good)
                }
            }
            None => ("seg-000001.wal".to_string(), true, 0),
        };
        if let Some((torn_name, offset)) = &scan.torn {
            // Salvage: drop the unreadable tail so the log stays a
            // clean sequence of checksummed frames.
            if torn_name == &segment && !created {
                let file = fs::OpenOptions::new()
                    .write(true)
                    .open(self.dir.join(torn_name))?;
                file.set_len(*offset)?;
                emit_salvage(torn_name, *offset);
            } else if torn_name != &segment {
                // The torn segment is being abandoned (roll / headerless
                // file): truncate it too so a later scan ends cleanly.
                let file = fs::OpenOptions::new()
                    .write(true)
                    .open(self.dir.join(torn_name))?;
                file.set_len(*offset)?;
                emit_salvage(torn_name, *offset);
            }
        }

        vx_obs::crash_point("wal.before_append");
        let path = self.dir.join(&segment);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        use std::io::Seek;
        if created {
            file.set_len(0)?;
            file.write_all(SEGMENT_MAGIC)?;
        } else {
            file.seek(std::io::SeekFrom::Start(good_len))?;
        }

        let mut frames = Vec::new();
        for (i, (kind, flags, body)) in entries.iter().enumerate() {
            encode_frame(&mut frames, first_seq + i as u64, *kind, *flags, body);
        }
        if vx_obs::crash_armed("wal.torn_append") {
            // Simulated torn write: half the batch's bytes reach the
            // file, then the process dies. Replay must roll this back.
            let half = &frames[..frames.len() / 2];
            file.write_all(half)?;
            file.flush()?;
            let _ = file.sync_data();
            vx_obs::crash_point("wal.torn_append");
        }
        file.write_all(&frames)?;
        file.flush()?;
        let synced = match self.sync {
            SyncMode::Data => {
                file.sync_data()?;
                if created {
                    sync_dir(&self.dir);
                }
                true
            }
            SyncMode::Off => false,
        };
        vx_obs::crash_point("wal.after_append");
        Ok(Appended {
            first_seq,
            last_seq: first_seq + entries.len() as u64 - 1,
            segment,
            bytes: frames.len() as u64,
            synced,
        })
    }

    /// Removes every segment whose records are all `<= seq` (after a
    /// compaction folded them into a generation). Segments holding any
    /// newer record are kept whole — replay skips the applied prefix by
    /// sequence number. Returns the number of segments removed.
    pub fn purge_upto(&self, seq: u64) -> Result<u64> {
        let scan = self.scan()?;
        let mut removed = 0u64;
        for name in &scan.segments {
            let path = self.dir.join(name);
            // Re-decode just this segment to find its max seq.
            let mut bytes = Vec::new();
            match fs::File::open(&path) {
                Ok(mut f) => f.read_to_end(&mut bytes)?,
                Err(_) => continue,
            };
            let mut offset = SEGMENT_MAGIC.len().min(bytes.len());
            let mut max_seq = 0u64;
            let mut any = false;
            while offset < bytes.len() {
                match decode_frame(&bytes[offset..]) {
                    Some((record, consumed)) => {
                        max_seq = max_seq.max(record.seq);
                        any = true;
                        offset += consumed;
                    }
                    None => break,
                }
            }
            if !any || max_seq <= seq {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            sync_dir(&self.dir);
        }
        Ok(removed)
    }
}

fn next_segment_name(last: &str) -> String {
    let number: u64 = last
        .strip_prefix("seg-")
        .and_then(|s| s.strip_suffix(".wal"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    format!("seg-{:06}.wal", number + 1)
}

fn emit_salvage(segment: &str, offset: u64) {
    if vx_obs::log_enabled() {
        vx_obs::event(
            "wal.salvage",
            &[
                ("segment", vx_obs::Value::Str(segment)),
                ("truncated_to", vx_obs::Value::U64(offset)),
            ],
        );
    }
}

/// Best-effort directory fsync (makes renames/creates durable on
/// filesystems that need it; ignored where unsupported).
pub fn sync_dir(dir: &Path) {
    if let Ok(file) = fs::File::open(dir) {
        let _ = file.sync_all();
    }
}

fn encode_frame(out: &mut Vec<u8>, seq: u64, kind: u8, flags: u8, body: &[u8]) {
    let payload_len = PAYLOAD_PREFIX + body.len();
    let start = out.len();
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(kind);
    out.push(flags);
    out.extend_from_slice(body);
    let crc = crc32(&out[start + FRAME_HEADER..]);
    out[start + 4..start + FRAME_HEADER].copy_from_slice(&crc.to_le_bytes());
}

/// Decodes one frame from the front of `bytes`. `None` means the bytes
/// do not hold a whole intact frame (torn tail or corruption).
fn decode_frame(bytes: &[u8]) -> Option<(Record, usize)> {
    if bytes.len() < FRAME_HEADER {
        return None;
    }
    let payload_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if payload_len < PAYLOAD_PREFIX || bytes.len() < FRAME_HEADER + payload_len {
        return None;
    }
    let payload = &bytes[FRAME_HEADER..FRAME_HEADER + payload_len];
    if crc32(payload) != crc {
        return None;
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let record = Record {
        seq,
        kind: payload[8],
        flags: payload[9],
        body: payload[PAYLOAD_PREFIX..].to_vec(),
    };
    Some((record, FRAME_HEADER + payload_len))
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 / zlib polynomial), table-driven
// ---------------------------------------------------------------------

/// CRC-32 of `bytes` with the IEEE polynomial (the `cksum`/zlib one).
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    });
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vx-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wal(dir: &Path) -> Wal {
        Wal::with_sync(dir, SyncMode::Off)
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vectors for the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = temp_store("roundtrip");
        let w = wal(&dir);
        let a = w
            .append(
                1,
                &[(KIND_APPEND_DOC, 0, b"<a/>"), (KIND_APPEND_DOC, 1, b"<b/>")],
            )
            .unwrap();
        assert_eq!((a.first_seq, a.last_seq), (1, 2));
        let b = w.append(1, &[(KIND_APPEND_DOC, 0, b"<c/>")]).unwrap();
        assert_eq!(b.first_seq, 3);

        let scan = w.scan().unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.next_seq, 4);
        assert!(scan.torn.is_none());
        assert_eq!(scan.records[0].body, b"<a/>");
        assert_eq!(scan.records[1].flags, 1);
        assert_eq!(scan.records[2].seq, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn min_seq_keeps_sequences_monotonic_after_purge() {
        let dir = temp_store("minseq");
        let w = wal(&dir);
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<a/>")]).unwrap();
        w.purge_upto(1).unwrap();
        assert_eq!(w.scan().unwrap().records.len(), 0);
        // After purging seq 1, the manifest says wal_applied = 1; the
        // next append must not reuse sequence 1.
        let a = w.append(2, &[(KIND_APPEND_DOC, 0, b"<b/>")]).unwrap();
        assert_eq!(a.first_seq, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated_and_salvaged() {
        let dir = temp_store("torn");
        let w = wal(&dir);
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<a/>")]).unwrap();
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<bb/>")]).unwrap();
        // Tear the tail: chop 3 bytes off the segment.
        let seg = dir.join(WAL_DIR).join("seg-000001.wal");
        let len = fs::metadata(&seg).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let scan = w.scan().unwrap();
        assert_eq!(scan.records.len(), 1, "torn record must be dropped");
        assert!(scan.torn.is_some());
        // next_seq counts only intact records…
        assert_eq!(scan.next_seq, 2);
        // …and the next append truncates the garbage then continues.
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<c/>")]).unwrap();
        let scan = w.scan().unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].body, b"<c/>");
        assert_eq!(scan.records[1].seq, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let dir = temp_store("crc");
        let w = wal(&dir);
        w.append(
            1,
            &[(KIND_APPEND_DOC, 0, b"<a/>"), (KIND_APPEND_DOC, 0, b"<b/>")],
        )
        .unwrap();
        let seg = dir.join(WAL_DIR).join("seg-000001.wal");
        let mut bytes = fs::read(&seg).unwrap();
        // Flip a byte inside the first record's body.
        let hit = SEGMENT_MAGIC.len() + FRAME_HEADER + PAYLOAD_PREFIX;
        bytes[hit] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let scan = w.scan().unwrap();
        assert_eq!(scan.records.len(), 0, "corruption invalidates the frame");
        assert_eq!(scan.torn.as_ref().unwrap().1, SEGMENT_MAGIC.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn purge_removes_applied_segments_only() {
        let dir = temp_store("purge");
        let w = wal(&dir);
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<a/>")]).unwrap();
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<b/>")]).unwrap();
        // Both records are in one segment holding seqs {1, 2}: purging
        // up to 1 must keep it (seq 2 is unapplied)…
        assert_eq!(w.purge_upto(1).unwrap(), 0);
        assert_eq!(w.scan().unwrap().records.len(), 2);
        // …and purging up to 2 removes it.
        assert_eq!(w.purge_upto(2).unwrap(), 1);
        assert_eq!(w.scan().unwrap().records.len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_log_scans_clean() {
        let dir = temp_store("empty");
        let scan = wal(&dir).scan().unwrap();
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.next_seq, 1);
        assert!(scan.torn.is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
