//! `vx-wal` — a checksummed, fsync'd write-ahead segment log.
//!
//! The durability layer under the store's append path (DESIGN.md §11).
//! A WAL lives in a `wal/` subdirectory of a store and holds a sequence
//! of **records**, each journaling one appended document, spread over
//! numbered **segment** files:
//!
//! ```text
//! wal/seg-000001.wal        8-byte magic, then CRC-framed records
//! wal/seg-000002.wal        …rolled to when a segment passes 8 MiB
//! ```
//!
//! Each record is framed as
//!
//! ```text
//! [payload_len: u32 LE][crc32: u32 LE][payload]
//! payload = [seq: u64 LE][kind: u8][flags: u8][body…]
//! ```
//!
//! with `crc32` (IEEE/zlib polynomial) taken over the whole payload.
//! `seq` is a store-wide monotonically increasing record number: the
//! generation manifest records the last sequence folded into the
//! on-disk generation, so replay after a compaction-then-crash never
//! applies a record twice.
//!
//! **Torn-tail tolerance**: a crash mid-append can leave a partial
//! frame at the end of a segment, or a zero-length / header-less
//! segment file from a crash mid-creation. [`Wal::scan`] skips
//! zero-length segments entirely (they can hold no acknowledged
//! record), drops unreadable tail bytes at the last good frame, and
//! reports both; every record it returns is intact (each is guarded by
//! its own checksum). The next [`Wal::append`] deletes torn-creation
//! files and truncates torn tails before writing, so the log never
//! accumulates garbage between valid records — and fresh segments are
//! always named past every file that ever existed, so a salvaged name
//! is never reused over durable data.
//!
//! Tolerance is strictly for crash shapes: an *intact* frame after a
//! bad one, or a sequence gap where a dropped tail is followed by more
//! records, cannot come from a torn write and fails the scan with
//! [`WalError::Corrupt`] instead of silently losing data.
//!
//! **Sync policy**: appends group-commit — all records of one call are
//! written, then a single `fdatasync` makes them durable (plus a
//! directory fsync when a segment is created). `VX_WAL_SYNC=off`
//! disables syncing for test/CI speed; crash *recovery logic* is
//! unaffected, only power-loss durability is.
//!
//! The payload body is opaque to this crate — `vx-core` journals XML
//! document bytes under [`KIND_APPEND_DOC`].

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Name of the WAL subdirectory inside a store directory.
pub const WAL_DIR: &str = "wal";

/// Record kind: the body is one appended XML document (bytes).
pub const KIND_APPEND_DOC: u8 = 1;

/// Flag bit on [`KIND_APPEND_DOC`]: the document was validated with
/// `drop_unrepresentable` (comments/PIs are dropped, not errors), so
/// replay must vectorize it the same way.
pub const FLAG_DROP_UNREPRESENTABLE: u8 = 1;

/// Segment files roll when they reach this size.
const SEGMENT_ROLL_BYTES: u64 = 8 * 1024 * 1024;

/// 8-byte segment header: format name + version.
const SEGMENT_MAGIC: &[u8; 8] = b"VXWAL001";

/// Frame header: payload length + CRC.
const FRAME_HEADER: usize = 8;

/// Payload prefix: seq + kind + flags.
const PAYLOAD_PREFIX: usize = 10;

/// Errors from the WAL layer.
#[derive(Debug)]
pub enum WalError {
    Io(std::io::Error),
    /// A segment file exists but does not start with the magic header.
    BadSegment(String),
    /// Readable data exists past a bad frame — real corruption in the
    /// middle of the log, not a crash-torn tail. Replaying around it
    /// would silently lose acknowledged records, so the scan fails.
    Corrupt(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::BadSegment(m) => write!(f, "bad WAL segment: {m}"),
            WalError::Corrupt(m) => write!(f, "corrupt WAL: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, WalError>;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub seq: u64,
    pub kind: u8,
    pub flags: u8,
    pub body: Vec<u8>,
}

/// When appends become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// `fdatasync` after every append batch (the default).
    #[default]
    Data,
    /// No syncing — fast mode for tests and CI (`VX_WAL_SYNC=off`).
    Off,
}

impl SyncMode {
    /// Reads `VX_WAL_SYNC`: `off`/`0`/`false` disable syncing,
    /// anything else (or unset) keeps the durable default.
    pub fn from_env() -> SyncMode {
        match std::env::var("VX_WAL_SYNC").as_deref() {
            Ok("off") | Ok("0") | Ok("false") => SyncMode::Off,
            _ => SyncMode::Data,
        }
    }
}

/// What [`Wal::scan`] found.
#[derive(Debug, Default)]
pub struct Scan {
    /// All intact records across all segments, in sequence order.
    pub records: Vec<Record>,
    /// Non-empty segment file names in scan order.
    pub segments: Vec<String>,
    /// Zero-length segment files: torn segment creations (or unlinks
    /// that never persisted). They hold no data, are skipped by the
    /// scan, and are deleted by the next append or purge.
    pub empty_segments: Vec<String>,
    /// Total bytes across segment files.
    pub bytes: u64,
    /// The first salvageable tear (same shape as the [`Scan::salvage`]
    /// entries), if any — kept for reporting convenience.
    pub torn: Option<(String, u64)>,
    /// Every segment with unreadable trailing bytes, as
    /// `(name, good_end_offset)`: the next append truncates the segment
    /// to the offset, or deletes it outright when the offset precedes
    /// the end of the magic header (a torn creation).
    pub salvage: Vec<(String, u64)>,
    /// Bytes past the last intact frame (0 when the log ends cleanly).
    pub torn_bytes: u64,
    /// The sequence number the next appended record should get (one
    /// past the highest seen; 1 for an empty log).
    pub next_seq: u64,
}

/// What one [`Wal::append`] call did.
#[derive(Debug, Clone)]
pub struct Appended {
    pub first_seq: u64,
    pub last_seq: u64,
    /// Segment file the records were written to.
    pub segment: String,
    /// Frame bytes written (excluding any salvage truncation).
    pub bytes: u64,
    /// Whether the batch was fsync'd ([`SyncMode::Data`]).
    pub synced: bool,
}

/// A store's write-ahead log: the `wal/` subdirectory of `store_dir`.
/// The directory is created lazily on the first append; a missing
/// directory scans as an empty log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    sync: SyncMode,
}

impl Wal {
    /// Addresses the WAL of the store at `store_dir` with the sync mode
    /// from the environment ([`SyncMode::from_env`]).
    pub fn open(store_dir: &Path) -> Wal {
        Wal::with_sync(store_dir, SyncMode::from_env())
    }

    /// Addresses the WAL with an explicit sync mode.
    pub fn with_sync(store_dir: &Path, sync: SyncMode) -> Wal {
        Wal {
            dir: store_dir.join(WAL_DIR),
            sync,
        }
    }

    /// The `wal/` directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Scans every segment in numeric order and decodes all intact
    /// records. Crash shapes are tolerated without error — zero-length
    /// segments are skipped, unreadable tail bytes are dropped at the
    /// last good frame and reported in [`Scan::salvage`] — but damage a
    /// torn write cannot produce (an intact frame after a bad one, a
    /// header-less segment shadowing later ones, or a sequence gap
    /// after a dropped tail) fails with [`WalError::Corrupt`] rather
    /// than silently losing acknowledged records.
    pub fn scan(&self) -> Result<Scan> {
        let mut scan = Scan {
            next_seq: 1,
            ..Scan::default()
        };
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Ok(scan); // no wal/ directory: empty log
        };
        let mut names: Vec<(u64, String)> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter_map(|n| segment_number(&n).map(|number| (number, n)))
            .collect();
        names.sort();
        let mut segments: Vec<(String, Vec<u8>)> = Vec::new();
        for (_, name) in names {
            let mut bytes = Vec::new();
            fs::File::open(self.dir.join(&name))?.read_to_end(&mut bytes)?;
            if bytes.is_empty() {
                scan.empty_segments.push(name);
                continue;
            }
            scan.bytes += bytes.len() as u64;
            segments.push((name, bytes));
        }
        // Set after a tolerated mid-log tear: the next decoded record
        // must continue the sequence exactly, else an acknowledged
        // record was lost and the tear was not a crash artifact.
        let mut expect_seq: Option<u64> = None;
        let segment_count = segments.len();
        for (index, (name, bytes)) in segments.into_iter().enumerate() {
            let is_last = index + 1 == segment_count;
            scan.segments.push(name.clone());
            if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
                // A header-less file is a torn segment creation — but
                // only ever as the newest segment; anywhere else it
                // would shadow durable data behind it.
                if !is_last {
                    return Err(WalError::Corrupt(format!(
                        "segment {name} has no valid header but later segments exist"
                    )));
                }
                scan.torn_bytes += bytes.len() as u64;
                scan.salvage.push((name, 0));
                break;
            }
            let mut offset = SEGMENT_MAGIC.len();
            while offset < bytes.len() {
                match decode_frame(&bytes[offset..]) {
                    Some((record, consumed)) => {
                        if let Some(expected) = expect_seq.take() {
                            if record.seq != expected {
                                return Err(WalError::Corrupt(format!(
                                    "segment {name}: sequence {} follows a dropped tail \
                                     (expected {expected}) — records were lost",
                                    record.seq
                                )));
                            }
                        }
                        scan.next_seq = scan.next_seq.max(record.seq + 1);
                        scan.records.push(record);
                        offset += consumed;
                    }
                    None => {
                        if intact_frame_after(&bytes[offset..]) {
                            return Err(WalError::Corrupt(format!(
                                "segment {name}: intact frames follow a bad frame at \
                                 offset {offset}"
                            )));
                        }
                        scan.torn_bytes += (bytes.len() - offset) as u64;
                        scan.salvage.push((name.clone(), offset as u64));
                        if !is_last {
                            // An abandoned tail whose truncation never
                            // persisted; later segments carry the
                            // re-appended records — verified above by
                            // sequence continuity.
                            expect_seq = Some(scan.next_seq);
                        }
                        break;
                    }
                }
            }
        }
        scan.torn = scan.salvage.first().cloned();
        Ok(scan)
    }

    /// Appends one batch of `(kind, flags, body)` records, assigning
    /// consecutive sequence numbers starting at
    /// `max(scan.next_seq, min_seq)` (the caller passes the manifest's
    /// `wal_applied + 1` so sequences stay monotonic across
    /// compactions, which purge the log). Salvages crash leftovers
    /// first — deletes zero-length and header-less torn-creation
    /// segments, truncates torn tails — then writes every frame and
    /// group-commits with a single `fdatasync` under [`SyncMode::Data`].
    pub fn append(&self, min_seq: u64, entries: &[(u8, u8, &[u8])]) -> Result<Appended> {
        assert!(!entries.is_empty(), "append of zero records");
        let scan = self.scan()?;
        let first_seq = scan.next_seq.max(min_seq);
        fs::create_dir_all(&self.dir)?;

        // Salvage: zero-length files are torn creations holding no
        // data; header-less files likewise hold nothing decodable.
        // Both are *deleted* — truncating them in place would leave a
        // file that shadows every later segment on the next scan.
        // Segments with a readable prefix are truncated to it.
        for name in &scan.empty_segments {
            let _ = fs::remove_file(self.dir.join(name));
            emit_salvage(name, 0);
        }
        for (name, offset) in &scan.salvage {
            let path = self.dir.join(name);
            if *offset < SEGMENT_MAGIC.len() as u64 {
                let _ = fs::remove_file(&path);
                emit_salvage(name, 0);
            } else {
                let file = fs::OpenOptions::new().write(true).open(&path)?;
                file.set_len(*offset)?;
                emit_salvage(name, *offset);
            }
        }

        // Pick the segment: continue the last data segment while it
        // keeps a valid header and room below the roll threshold, else
        // start a fresh one named past every file that existed — never
        // reuse the name of a segment salvaged away above.
        let (segment, created, good_len) = {
            let continued = scan.segments.last().and_then(|last| {
                let good = match scan.salvage.iter().find(|(name, _)| name == last) {
                    Some((_, offset)) => *offset,
                    None => fs::metadata(self.dir.join(last)).ok()?.len(),
                };
                let fits = good >= SEGMENT_MAGIC.len() as u64 && good < SEGMENT_ROLL_BYTES;
                fits.then(|| (last.clone(), good))
            });
            match continued {
                Some((name, good)) => (name, false, good),
                None => {
                    let highest = scan
                        .segments
                        .iter()
                        .chain(scan.empty_segments.iter())
                        .filter_map(|name| segment_number(name))
                        .max()
                        .unwrap_or(0);
                    (format!("seg-{:06}.wal", highest + 1), true, 0)
                }
            }
        };

        vx_obs::crash_point("wal.before_append");
        let path = self.dir.join(&segment);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        use std::io::Seek;
        if created {
            file.set_len(0)?;
            file.write_all(SEGMENT_MAGIC)?;
        } else {
            file.seek(std::io::SeekFrom::Start(good_len))?;
        }

        let mut frames = Vec::new();
        for (i, (kind, flags, body)) in entries.iter().enumerate() {
            encode_frame(&mut frames, first_seq + i as u64, *kind, *flags, body);
        }
        if vx_obs::crash_armed("wal.torn_append") {
            // Simulated torn write: half the batch's bytes reach the
            // file, then the process dies. Replay must roll this back.
            let half = &frames[..frames.len() / 2];
            file.write_all(half)?;
            file.flush()?;
            let _ = file.sync_data();
            vx_obs::crash_point("wal.torn_append");
        }
        file.write_all(&frames)?;
        file.flush()?;
        let synced = match self.sync {
            SyncMode::Data => {
                file.sync_data()?;
                if created {
                    sync_dir(&self.dir);
                }
                true
            }
            SyncMode::Off => false,
        };
        vx_obs::crash_point("wal.after_append");
        Ok(Appended {
            first_seq,
            last_seq: first_seq + entries.len() as u64 - 1,
            segment,
            bytes: frames.len() as u64,
            synced,
        })
    }

    /// Removes every segment whose records are all `<= seq` (after a
    /// compaction folded them into a generation), plus zero-length
    /// torn-creation files. Segments holding any newer record are kept
    /// whole — replay skips the applied prefix by sequence number.
    /// Returns the number of segments removed.
    pub fn purge_upto(&self, seq: u64) -> Result<u64> {
        let scan = self.scan()?;
        let mut removed = 0u64;
        for name in &scan.empty_segments {
            if fs::remove_file(self.dir.join(name)).is_ok() {
                removed += 1;
            }
        }
        for name in &scan.segments {
            let path = self.dir.join(name);
            // Re-decode just this segment to find its max seq.
            let mut bytes = Vec::new();
            match fs::File::open(&path) {
                Ok(mut f) => f.read_to_end(&mut bytes)?,
                Err(_) => continue,
            };
            let mut offset = SEGMENT_MAGIC.len().min(bytes.len());
            let mut max_seq = 0u64;
            let mut any = false;
            while offset < bytes.len() {
                match decode_frame(&bytes[offset..]) {
                    Some((record, consumed)) => {
                        max_seq = max_seq.max(record.seq);
                        any = true;
                        offset += consumed;
                    }
                    None => break,
                }
            }
            if !any || max_seq <= seq {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            sync_dir(&self.dir);
        }
        Ok(removed)
    }
}

/// Parses the number out of a `seg-NNNNNN.wal` file name. Segments are
/// ordered by this (not lexicographically: past `seg-999999` the name
/// grows a digit and would sort before shorter names).
fn segment_number(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")
        .and_then(|s| s.strip_suffix(".wal"))
        .and_then(|s| s.parse().ok())
}

/// Whether any byte offset past a bad frame decodes as an intact frame.
/// A torn write leaves nothing readable after the tear, so a hit means
/// real corruption. Only runs on the already-failed path.
fn intact_frame_after(bytes: &[u8]) -> bool {
    (1..bytes.len()).any(|start| decode_frame(&bytes[start..]).is_some())
}

fn emit_salvage(segment: &str, offset: u64) {
    if vx_obs::log_enabled() {
        vx_obs::event(
            "wal.salvage",
            &[
                ("segment", vx_obs::Value::Str(segment)),
                ("truncated_to", vx_obs::Value::U64(offset)),
            ],
        );
    }
}

/// Best-effort directory fsync (makes renames/creates durable on
/// filesystems that need it; ignored where unsupported).
pub fn sync_dir(dir: &Path) {
    if let Ok(file) = fs::File::open(dir) {
        let _ = file.sync_all();
    }
}

fn encode_frame(out: &mut Vec<u8>, seq: u64, kind: u8, flags: u8, body: &[u8]) {
    let payload_len = PAYLOAD_PREFIX + body.len();
    let start = out.len();
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(kind);
    out.push(flags);
    out.extend_from_slice(body);
    let crc = crc32(&out[start + FRAME_HEADER..]);
    out[start + 4..start + FRAME_HEADER].copy_from_slice(&crc.to_le_bytes());
}

/// Decodes one frame from the front of `bytes`. `None` means the bytes
/// do not hold a whole intact frame (torn tail or corruption).
fn decode_frame(bytes: &[u8]) -> Option<(Record, usize)> {
    if bytes.len() < FRAME_HEADER {
        return None;
    }
    let payload_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if payload_len < PAYLOAD_PREFIX || bytes.len() < FRAME_HEADER + payload_len {
        return None;
    }
    let payload = &bytes[FRAME_HEADER..FRAME_HEADER + payload_len];
    if crc32(payload) != crc {
        return None;
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let record = Record {
        seq,
        kind: payload[8],
        flags: payload[9],
        body: payload[PAYLOAD_PREFIX..].to_vec(),
    };
    Some((record, FRAME_HEADER + payload_len))
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 / zlib polynomial), table-driven
// ---------------------------------------------------------------------

/// CRC-32 of `bytes` with the IEEE polynomial (the `cksum`/zlib one).
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    });
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vx-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wal(dir: &Path) -> Wal {
        Wal::with_sync(dir, SyncMode::Off)
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vectors for the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = temp_store("roundtrip");
        let w = wal(&dir);
        let a = w
            .append(
                1,
                &[(KIND_APPEND_DOC, 0, b"<a/>"), (KIND_APPEND_DOC, 1, b"<b/>")],
            )
            .unwrap();
        assert_eq!((a.first_seq, a.last_seq), (1, 2));
        let b = w.append(1, &[(KIND_APPEND_DOC, 0, b"<c/>")]).unwrap();
        assert_eq!(b.first_seq, 3);

        let scan = w.scan().unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.next_seq, 4);
        assert!(scan.torn.is_none());
        assert_eq!(scan.records[0].body, b"<a/>");
        assert_eq!(scan.records[1].flags, 1);
        assert_eq!(scan.records[2].seq, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn min_seq_keeps_sequences_monotonic_after_purge() {
        let dir = temp_store("minseq");
        let w = wal(&dir);
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<a/>")]).unwrap();
        w.purge_upto(1).unwrap();
        assert_eq!(w.scan().unwrap().records.len(), 0);
        // After purging seq 1, the manifest says wal_applied = 1; the
        // next append must not reuse sequence 1.
        let a = w.append(2, &[(KIND_APPEND_DOC, 0, b"<b/>")]).unwrap();
        assert_eq!(a.first_seq, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated_and_salvaged() {
        let dir = temp_store("torn");
        let w = wal(&dir);
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<a/>")]).unwrap();
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<bb/>")]).unwrap();
        // Tear the tail: chop 3 bytes off the segment.
        let seg = dir.join(WAL_DIR).join("seg-000001.wal");
        let len = fs::metadata(&seg).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let scan = w.scan().unwrap();
        assert_eq!(scan.records.len(), 1, "torn record must be dropped");
        assert!(scan.torn.is_some());
        // next_seq counts only intact records…
        assert_eq!(scan.next_seq, 2);
        // …and the next append truncates the garbage then continues.
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<c/>")]).unwrap();
        let scan = w.scan().unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].body, b"<c/>");
        assert_eq!(scan.records[1].seq, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Builds a segment file by hand: magic, one `<x/>` record per seq,
    /// then `trailing` garbage bytes.
    fn write_segment(dir: &Path, name: &str, seqs: &[u64], trailing: &[u8]) {
        let wal_dir = dir.join(WAL_DIR);
        fs::create_dir_all(&wal_dir).unwrap();
        let mut bytes = SEGMENT_MAGIC.to_vec();
        for &seq in seqs {
            encode_frame(&mut bytes, seq, KIND_APPEND_DOC, 0, b"<x/>");
        }
        bytes.extend_from_slice(trailing);
        fs::write(wal_dir.join(name), bytes).unwrap();
    }

    #[test]
    fn corrupt_frame_with_intact_frames_after_fails_the_scan() {
        let dir = temp_store("crc");
        let w = wal(&dir);
        w.append(
            1,
            &[(KIND_APPEND_DOC, 0, b"<a/>"), (KIND_APPEND_DOC, 0, b"<b/>")],
        )
        .unwrap();
        let seg = dir.join(WAL_DIR).join("seg-000001.wal");
        let mut bytes = fs::read(&seg).unwrap();
        // Flip a byte inside the first record's body: the second record
        // stays readable, so this is mid-log corruption, not a torn
        // tail — DESIGN.md §11 says the scan must fail, not truncate.
        let hit = SEGMENT_MAGIC.len() + FRAME_HEADER + PAYLOAD_PREFIX;
        bytes[hit] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(w.scan(), Err(WalError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_last_frame_alone_is_a_torn_tail() {
        let dir = temp_store("crc-tail");
        let w = wal(&dir);
        w.append(
            1,
            &[(KIND_APPEND_DOC, 0, b"<a/>"), (KIND_APPEND_DOC, 0, b"<b/>")],
        )
        .unwrap();
        let seg = dir.join(WAL_DIR).join("seg-000001.wal");
        let mut bytes = fs::read(&seg).unwrap();
        // Damage the *last* frame: nothing readable follows, so this is
        // indistinguishable from a torn write and stays tolerated.
        let hit = bytes.len() - 1;
        bytes[hit] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let scan = w.scan().unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_length_segment_does_not_shadow_later_segments() {
        let dir = temp_store("shadow");
        let w = wal(&dir);
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<a/>")]).unwrap();
        // Crash shape: seg-2's creation tore (zero bytes), but seg-3
        // holds an acknowledged, durable record.
        fs::write(dir.join(WAL_DIR).join("seg-000002.wal"), b"").unwrap();
        write_segment(&dir, "seg-000003.wal", &[2], b"");

        let scan = w.scan().unwrap();
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            [1, 2],
            "records behind the empty segment must stay visible"
        );
        assert_eq!(scan.empty_segments, ["seg-000002.wal"]);
        assert!(scan.torn.is_none());

        // The next append must not overwrite seg-3: it continues it and
        // deletes the empty leftover.
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<c/>")]).unwrap();
        assert!(!dir.join(WAL_DIR).join("seg-000002.wal").exists());
        let scan = w.scan().unwrap();
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn headerless_torn_creation_is_deleted_not_truncated() {
        let dir = temp_store("headerless");
        let w = wal(&dir);
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<a/>")]).unwrap();
        // Crash shape: seg-2 got a few bytes of its header, no more.
        fs::write(dir.join(WAL_DIR).join("seg-000002.wal"), b"VXW").unwrap();
        let scan = w.scan().unwrap();
        assert_eq!(scan.torn, Some(("seg-000002.wal".to_string(), 0)));
        assert_eq!(scan.records.len(), 1);

        // The append deletes the torn creation (leaving it truncated to
        // zero bytes would shadow every later segment) and rolls past
        // its name.
        let a = w.append(1, &[(KIND_APPEND_DOC, 0, b"<b/>")]).unwrap();
        assert!(!dir.join(WAL_DIR).join("seg-000002.wal").exists());
        assert_eq!(a.segment, "seg-000003.wal");
        let scan = w.scan().unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            [1, 2]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_scan_in_numeric_not_lexicographic_order() {
        let dir = temp_store("numeric");
        // "seg-1000000.wal" sorts lexicographically *before*
        // "seg-999999.wal"; the scan must order numerically.
        write_segment(&dir, "seg-999999.wal", &[1], b"");
        write_segment(&dir, "seg-1000000.wal", &[2], b"");
        let w = wal(&dir);
        let scan = w.scan().unwrap();
        assert_eq!(scan.segments, ["seg-999999.wal", "seg-1000000.wal"]);
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            [1, 2]
        );
        assert_eq!(scan.next_seq, 3);
        let a = w.append(1, &[(KIND_APPEND_DOC, 0, b"<c/>")]).unwrap();
        assert_eq!(a.segment, "seg-1000000.wal", "continues the true last");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_tear_tolerated_only_with_sequence_continuity() {
        // An abandoned torn tail whose truncation never persisted: the
        // re-appended records continue the sequence in the next segment.
        let dir = temp_store("midtear");
        write_segment(&dir, "seg-000001.wal", &[1], &[0xFF; 5]);
        write_segment(&dir, "seg-000002.wal", &[2, 3], b"");
        let scan = wal(&dir).scan().unwrap();
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        assert_eq!(scan.torn, Some(("seg-000001.wal".to_string(), 8 + 22)));
        assert_eq!(scan.torn_bytes, 5);
        let _ = fs::remove_dir_all(&dir);

        // A sequence gap after the dropped tail means an acknowledged
        // record was destroyed: that is corruption, not a crash shape.
        let dir = temp_store("midtear-gap");
        write_segment(&dir, "seg-000001.wal", &[1], &[0xFF; 5]);
        write_segment(&dir, "seg-000002.wal", &[3], b"");
        assert!(matches!(wal(&dir).scan(), Err(WalError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn purge_removes_applied_segments_only() {
        let dir = temp_store("purge");
        let w = wal(&dir);
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<a/>")]).unwrap();
        w.append(1, &[(KIND_APPEND_DOC, 0, b"<b/>")]).unwrap();
        // Both records are in one segment holding seqs {1, 2}: purging
        // up to 1 must keep it (seq 2 is unapplied)…
        assert_eq!(w.purge_upto(1).unwrap(), 0);
        assert_eq!(w.scan().unwrap().records.len(), 2);
        // …and purging up to 2 removes it.
        assert_eq!(w.purge_upto(2).unwrap(), 1);
        assert_eq!(w.scan().unwrap().records.len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_log_scans_clean() {
        let dir = temp_store("empty");
        let scan = wal(&dir).scan().unwrap();
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.next_seq, 1);
        assert!(scan.torn.is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
