//! Profile-accuracy tests: the instrumented evaluator must tell the
//! truth about where time goes, and instrumentation must not change
//! answers.
//!
//! The attribution check reproduces the paper's SQ3 observation at test
//! scale: a self-join over SkyServer `PhotoObj` rows spends its time
//! enumerating join tuples, not walking the skeleton — *when the store
//! has no value index* (in-memory documents, the pre-0.3 world). The
//! companion check below shows the cliff gone once a version-3 store
//! gives the planner sorted runs. `VX_SQ3_ROWS` scales the corpus
//! (default 2000 — sized for debug-build test runs).

use vx_engine::{Query, QueryProfile, RunOptions};

const SQ3: &str = r#"for $a in doc("ss")//PhotoObj, $b in doc("ss")//PhotoObj
   where $a/objID = $b/objID return $b/ra"#;

fn skyserver_vec(rows: usize) -> vx_core::VecDoc {
    vx_core::vectorize(&vx_data::skyserver(42, rows)).unwrap()
}

fn profiled() -> RunOptions {
    RunOptions {
        profile: true,
        ..RunOptions::default()
    }
}

fn run_sq3(rows: usize) -> (Vec<String>, QueryProfile) {
    let doc = skyserver_vec(rows);
    let q = Query::new(SQ3).unwrap();
    let outcome = q.run_with(&doc, &profiled()).unwrap();
    (
        outcome.output.strings(),
        outcome.profile.expect("profile requested"),
    )
}

/// Without an index, SQ3's cost is the join: build + tuple enumeration +
/// output account for at least 80% of the engine's measured time, and
/// every row joins with itself exactly once (objID is a key). In-memory
/// documents carry no persistent run, so the planner hash-joins — this
/// is the pre-0.3 cliff, preserved as the baseline.
#[test]
fn sq3_time_is_attributed_to_the_join() {
    let rows = std::env::var("VX_SQ3_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let (values, profile) = run_sq3(rows);
    assert_eq!(values.len(), rows, "objID is a key: one tuple per row");

    let join_secs = profile.step_secs("join-build")
        + profile.step_secs("enumerate")
        + profile.step_secs("output");
    let total = profile.steps_total();
    assert!(total > 0.0);
    assert!(
        join_secs >= 0.8 * total,
        "join phases {join_secs:.4}s of {total:.4}s ({:.1}%) — expected ≥ 80%",
        100.0 * join_secs / total
    );

    // The probe counters agree with the cardinality.
    assert_eq!(profile.counters.get("tuples.emitted"), rows as u64);
    assert!(profile.counters.get("join.probe.hits") >= rows as u64);
}

/// After the fix: over a `Compaction::Auto` store the `objID` vector
/// carries a version-3 value index, the planner sort-merges the
/// self-join, and the join phases fall under half the measured time —
/// the quadratic candidate scan is gone.
#[test]
fn sq3_join_share_drops_under_half_with_value_index() {
    use vx_core::{Compaction, Store, StoreHandle};

    let rows = std::env::var("VX_SQ3_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let dir = std::env::temp_dir().join(format!("vx-profile-ss-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Store::save(&dir.join("ss"), &skyserver_vec(rows), Compaction::Auto).unwrap();
    let handle = StoreHandle::open(&dir.join("ss")).unwrap();

    let q = Query::new(SQ3).unwrap();
    let outcome = q.run_with(&handle, &profiled()).unwrap();
    let profile = outcome.profile.expect("profile requested");
    assert_eq!(
        outcome.output.strings().len(),
        rows,
        "objID is a key: one tuple per row"
    );

    let join_secs = profile.step_secs("join-build")
        + profile.step_secs("enumerate")
        + profile.step_secs("output");
    let total = profile.steps_total();
    assert!(total > 0.0);
    assert!(
        join_secs < 0.5 * total,
        "join phases {join_secs:.4}s of {total:.4}s ({:.1}%) — expected < 50% with the index",
        100.0 * join_secs / total
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Instrumentation is observation only: profiled and unprofiled runs
/// return identical output, and the profile's bookkeeping is coherent
/// (steps tile the total, variables carry the match cardinalities).
#[test]
fn profiling_does_not_change_answers() {
    let doc = skyserver_vec(300);
    let q = Query::new(SQ3).unwrap();
    let plain = q.run_with(&doc, &RunOptions::default()).unwrap().output;
    let outcome = q.run_with(&doc, &profiled()).unwrap();
    let profile = outcome.profile.expect("profile requested");
    assert_eq!(plain.strings(), outcome.output.strings());

    let sum = profile.steps_total();
    assert!(
        (profile.total_secs - sum).abs() <= 0.05 * profile.total_secs + 1e-4,
        "steps sum {sum} vs total {}",
        profile.total_secs
    );
    // Both pattern variables matched every PhotoObj row.
    let occs: Vec<u64> = profile.variables.iter().map(|v| v.occurrences).collect();
    assert!(occs.contains(&300), "variables: {:?}", profile.variables);
}

/// The structural self-index at work on TreeBank — CI's sublinearity
/// guard invokes this test by name. A selective descendant pattern
/// (`//SBAR`, plus a `//PRP` reference) lets the containment map rule
/// whole shared subtrees out, so with the index on the walk skips nodes
/// (`struct.nodes.skipped` > 0) and visits strictly fewer skeleton
/// nodes than the NFA fallback — with byte-identical answers. Counters
/// are plain sums over a deterministic walk, so the comparison is
/// exact, not a timing heuristic.
#[test]
fn treebank_struct_index_prunes_skeleton_visits() {
    let vdoc = vx_core::vectorize(&vx_data::treebank(9, 150)).unwrap();
    let q = Query::new(r#"for $s in doc("tb")//SBAR return $s//PRP"#).unwrap();
    let run = |on: bool| {
        let options = RunOptions {
            profile: true,
            struct_index: Some(on),
            ..RunOptions::default()
        };
        let outcome = q.run_with(&vdoc, &options).unwrap();
        (
            outcome.output.strings(),
            outcome.profile.expect("profile requested"),
        )
    };
    let (values_on, profile_on) = run(true);
    let (values_off, profile_off) = run(false);
    assert_eq!(values_on, values_off, "pruning changed the answer");
    assert!(!values_on.is_empty(), "degenerate corpus for the anchor");

    // Index on: subtrees were provably skipped, and the walk shrank.
    assert!(profile_on.counters.get("struct.summary.hits") > 0);
    assert!(profile_on.counters.get("struct.nodes.skipped") > 0);
    let visits_on = profile_on.counters.get("skeleton.visits");
    let visits_off = profile_off.counters.get("skeleton.visits");
    assert!(
        visits_on < visits_off,
        "index on visited {visits_on} skeleton nodes, off visited {visits_off}"
    );

    // Index off: the structural counters stay silent.
    assert_eq!(profile_off.counters.get("struct.summary.hits"), 0);
    assert_eq!(profile_off.counters.get("struct.nodes.skipped"), 0);

    // Both step patterns carry a named step, so nothing fell back.
    assert_eq!(profile_on.counters.get("struct.fallbacks"), 0);
}
