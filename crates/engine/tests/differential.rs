//! Differential suite: `reduce` (vectorized) vs `naive_eval` (DOM
//! nested loops) over the XQ[*,//] fragment — wildcards, descendant
//! steps, qualifiers, joins (including two-collection joins), and
//! element construction. Value outputs compare byte-for-byte; document
//! outputs compare by serialized XML after reconstructing the engine's
//! vectorized result.

use vx_core::{reconstruct, vectorize, VecDoc};
use vx_engine::{
    naive_eval, EngineError, JoinStrategy, NaiveOutput, Query, QueryOutput, RunOptions,
};
use vx_xml::{parse, write_document, Document, WriteOptions};

/// Every join strategy the planner can pick; the suite forces each in
/// turn and demands byte-identical output.
const STRATEGIES: [JoinStrategy; 3] = [
    JoinStrategy::Hash,
    JoinStrategy::IndexNestedLoop,
    JoinStrategy::SortMerge,
];

fn xml_of(doc: &VecDoc) -> String {
    write_document(&reconstruct(doc).unwrap(), &WriteOptions::compact())
}

/// Byte-level equality between two engine outputs (documents compare by
/// serialized XML after reconstruction).
fn assert_outputs_identical(a: &QueryOutput, b: &QueryOutput, src: &str, label: &str) {
    match (a, b) {
        (QueryOutput::Values(x), QueryOutput::Values(y)) => {
            assert_eq!(x, y, "strategy {label} changed values for {src}");
        }
        (QueryOutput::Document(x), QueryOutput::Document(y)) => {
            assert_eq!(
                xml_of(x),
                xml_of(y),
                "strategy {label} changed the document for {src}"
            );
        }
        _ => panic!("strategy {label} changed the output shape for {src}"),
    }
}

/// A small hand-written corpus with attributes and nesting — the shapes
/// the generated MedLine/SkyServer corpora don't exercise.
const SHOP: &str = "<shop>\
  <item sku=\"a1\" lang=\"en\"><name>pen</name><price>2</price><tag>office</tag><tag>blue</tag></item>\
  <item sku=\"b2\" lang=\"de\"><name>ink</name><price>5</price><tag>office</tag></item>\
  <bundle><item sku=\"c3\" lang=\"en\"><name>set</name><price>5</price></item></bundle>\
  <item sku=\"d4\" lang=\"en\"><name>pad</name><price>2</price><tag>paper</tag></item>\
</shop>";

struct Corpus {
    docs: Vec<(String, Document, VecDoc)>,
}

impl Corpus {
    fn new() -> Corpus {
        let mut docs = Vec::new();
        for (name, dom) in [
            ("ml".to_string(), vx_data::medline(7, 60)),
            ("ml2".to_string(), vx_data::medline(99, 40)),
            ("sky".to_string(), vx_data::skyserver(3, 80)),
            ("shop".to_string(), parse(SHOP).unwrap()),
            ("xk".to_string(), vx_data::xmark(11, 48)),
            ("tb".to_string(), vx_data::treebank(5, 60)),
        ] {
            let vec = vectorize(&dom).unwrap();
            docs.push((name, dom, vec));
        }
        Corpus { docs }
    }

    fn doms(&self) -> Vec<(&str, &Document)> {
        self.docs.iter().map(|(n, d, _)| (n.as_str(), d)).collect()
    }

    fn vecs(&self) -> Vec<(&str, &VecDoc)> {
        self.docs.iter().map(|(n, _, v)| (n.as_str(), v)).collect()
    }

    /// Runs one query against the oracle under the default plan, then
    /// re-runs it with every forced join strategy and demands the
    /// planner's answer byte-for-byte. Returns the engine output for
    /// additional shape assertions.
    fn check(&self, src: &str) -> QueryOutput {
        let parsed = vx_xquery::parse_query(src).expect(src);
        let expected = naive_eval(&parsed, &self.doms()).expect(src);
        let query = Query::new(src).expect(src);
        let vecs = self.vecs();
        let got = query
            .run_with(&vecs, &RunOptions::default())
            .expect(src)
            .output;
        match (&got, &expected) {
            (QueryOutput::Values(g), NaiveOutput::Values(e)) => {
                assert_eq!(g, e, "value mismatch for {src}");
            }
            (QueryOutput::Document(g), NaiveOutput::Document(e)) => {
                let opts = WriteOptions::compact();
                let engine_xml = write_document(&reconstruct(g).expect(src), &opts);
                let oracle_xml = write_document(e, &opts);
                assert_eq!(engine_xml, oracle_xml, "document mismatch for {src}");
            }
            _ => panic!("output shape mismatch for {src}"),
        }
        for strategy in STRATEGIES {
            let options = RunOptions {
                strategy: Some(strategy),
                ..RunOptions::default()
            };
            let forced = query.run_with(&vecs, &options).expect(src).output;
            assert_outputs_identical(&got, &forced, src, strategy.name());
        }
        got
    }

    fn values(&self, src: &str) -> Vec<String> {
        match self.check(src) {
            QueryOutput::Values(v) => v
                .into_iter()
                .map(|b| String::from_utf8(b).unwrap())
                .collect(),
            QueryOutput::Document(_) => panic!("expected values for {src}"),
        }
    }
}

#[test]
fn chains_selections_and_projections() {
    let c = Corpus::new();
    // Plain chain.
    let all = c.values(r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation return $c/PMID"#);
    assert_eq!(all.len(), 60);
    assert_eq!(all[0], "10000000");
    // Literal selection.
    let eng = c.values(
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation
           where $c/Language = "ENG"
           return $c/PMID"#,
    );
    assert!(!eng.is_empty() && eng.len() < 60);
    // Existential selection.
    c.check(
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation
           where exists($c/Article/Abstract)
           return $c/PMID"#,
    );
    // Qualifier sugar desugars to the same thing.
    let sugared = c.values(
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation[Language = "SPA"]
           return $c/PMID"#,
    );
    let explicit = c.values(
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation
           where $c/Language = "SPA"
           return $c/PMID"#,
    );
    assert_eq!(sugared, explicit);
    // Conjunction of selections.
    c.check(
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation
           where $c/Language = "ENG" and exists($c/Article/Abstract)
           return $c/Article/ArticleTitle"#,
    );
}

#[test]
fn wildcard_steps() {
    let c = Corpus::new();
    // `*` over a homogeneous child set.
    let via_star = c.values(r#"for $c in doc("ml")/MedlineCitationSet/* return $c/PMID"#);
    let via_name =
        c.values(r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation return $c/PMID"#);
    assert_eq!(via_star, via_name);
    // `*` in a reference path: direct texts of every child element.
    c.check(r#"for $p in doc("sky")/PhotoObjAll/PhotoObj return $p/*"#);
    // `*` never matches attribute pseudo-children.
    let texts = c.values(r#"for $i in doc("shop")/shop/item return $i/*"#);
    assert!(texts.contains(&"pen".to_string()));
    assert!(!texts.contains(&"a1".to_string()), "`*` must skip @sku");
    // Wildcard mid-pattern.
    c.check(r#"for $a in doc("ml")/MedlineCitationSet/*/Article/*/Author return $a/LastName"#);
}

#[test]
fn descendant_steps() {
    let c = Corpus::new();
    let deep = c.values(r#"for $a in doc("ml")//Author return $a/LastName"#);
    assert!(!deep.is_empty());
    // Binding and reference both descendant.
    c.check(r#"for $c in doc("ml")//MedlineCitation return $c//LastName"#);
    // Descendant finds nested elements the child axis misses.
    let items = c.values(r#"for $i in doc("shop")//item return $i/@sku"#);
    assert_eq!(items, ["a1", "b2", "c3", "d4"]);
    let shallow = c.values(r#"for $i in doc("shop")/shop/item return $i/@sku"#);
    assert_eq!(shallow, ["a1", "b2", "d4"]);
    // `//*` wildcard descent.
    c.check(r#"for $x in doc("shop")/shop//* return $x/name"#);
    // Descendant below a bound variable.
    c.check(r#"for $c in doc("ml")//MedlineCitation, $a in $c//Author where $c/Language = "FRE" return $a/LastName"#);
}

#[test]
fn attribute_axes() {
    let c = Corpus::new();
    let skus = c.values(r#"for $i in doc("shop")//item where $i/@lang = "en" return $i/@sku"#);
    assert_eq!(skus, ["a1", "c3", "d4"]);
    // Attribute-valued join key.
    c.check(
        r#"for $a in doc("shop")//item, $b in doc("shop")//item
           where $a/price = $b/price
           return $b/@sku"#,
    );
    // Descendant attribute step.
    c.check(r#"for $s in doc("shop")/shop return $s//@sku"#);
}

#[test]
fn equality_joins() {
    let c = Corpus::new();
    // Self join on publication year, selection on one side first.
    c.check(
        r#"for $a in doc("ml")//MedlineCitation, $b in doc("ml")//MedlineCitation
           where $a/Language = "FRE" and $a/PubData/Year = $b/PubData/Year
           return $b/PMID"#,
    );
    // Two-collection join: different corpora, shared year vocabulary.
    let joined = c.values(
        r#"for $a in doc("ml")/MedlineCitationSet/MedlineCitation,
               $b in doc("ml2")/MedlineCitationSet/MedlineCitation
           where $a/PubData/Year = $b/PubData/Year
           return $b/PMID"#,
    );
    assert!(!joined.is_empty(), "seeded corpora must share some years");
    // Three-way binding with a join and a selection.
    c.check(
        r#"for $a in doc("ml")//MedlineCitation,
               $b in doc("ml2")//MedlineCitation,
               $x in $a/Article/AuthorList/Author
           where $a/PubData/Year = $b/PubData/Year and $b/Language = "GER"
           return $x/LastName"#,
    );
    // Join with no shared values: empty, on both sides.
    let empty = c.values(
        r#"for $p in doc("sky")//PhotoObj, $m in doc("ml")//MedlineCitation
           where $p/objID = $m/PMID
           return $p/ra"#,
    );
    assert!(empty.is_empty());
    // Same-variable path pair (degenerate join).
    c.check(r#"for $p in doc("sky")/PhotoObjAll/PhotoObj where $p/g = $p/r return $p/objID"#);
    // Document-rooted condition path (synthesized anchor variable).
    c.check(
        r#"for $c in doc("ml")//MedlineCitation
           where doc("ml")/MedlineCitationSet/MedlineCitation/Language = "ENG"
           return $c/PMID"#,
    );
}

#[test]
fn element_construction_is_vectorized() {
    let c = Corpus::new();
    // Projection into a constructed element.
    let out = c.check(
        r#"for $c in doc("ml")//MedlineCitation
           where $c/Language = "FRE"
           return <cite>{$c/PMID}{$c/PubData/Year}</cite>"#,
    );
    let QueryOutput::Document(doc) = out else {
        panic!("constructor must produce a document");
    };
    // The result is a VecDoc: vectors named by result paths, no DOM.
    assert!(doc.vector("results/cite/PMID").is_some());
    assert!(doc.vector("results/cite/Year").is_some());

    // Deep element copies.
    c.check(
        r#"for $c in doc("ml")//MedlineCitation
           where $c/PubData/Year = "1999"
           return <r>{$c/Article}</r>"#,
    );
    // Copy of the bound element itself.
    c.check(r#"for $p in doc("sky")//PhotoObj where $p/type = "6" return <o>{$p}</o>"#);
    // Attribute copy attaches to the constructed element.
    c.check(r#"for $i in doc("shop")//item return <it>{$i/@sku}{$i/name}</it>"#);
    // Literal nested element plus descendant copy.
    c.check(
        r#"for $c in doc("ml")//MedlineCitation
           where $c/Language = "GER"
           return <r>{$c/PMID}<who>{$c//LastName}</who></r>"#,
    );
}

#[test]
fn nested_flwr_in_constructors() {
    let c = Corpus::new();
    // Nested loop over a child collection.
    c.check(
        r#"for $c in doc("ml")//MedlineCitation
           where $c/Language = "GER"
           return <r>{$c/PMID}<authors>{for $a in $c//Author return $a/LastName}</authors></r>"#,
    );
    // Correlated join inside a constructor block (outer variable in the
    // inner where clause).
    c.check(
        r#"for $a in doc("ml")//MedlineCitation
           where $a/Language = "ENG"
           return <m>{$a/PMID}{for $b in doc("ml2")//MedlineCitation
                               where $b/PubData/Year = $a/PubData/Year
                               return $b/PMID}</m>"#,
    );
    // Nested constructor inside a nested block.
    c.check(
        r#"for $i in doc("shop")/shop/item
           return <item>{$i/name}{for $t in $i/tag return <t>{$t}</t>}</item>"#,
    );
}

#[test]
fn xmark_reference_joins() {
    let c = Corpus::new();
    // The defining XMark query shape: equality joins through id-reference
    // attributes (person/@id against seller/@person and buyer/@person).
    let sellers = c.values(
        r#"for $p in doc("xk")/site/people/person,
               $o in doc("xk")/site/open_auctions/open_auction
           where $o/seller/@person = $p/@id
           return $p/name"#,
    );
    assert!(!sellers.is_empty(), "every auction has a generated seller");
    // Join plus a filter on the joined side.
    c.check(
        r#"for $p in doc("xk")/site/people/person,
               $a in doc("xk")/site/closed_auctions/closed_auction
           where $a/buyer/@person = $p/@id and $p/address/country = "United States"
           return $a/price"#,
    );
    // Wildcard over the region fan-out.
    let names = c.values(r#"for $i in doc("xk")/site/regions/*/item return $i/name"#);
    assert_eq!(names.len(), 48, "one name per generated item");
    // Descendant step across the whole site.
    c.check(r#"for $b in doc("xk")//bidder return $b/personref/@person"#);
}

#[test]
fn treebank_deep_recursion() {
    let c = Corpus::new();
    // `//` binding and `//` reference over the recursive grammar — the
    // vector-explosion case (TQ2's shape).
    let deep = c.values(r#"for $v in doc("tb")//VP return $v//NN"#);
    assert!(!deep.is_empty());
    // Nested `//NP` finds phrases at every recursion depth; the child
    // axis from the sentence root finds strictly fewer.
    let all_np = c.values(r#"for $n in doc("tb")//NP return $n/NN"#);
    let top_np = c.values(r#"for $s in doc("tb")/FILE/S return $s/NP/NN"#);
    assert!(all_np.len() > top_np.len(), "recursion must nest NPs");
    // A value join between descendant phrase sets (TQ3's shape).
    c.check(
        r#"for $a in doc("tb")//NP, $b in doc("tb")//PP
           where $a/NN = $b/NP/NN
           return $a/NN"#,
    );
}

#[test]
fn workload_queries_agree_with_oracle_and_are_nonempty() {
    // The 13 Table-2 queries run differentially over a small corpus
    // keyed by the bench dataset names; each must produce at least one
    // result so the table3 timings measure real work.
    let mut docs = Vec::new();
    for (name, dom) in [
        ("xk", vx_data::xmark(42, 120)),
        ("tb", vx_data::treebank(42, 160)),
        ("ml", vx_data::medline(42, 120)),
        ("ss", vx_data::skyserver(42, 160)),
    ] {
        let vec = vectorize(&dom).unwrap();
        docs.push((name, dom, vec));
    }
    let doms: Vec<(&str, &Document)> = docs.iter().map(|(n, d, _)| (*n, d)).collect();
    let vecs: Vec<(&str, &VecDoc)> = docs.iter().map(|(n, _, v)| (*n, v)).collect();
    for spec in vx_data::workload() {
        let parsed = vx_xquery::parse_query(spec.xq).expect(spec.name);
        let expected = naive_eval(&parsed, &doms).expect(spec.name);
        let query = Query::new(spec.xq).expect(spec.name);
        let got = query
            .run_with(&vecs, &RunOptions::default())
            .expect(spec.name)
            .output;
        for strategy in STRATEGIES {
            let options = RunOptions {
                strategy: Some(strategy),
                ..RunOptions::default()
            };
            let forced = query.run_with(&vecs, &options).expect(spec.name).output;
            assert_outputs_identical(&got, &forced, spec.xq, strategy.name());
        }
        let cardinality = match (&got, &expected) {
            (QueryOutput::Values(g), NaiveOutput::Values(e)) => {
                assert_eq!(g, e, "value mismatch for {}", spec.name);
                g.len()
            }
            (QueryOutput::Document(g), NaiveOutput::Document(e)) => {
                let opts = WriteOptions::compact();
                let engine_xml = write_document(&reconstruct(g).expect(spec.name), &opts);
                let oracle_xml = write_document(e, &opts);
                assert_eq!(
                    engine_xml, oracle_xml,
                    "document mismatch for {}",
                    spec.name
                );
                e.root.child_elements().count()
            }
            _ => panic!("output shape mismatch for {}", spec.name),
        };
        assert!(
            cardinality > 0,
            "{} returned no results at test scale",
            spec.name
        );
    }
}

#[test]
fn empty_results_agree() {
    let c = Corpus::new();
    let none = c.values(r#"for $c in doc("ml")//NoSuchTag return $c/PMID"#);
    assert!(none.is_empty());
    let out = c.check(r#"for $c in doc("ml")//NoSuchTag return <r>{$c/x}</r>"#);
    let QueryOutput::Document(doc) = out else {
        panic!("constructor must produce a document");
    };
    assert_eq!(
        write_document(&reconstruct(&doc).unwrap(), &WriteOptions::compact()),
        "<results/>"
    );
}

#[test]
fn unsupported_constructs_are_structured() {
    for (src, needle) in [
        (
            r#"for $x in doc("ml")//MedlineCitation return $x"#,
            "whole-element return",
        ),
        (
            r#"for $x in doc("ml")//MedlineCitation return doc("ml")/MedlineCitationSet"#,
            "document-rooted return",
        ),
        (
            r#"for $x in doc("ml")//MedlineCitation return <r>{$x/Article[Abstract]}</r>"#,
            "qualifier in constructor content",
        ),
        (
            r#"for $x in doc("ml")//MedlineCitation where $y/PMID = "1" return $x/PMID"#,
            "unbound variable",
        ),
    ] {
        match Query::new(src) {
            Err(EngineError::Unsupported { construct, span }) => {
                assert!(
                    construct.contains(needle),
                    "{src}: got {construct:?}, wanted {needle:?}"
                );
                assert!(span.is_some(), "{src}: span missing");
            }
            other => panic!("{src}: expected Unsupported, got {other:?}"),
        }
    }
}

#[test]
fn unknown_documents_are_reported() {
    let c = Corpus::new();
    let q = Query::new(r#"for $x in doc("nowhere")/a return $x/b"#).unwrap();
    match q.run_with(&c.vecs(), &RunOptions::default()) {
        Err(EngineError::UnknownDocument(name)) => assert_eq!(name, "nowhere"),
        other => panic!("expected UnknownDocument, got {other:?}"),
    }
}

/// The persistent-index path: save the corpora with `Compaction::Auto`
/// (join-key vectors get version-3 value indexes), reopen as handles,
/// and demand that SQ3's self-join and the XMark id-reference join give
/// the same bytes as the in-memory run — under the default plan, every
/// forced strategy, and with indexes disabled outright.
#[test]
fn store_backed_joins_agree_across_strategies() {
    use vx_core::{Compaction, Store, StoreHandle};

    let ss = vectorize(&vx_data::skyserver(3, 80)).unwrap();
    let xk = vectorize(&vx_data::xmark(11, 48)).unwrap();
    let base = std::env::temp_dir().join(format!("vx-diff-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for (name, doc) in [("ss", &ss), ("xk", &xk)] {
        Store::save(&base.join(name), doc, Compaction::Auto).unwrap();
    }
    let handles = vec![
        StoreHandle::open(&base.join("ss")).unwrap(),
        StoreHandle::open(&base.join("xk")).unwrap(),
    ];
    let vecs: Vec<(&str, &VecDoc)> = vec![("ss", &ss), ("xk", &xk)];
    for src in [
        // SQ3's shape: the large×large self-join behind the Table 3 cliff.
        r#"for $a in doc("ss")//PhotoObj, $b in doc("ss")//PhotoObj
           where $a/objID = $b/objID
           return $b/ra"#,
        // XMark id-reference join with a literal filter on the build side.
        r#"for $p in doc("xk")/site/people/person,
               $o in doc("xk")/site/open_auctions/open_auction
           where $o/seller/@person = $p/@id
           return $p/name"#,
        // Selective literal filter → index point lookup over the store.
        r#"for $p in doc("ss")/PhotoObjAll/PhotoObj
           where $p/type = "3"
           return $p/objID"#,
    ] {
        let query = Query::new(src).expect(src);
        let expected = query
            .run_with(&vecs, &RunOptions::default())
            .expect(src)
            .output;
        let over_store = query
            .run_with(&handles, &RunOptions::default())
            .expect(src)
            .output;
        assert_outputs_identical(&expected, &over_store, src, "default-plan");
        for strategy in STRATEGIES {
            let options = RunOptions {
                strategy: Some(strategy),
                ..RunOptions::default()
            };
            let forced = query.run_with(&handles, &options).expect(src).output;
            assert_outputs_identical(&expected, &forced, src, strategy.name());
        }
        let no_index = RunOptions {
            use_indexes: false,
            ..RunOptions::default()
        };
        let plain = query.run_with(&handles, &no_index).expect(src).output;
        assert_outputs_identical(&expected, &plain, src, "indexes-off");
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Child half of `vx_plan_env_is_honored`: runs only when re-executed
/// with `VX_PLAN` set, and routes SQ3- and XMark-shaped joins through
/// `check` so the env-forced default plan is held to the oracle and to
/// every explicitly forced strategy.
#[test]
#[ignore = "child process of vx_plan_env_is_honored; needs VX_PLAN set"]
fn vx_plan_child() {
    let plan = std::env::var("VX_PLAN").expect("run via vx_plan_env_is_honored");
    assert!(
        JoinStrategy::parse(&plan).is_some(),
        "parent must set a valid VX_PLAN, got {plan:?}"
    );
    let c = Corpus::new();
    c.check(
        r#"for $a in doc("sky")//PhotoObj, $b in doc("sky")//PhotoObj
           where $a/objID = $b/objID
           return $b/ra"#,
    );
    c.check(
        r#"for $p in doc("xk")/site/people/person,
               $o in doc("xk")/site/open_auctions/open_auction
           where $o/seller/@person = $p/@id
           return $p/name"#,
    );
}

/// `VX_PLAN=hash|inl|merge` forces the strategy process-wide; each value
/// must leave the differential answers untouched. Runs the child test in
/// a subprocess because environment variables are process-global.
#[test]
fn vx_plan_env_is_honored() {
    let exe = std::env::current_exe().unwrap();
    for plan in ["hash", "inl", "merge"] {
        let out = std::process::Command::new(&exe)
            .args(["--exact", "vx_plan_child", "--ignored"])
            .env("VX_PLAN", plan)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "VX_PLAN={plan} child failed\nstdout:\n{}\nstderr:\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn query_handle_is_reusable_across_documents() {
    let c = Corpus::new();
    let q = Query::new(r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation return $c/PMID"#)
        .unwrap();
    // Same compiled query, two different stores (run() maps every doc
    // name onto the given document).
    let ml = &c.docs[0].2;
    let ml2 = &c.docs[1].2;
    let a = q.run_with(ml, &RunOptions::default()).unwrap().output;
    let b = q.run_with(ml2, &RunOptions::default()).unwrap().output;
    assert_eq!(a.strings().len(), 60);
    assert_eq!(b.strings().len(), 40);
}

/// A document whose element chain is `depth` levels deep: `FILE` over
/// nested `NP`s, each level carrying its own `NN` leaf. Past 64 levels
/// this exceeds the NFA's one-bit-per-step `u64` state width — the
/// *document* may recurse arbitrarily even though *patterns* are capped
/// at [`vx_skeleton::PathPattern::MAX_STEPS`] steps.
fn deep_doc(depth: usize) -> (Document, VecDoc) {
    let mut xml = String::from("<FILE>");
    for d in 0..depth {
        xml.push_str(&format!("<NP><NN>n{d}</NN>"));
    }
    xml.push_str("<CC>and</CC>");
    for _ in 0..depth {
        xml.push_str("</NP>");
    }
    xml.push_str("</FILE>");
    let dom = parse(&xml).unwrap();
    let vdoc = vectorize(&dom).unwrap();
    (dom, vdoc)
}

/// Deep `//` recursion well past the 64-bit state width, pinned against
/// the oracle in both structural-index and NFA-fallback matching modes
/// (machines spawn per element, so document depth must never alias
/// pattern state bits).
#[test]
fn documents_deeper_than_the_state_width_agree() {
    let (dom, vdoc) = deep_doc(70);
    let doms: Vec<(&str, &Document)> = vec![("deep", &dom)];
    let vecs: Vec<(&str, &VecDoc)> = vec![("deep", &vdoc)];
    for src in [
        r#"for $f in doc("deep")/FILE return $f//NP/NN"#,
        r#"for $n in doc("deep")//NP/NP/NP return $n/NN"#,
        r#"for $n in doc("deep")//NP where exists($n/NP/NN) return $n/NN"#,
        r#"for $f in doc("deep")//FILE return $f//CC"#,
        r#"for $n in doc("deep")//NP where $n/NN = "n69" return $n/CC"#,
    ] {
        let parsed = vx_xquery::parse_query(src).expect(src);
        let expected = match naive_eval(&parsed, &doms).expect(src) {
            NaiveOutput::Values(v) => v,
            NaiveOutput::Document(_) => panic!("expected values for {src}"),
        };
        assert!(!expected.is_empty(), "degenerate oracle result for {src}");
        let query = Query::new(src).expect(src);
        for struct_index in [Some(true), Some(false)] {
            let options = RunOptions {
                struct_index,
                ..RunOptions::default()
            };
            match query.run_with(&vecs, &options).expect(src).output {
                QueryOutput::Values(got) => {
                    assert_eq!(got, expected, "{src} struct_index={struct_index:?}");
                }
                QueryOutput::Document(_) => panic!("expected values for {src}"),
            }
        }
    }
}

/// The NFA packs its live set into a `u64` — one bit per step plus the
/// accept bit. Patterns beyond that width must fail as a structured
/// `Unsupported`, not wrap the bitmask; patterns exactly at the width
/// still compile and answer correctly.
#[test]
fn patterns_past_the_state_width_are_rejected() {
    let (dom, vdoc) = deep_doc(70);
    // 1 (`FILE`) + 63 (`NP`) steps = 64 > MAX_STEPS.
    let over = format!(
        r#"for $x in doc("deep")/FILE{} return $x/NN"#,
        "/NP".repeat(63)
    );
    match Query::new(&over) {
        Err(EngineError::Unsupported { construct, span }) => {
            assert!(
                construct.contains("more than 63 steps"),
                "got {construct:?}"
            );
            assert!(span.is_some(), "span missing");
        }
        other => panic!("expected Unsupported for a 64-step pattern, got {other:?}"),
    }
    // 1 + 62 = 63 steps: exactly MAX_STEPS, still supported.
    let at_limit = format!(
        r#"for $x in doc("deep")/FILE{} return $x/NN"#,
        "/NP".repeat(62)
    );
    let parsed = vx_xquery::parse_query(&at_limit).unwrap();
    let expected = match naive_eval(&parsed, &[("deep", &dom)]).unwrap() {
        NaiveOutput::Values(v) => v,
        NaiveOutput::Document(_) => panic!("expected values"),
    };
    assert_eq!(expected, vec![b"n61".to_vec()]);
    let query = Query::new(&at_limit).expect("63-step pattern is within the state width");
    for struct_index in [Some(true), Some(false)] {
        let options = RunOptions {
            struct_index,
            ..RunOptions::default()
        };
        let vecs: Vec<(&str, &VecDoc)> = vec![("deep", &vdoc)];
        match query.run_with(&vecs, &options).unwrap().output {
            QueryOutput::Values(got) => assert_eq!(got, expected),
            QueryOutput::Document(_) => panic!("expected values"),
        }
    }
}
