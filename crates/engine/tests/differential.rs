//! Differential suite: `reduce` (vectorized) vs `naive_eval` (DOM
//! nested loops) over the XQ[*,//] fragment — wildcards, descendant
//! steps, qualifiers, joins (including two-collection joins), and
//! element construction. Value outputs compare byte-for-byte; document
//! outputs compare by serialized XML after reconstructing the engine's
//! vectorized result.

use vx_core::{reconstruct, vectorize, VecDoc};
use vx_engine::{naive_eval, EngineError, NaiveOutput, Query, QueryOutput};
use vx_xml::{parse, write_document, Document, WriteOptions};

/// A small hand-written corpus with attributes and nesting — the shapes
/// the generated MedLine/SkyServer corpora don't exercise.
const SHOP: &str = "<shop>\
  <item sku=\"a1\" lang=\"en\"><name>pen</name><price>2</price><tag>office</tag><tag>blue</tag></item>\
  <item sku=\"b2\" lang=\"de\"><name>ink</name><price>5</price><tag>office</tag></item>\
  <bundle><item sku=\"c3\" lang=\"en\"><name>set</name><price>5</price></item></bundle>\
  <item sku=\"d4\" lang=\"en\"><name>pad</name><price>2</price><tag>paper</tag></item>\
</shop>";

struct Corpus {
    docs: Vec<(String, Document, VecDoc)>,
}

impl Corpus {
    fn new() -> Corpus {
        let mut docs = Vec::new();
        for (name, dom) in [
            ("ml".to_string(), vx_data::medline(7, 60)),
            ("ml2".to_string(), vx_data::medline(99, 40)),
            ("sky".to_string(), vx_data::skyserver(3, 80)),
            ("shop".to_string(), parse(SHOP).unwrap()),
            ("xk".to_string(), vx_data::xmark(11, 48)),
            ("tb".to_string(), vx_data::treebank(5, 60)),
        ] {
            let vec = vectorize(&dom).unwrap();
            docs.push((name, dom, vec));
        }
        Corpus { docs }
    }

    fn doms(&self) -> Vec<(&str, &Document)> {
        self.docs.iter().map(|(n, d, _)| (n.as_str(), d)).collect()
    }

    fn vecs(&self) -> Vec<(&str, &VecDoc)> {
        self.docs.iter().map(|(n, _, v)| (n.as_str(), v)).collect()
    }

    /// Runs one query both ways and asserts agreement. Returns the
    /// engine output for additional shape assertions.
    fn check(&self, src: &str) -> QueryOutput {
        let parsed = vx_xquery::parse_query(src).expect(src);
        let expected = naive_eval(&parsed, &self.doms()).expect(src);
        let query = Query::new(src).expect(src);
        let got = query.run_corpus(&self.vecs()).expect(src);
        match (&got, &expected) {
            (QueryOutput::Values(g), NaiveOutput::Values(e)) => {
                assert_eq!(g, e, "value mismatch for {src}");
            }
            (QueryOutput::Document(g), NaiveOutput::Document(e)) => {
                let opts = WriteOptions::compact();
                let engine_xml = write_document(&reconstruct(g).expect(src), &opts);
                let oracle_xml = write_document(e, &opts);
                assert_eq!(engine_xml, oracle_xml, "document mismatch for {src}");
            }
            _ => panic!("output shape mismatch for {src}"),
        }
        got
    }

    fn values(&self, src: &str) -> Vec<String> {
        match self.check(src) {
            QueryOutput::Values(v) => v
                .into_iter()
                .map(|b| String::from_utf8(b).unwrap())
                .collect(),
            QueryOutput::Document(_) => panic!("expected values for {src}"),
        }
    }
}

#[test]
fn chains_selections_and_projections() {
    let c = Corpus::new();
    // Plain chain.
    let all = c.values(r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation return $c/PMID"#);
    assert_eq!(all.len(), 60);
    assert_eq!(all[0], "10000000");
    // Literal selection.
    let eng = c.values(
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation
           where $c/Language = "ENG"
           return $c/PMID"#,
    );
    assert!(!eng.is_empty() && eng.len() < 60);
    // Existential selection.
    c.check(
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation
           where exists($c/Article/Abstract)
           return $c/PMID"#,
    );
    // Qualifier sugar desugars to the same thing.
    let sugared = c.values(
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation[Language = "SPA"]
           return $c/PMID"#,
    );
    let explicit = c.values(
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation
           where $c/Language = "SPA"
           return $c/PMID"#,
    );
    assert_eq!(sugared, explicit);
    // Conjunction of selections.
    c.check(
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation
           where $c/Language = "ENG" and exists($c/Article/Abstract)
           return $c/Article/ArticleTitle"#,
    );
}

#[test]
fn wildcard_steps() {
    let c = Corpus::new();
    // `*` over a homogeneous child set.
    let via_star = c.values(r#"for $c in doc("ml")/MedlineCitationSet/* return $c/PMID"#);
    let via_name =
        c.values(r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation return $c/PMID"#);
    assert_eq!(via_star, via_name);
    // `*` in a reference path: direct texts of every child element.
    c.check(r#"for $p in doc("sky")/PhotoObjAll/PhotoObj return $p/*"#);
    // `*` never matches attribute pseudo-children.
    let texts = c.values(r#"for $i in doc("shop")/shop/item return $i/*"#);
    assert!(texts.contains(&"pen".to_string()));
    assert!(!texts.contains(&"a1".to_string()), "`*` must skip @sku");
    // Wildcard mid-pattern.
    c.check(r#"for $a in doc("ml")/MedlineCitationSet/*/Article/*/Author return $a/LastName"#);
}

#[test]
fn descendant_steps() {
    let c = Corpus::new();
    let deep = c.values(r#"for $a in doc("ml")//Author return $a/LastName"#);
    assert!(!deep.is_empty());
    // Binding and reference both descendant.
    c.check(r#"for $c in doc("ml")//MedlineCitation return $c//LastName"#);
    // Descendant finds nested elements the child axis misses.
    let items = c.values(r#"for $i in doc("shop")//item return $i/@sku"#);
    assert_eq!(items, ["a1", "b2", "c3", "d4"]);
    let shallow = c.values(r#"for $i in doc("shop")/shop/item return $i/@sku"#);
    assert_eq!(shallow, ["a1", "b2", "d4"]);
    // `//*` wildcard descent.
    c.check(r#"for $x in doc("shop")/shop//* return $x/name"#);
    // Descendant below a bound variable.
    c.check(r#"for $c in doc("ml")//MedlineCitation, $a in $c//Author where $c/Language = "FRE" return $a/LastName"#);
}

#[test]
fn attribute_axes() {
    let c = Corpus::new();
    let skus = c.values(r#"for $i in doc("shop")//item where $i/@lang = "en" return $i/@sku"#);
    assert_eq!(skus, ["a1", "c3", "d4"]);
    // Attribute-valued join key.
    c.check(
        r#"for $a in doc("shop")//item, $b in doc("shop")//item
           where $a/price = $b/price
           return $b/@sku"#,
    );
    // Descendant attribute step.
    c.check(r#"for $s in doc("shop")/shop return $s//@sku"#);
}

#[test]
fn equality_joins() {
    let c = Corpus::new();
    // Self join on publication year, selection on one side first.
    c.check(
        r#"for $a in doc("ml")//MedlineCitation, $b in doc("ml")//MedlineCitation
           where $a/Language = "FRE" and $a/PubData/Year = $b/PubData/Year
           return $b/PMID"#,
    );
    // Two-collection join: different corpora, shared year vocabulary.
    let joined = c.values(
        r#"for $a in doc("ml")/MedlineCitationSet/MedlineCitation,
               $b in doc("ml2")/MedlineCitationSet/MedlineCitation
           where $a/PubData/Year = $b/PubData/Year
           return $b/PMID"#,
    );
    assert!(!joined.is_empty(), "seeded corpora must share some years");
    // Three-way binding with a join and a selection.
    c.check(
        r#"for $a in doc("ml")//MedlineCitation,
               $b in doc("ml2")//MedlineCitation,
               $x in $a/Article/AuthorList/Author
           where $a/PubData/Year = $b/PubData/Year and $b/Language = "GER"
           return $x/LastName"#,
    );
    // Join with no shared values: empty, on both sides.
    let empty = c.values(
        r#"for $p in doc("sky")//PhotoObj, $m in doc("ml")//MedlineCitation
           where $p/objID = $m/PMID
           return $p/ra"#,
    );
    assert!(empty.is_empty());
    // Same-variable path pair (degenerate join).
    c.check(r#"for $p in doc("sky")/PhotoObjAll/PhotoObj where $p/g = $p/r return $p/objID"#);
    // Document-rooted condition path (synthesized anchor variable).
    c.check(
        r#"for $c in doc("ml")//MedlineCitation
           where doc("ml")/MedlineCitationSet/MedlineCitation/Language = "ENG"
           return $c/PMID"#,
    );
}

#[test]
fn element_construction_is_vectorized() {
    let c = Corpus::new();
    // Projection into a constructed element.
    let out = c.check(
        r#"for $c in doc("ml")//MedlineCitation
           where $c/Language = "FRE"
           return <cite>{$c/PMID}{$c/PubData/Year}</cite>"#,
    );
    let QueryOutput::Document(doc) = out else {
        panic!("constructor must produce a document");
    };
    // The result is a VecDoc: vectors named by result paths, no DOM.
    assert!(doc.vector("results/cite/PMID").is_some());
    assert!(doc.vector("results/cite/Year").is_some());

    // Deep element copies.
    c.check(
        r#"for $c in doc("ml")//MedlineCitation
           where $c/PubData/Year = "1999"
           return <r>{$c/Article}</r>"#,
    );
    // Copy of the bound element itself.
    c.check(r#"for $p in doc("sky")//PhotoObj where $p/type = "6" return <o>{$p}</o>"#);
    // Attribute copy attaches to the constructed element.
    c.check(r#"for $i in doc("shop")//item return <it>{$i/@sku}{$i/name}</it>"#);
    // Literal nested element plus descendant copy.
    c.check(
        r#"for $c in doc("ml")//MedlineCitation
           where $c/Language = "GER"
           return <r>{$c/PMID}<who>{$c//LastName}</who></r>"#,
    );
}

#[test]
fn nested_flwr_in_constructors() {
    let c = Corpus::new();
    // Nested loop over a child collection.
    c.check(
        r#"for $c in doc("ml")//MedlineCitation
           where $c/Language = "GER"
           return <r>{$c/PMID}<authors>{for $a in $c//Author return $a/LastName}</authors></r>"#,
    );
    // Correlated join inside a constructor block (outer variable in the
    // inner where clause).
    c.check(
        r#"for $a in doc("ml")//MedlineCitation
           where $a/Language = "ENG"
           return <m>{$a/PMID}{for $b in doc("ml2")//MedlineCitation
                               where $b/PubData/Year = $a/PubData/Year
                               return $b/PMID}</m>"#,
    );
    // Nested constructor inside a nested block.
    c.check(
        r#"for $i in doc("shop")/shop/item
           return <item>{$i/name}{for $t in $i/tag return <t>{$t}</t>}</item>"#,
    );
}

#[test]
fn xmark_reference_joins() {
    let c = Corpus::new();
    // The defining XMark query shape: equality joins through id-reference
    // attributes (person/@id against seller/@person and buyer/@person).
    let sellers = c.values(
        r#"for $p in doc("xk")/site/people/person,
               $o in doc("xk")/site/open_auctions/open_auction
           where $o/seller/@person = $p/@id
           return $p/name"#,
    );
    assert!(!sellers.is_empty(), "every auction has a generated seller");
    // Join plus a filter on the joined side.
    c.check(
        r#"for $p in doc("xk")/site/people/person,
               $a in doc("xk")/site/closed_auctions/closed_auction
           where $a/buyer/@person = $p/@id and $p/address/country = "United States"
           return $a/price"#,
    );
    // Wildcard over the region fan-out.
    let names = c.values(r#"for $i in doc("xk")/site/regions/*/item return $i/name"#);
    assert_eq!(names.len(), 48, "one name per generated item");
    // Descendant step across the whole site.
    c.check(r#"for $b in doc("xk")//bidder return $b/personref/@person"#);
}

#[test]
fn treebank_deep_recursion() {
    let c = Corpus::new();
    // `//` binding and `//` reference over the recursive grammar — the
    // vector-explosion case (TQ2's shape).
    let deep = c.values(r#"for $v in doc("tb")//VP return $v//NN"#);
    assert!(!deep.is_empty());
    // Nested `//NP` finds phrases at every recursion depth; the child
    // axis from the sentence root finds strictly fewer.
    let all_np = c.values(r#"for $n in doc("tb")//NP return $n/NN"#);
    let top_np = c.values(r#"for $s in doc("tb")/FILE/S return $s/NP/NN"#);
    assert!(all_np.len() > top_np.len(), "recursion must nest NPs");
    // A value join between descendant phrase sets (TQ3's shape).
    c.check(
        r#"for $a in doc("tb")//NP, $b in doc("tb")//PP
           where $a/NN = $b/NP/NN
           return $a/NN"#,
    );
}

#[test]
fn workload_queries_agree_with_oracle_and_are_nonempty() {
    // The 13 Table-2 queries run differentially over a small corpus
    // keyed by the bench dataset names; each must produce at least one
    // result so the table3 timings measure real work.
    let mut docs = Vec::new();
    for (name, dom) in [
        ("xk", vx_data::xmark(42, 120)),
        ("tb", vx_data::treebank(42, 160)),
        ("ml", vx_data::medline(42, 120)),
        ("ss", vx_data::skyserver(42, 160)),
    ] {
        let vec = vectorize(&dom).unwrap();
        docs.push((name, dom, vec));
    }
    let doms: Vec<(&str, &Document)> = docs.iter().map(|(n, d, _)| (*n, d)).collect();
    let vecs: Vec<(&str, &VecDoc)> = docs.iter().map(|(n, _, v)| (*n, v)).collect();
    for spec in vx_data::workload() {
        let parsed = vx_xquery::parse_query(spec.xq).expect(spec.name);
        let expected = naive_eval(&parsed, &doms).expect(spec.name);
        let query = Query::new(spec.xq).expect(spec.name);
        let got = query.run_corpus(&vecs).expect(spec.name);
        let cardinality = match (&got, &expected) {
            (QueryOutput::Values(g), NaiveOutput::Values(e)) => {
                assert_eq!(g, e, "value mismatch for {}", spec.name);
                g.len()
            }
            (QueryOutput::Document(g), NaiveOutput::Document(e)) => {
                let opts = WriteOptions::compact();
                let engine_xml = write_document(&reconstruct(g).expect(spec.name), &opts);
                let oracle_xml = write_document(e, &opts);
                assert_eq!(
                    engine_xml, oracle_xml,
                    "document mismatch for {}",
                    spec.name
                );
                e.root.child_elements().count()
            }
            _ => panic!("output shape mismatch for {}", spec.name),
        };
        assert!(
            cardinality > 0,
            "{} returned no results at test scale",
            spec.name
        );
    }
}

#[test]
fn empty_results_agree() {
    let c = Corpus::new();
    let none = c.values(r#"for $c in doc("ml")//NoSuchTag return $c/PMID"#);
    assert!(none.is_empty());
    let out = c.check(r#"for $c in doc("ml")//NoSuchTag return <r>{$c/x}</r>"#);
    let QueryOutput::Document(doc) = out else {
        panic!("constructor must produce a document");
    };
    assert_eq!(
        write_document(&reconstruct(&doc).unwrap(), &WriteOptions::compact()),
        "<results/>"
    );
}

#[test]
fn unsupported_constructs_are_structured() {
    for (src, needle) in [
        (
            r#"for $x in doc("ml")//MedlineCitation return $x"#,
            "whole-element return",
        ),
        (
            r#"for $x in doc("ml")//MedlineCitation return doc("ml")/MedlineCitationSet"#,
            "document-rooted return",
        ),
        (
            r#"for $x in doc("ml")//MedlineCitation return <r>{$x/Article[Abstract]}</r>"#,
            "qualifier in constructor content",
        ),
        (
            r#"for $x in doc("ml")//MedlineCitation where $y/PMID = "1" return $x/PMID"#,
            "unbound variable",
        ),
    ] {
        match Query::new(src) {
            Err(EngineError::Unsupported { construct, span }) => {
                assert!(
                    construct.contains(needle),
                    "{src}: got {construct:?}, wanted {needle:?}"
                );
                assert!(span.is_some(), "{src}: span missing");
            }
            other => panic!("{src}: expected Unsupported, got {other:?}"),
        }
    }
}

#[test]
fn unknown_documents_are_reported() {
    let c = Corpus::new();
    let q = Query::new(r#"for $x in doc("nowhere")/a return $x/b"#).unwrap();
    match q.run_corpus(&c.vecs()) {
        Err(EngineError::UnknownDocument(name)) => assert_eq!(name, "nowhere"),
        other => panic!("expected UnknownDocument, got {other:?}"),
    }
}

#[test]
fn query_handle_is_reusable_across_documents() {
    let c = Corpus::new();
    let q = Query::new(r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation return $c/PMID"#)
        .unwrap();
    // Same compiled query, two different stores (run() maps every doc
    // name onto the given document).
    let ml = &c.docs[0].2;
    let ml2 = &c.docs[1].2;
    let a = q.run(ml).unwrap();
    let b = q.run(ml2).unwrap();
    assert_eq!(a.strings().len(), 60);
    assert_eq!(b.strings().len(), 40);
}
