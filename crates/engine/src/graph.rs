//! Query-graph compilation.
//!
//! A desugared XQ query is a set of variable bindings plus conjunctive
//! conditions. The supported fragment is *tree selection with projection*:
//! the return variable resolves (through its binding chain) to one
//! absolute element path, and every condition filters occurrences of some
//! ancestor on that chain. Compilation flattens this into a [`QueryGraph`]
//! that names only tag paths — the form [`crate::reduce`] evaluates with
//! prefix-sum vector arithmetic.

use crate::{EngineError, Result};
use std::collections::HashMap;
use vx_xquery::{desugar, Condition, Operand, PathExpr, Query, Root};

/// A compiled query: selection filters plus one projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryGraph {
    /// Document name from `doc("…")` (informational; evaluation always
    /// targets the document it is handed).
    pub doc: String,
    /// Absolute element tag path of the return variable, root tag first.
    pub target: Vec<String>,
    /// Relative tag path from the target to the projected text values.
    pub ret_rel: Vec<String>,
    /// Conjunctive filters.
    pub filters: Vec<Filter>,
}

/// One filter, anchored at a prefix of the target path.
///
/// `anchor` is a prefix length of [`QueryGraph::target`]: a target
/// occurrence survives the filter iff its ancestor at depth `anchor`
/// satisfies the test existentially along `rel`. `anchor == 0` anchors at
/// the document itself (a global condition: all-or-nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    pub anchor: usize,
    pub rel: Vec<String>,
    pub test: Test,
}

/// Filter test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Test {
    /// Some occurrence of the relative path exists.
    Exists,
    /// Some text value at the relative path equals the literal.
    Eq(String),
}

/// Compiles `query` (desugaring first) into a [`QueryGraph`].
///
/// Returns [`EngineError::Unsupported`] for wildcards, `//`, joins,
/// whole-element returns, and bindings that are neither on the return
/// variable's chain nor purely existential.
pub fn compile(query: &Query) -> Result<QueryGraph> {
    let query = desugar(query);

    // Resolve every variable to (document, absolute tag path).
    let mut resolved: HashMap<&str, (String, Vec<String>)> = HashMap::new();
    for binding in &query.bindings {
        let tags = simple_tags(&binding.path)?;
        let (doc, mut abs) = match &binding.path.root {
            Root::Doc(d) => (d.clone(), Vec::new()),
            Root::Var(v) => resolved
                .get(v.as_str())
                .cloned()
                .ok_or_else(|| EngineError::Unsupported(format!("unbound variable ${v}")))?,
        };
        abs.extend(tags);
        resolved.insert(binding.var.as_str(), (doc, abs));
    }

    // The target is the return path's root variable.
    let target_var = match &query.ret.root {
        Root::Var(v) => v.as_str(),
        Root::Doc(_) => {
            return Err(EngineError::Unsupported(
                "return path must start from a bound variable".into(),
            ))
        }
    };
    let ret_rel = simple_tags(&query.ret)?;
    if ret_rel.is_empty() {
        return Err(EngineError::Unsupported(
            "return must project a path below the variable (whole-element \
             return is not implemented yet)"
                .into(),
        ));
    }
    let (doc, target) = resolved
        .get(target_var)
        .cloned()
        .ok_or_else(|| EngineError::Unsupported(format!("unbound variable ${target_var}")))?;

    // The chain: variables whose binding path the target passes through.
    // Their absolute paths are exactly the anchors filters may attach to.
    let mut chain_depths: HashMap<&str, usize> = HashMap::new();
    {
        let mut var = target_var;
        loop {
            let (_, abs) = &resolved[var];
            chain_depths.insert(var, abs.len());
            match &query
                .bindings
                .iter()
                .find(|b| b.var == var)
                .expect("resolved implies bound")
                .path
                .root
            {
                Root::Var(v) => var = v.as_str(),
                Root::Doc(_) => break,
            }
        }
    }

    let mut filters = Vec::new();

    // Explicit conditions, anchored where their variable meets the chain.
    for condition in &query.conditions {
        let (path, test) = match condition {
            Condition::Exists(p) => (p, Test::Exists),
            Condition::Eq(p, Operand::Literal(l)) => (p, Test::Eq(l.clone())),
            Condition::Eq(_, Operand::Path(_)) => {
                return Err(EngineError::Unsupported(
                    "joins (path = path) are not implemented yet".into(),
                ))
            }
        };
        let rel = simple_tags(path)?;
        let (anchor, prefix) = anchor_of(&path.root, &query.bindings, &chain_depths)?;
        filters.push(Filter {
            anchor,
            rel: prefix.into_iter().chain(rel).collect(),
            test,
        });
    }

    // Bindings off the chain contribute existential filters: XQ qualifiers
    // are existential, and desugaring may have hoisted them into bindings.
    for binding in &query.bindings {
        if chain_depths.contains_key(binding.var.as_str()) {
            continue;
        }
        let root = Root::Var(binding.var.clone());
        let (anchor, prefix) = anchor_of(&root, &query.bindings, &chain_depths)?;
        filters.push(Filter {
            anchor,
            rel: prefix,
            test: Test::Exists,
        });
    }

    Ok(QueryGraph {
        doc,
        target,
        ret_rel,
        filters,
    })
}

/// Where a condition path attaches to the target chain: follows the path's
/// root variable through binding roots until a chain variable (anchor =
/// that variable's depth) or the document (anchor = 0); returns the tag
/// prefix accumulated on the way, to be prepended to the condition's own
/// steps.
fn anchor_of(
    root: &Root,
    bindings: &[vx_xquery::Binding],
    chain_depths: &HashMap<&str, usize>,
) -> Result<(usize, Vec<String>)> {
    match root {
        Root::Doc(_) => Ok((0, Vec::new())),
        Root::Var(v) => {
            if let Some(&depth) = chain_depths.get(v.as_str()) {
                return Ok((depth, Vec::new()));
            }
            let binding = bindings
                .iter()
                .find(|b| &b.var == v)
                .ok_or_else(|| EngineError::Unsupported(format!("unbound variable ${v}")))?;
            let (anchor, mut prefix) = anchor_of(&binding.path.root, bindings, chain_depths)?;
            prefix.extend(simple_tags(&binding.path)?);
            Ok((anchor, prefix))
        }
    }
}

/// The path's steps as plain child tags, or `Unsupported`.
fn simple_tags(path: &PathExpr) -> Result<Vec<String>> {
    path.simple_tags()
        .map(|tags| tags.into_iter().map(str::to_string).collect())
        .ok_or_else(|| {
            EngineError::Unsupported(format!(
                "only plain child steps are implemented yet (in `{path}`)"
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vx_xquery::parse_query;

    #[test]
    fn compiles_selection_projection() {
        let q = parse_query(
            r#"for $x in doc("ml")/Set/Citation
               where $x/Language = "ENG" and exists($x/Article)
               return $x/PMID"#,
        )
        .unwrap();
        let g = compile(&q).unwrap();
        assert_eq!(g.doc, "ml");
        assert_eq!(g.target, vec!["Set", "Citation"]);
        assert_eq!(g.ret_rel, vec!["PMID"]);
        assert_eq!(
            g.filters,
            vec![
                Filter {
                    anchor: 2,
                    rel: vec!["Language".into()],
                    test: Test::Eq("ENG".into()),
                },
                Filter {
                    anchor: 2,
                    rel: vec!["Article".into()],
                    test: Test::Exists,
                },
            ]
        );
    }

    #[test]
    fn qualifier_anchors_on_ancestor() {
        let q = parse_query(r#"for $x in doc("d")/a/b[c = "1"]/d return $x/e"#).unwrap();
        let g = compile(&q).unwrap();
        assert_eq!(g.target, vec!["a", "b", "d"]);
        assert_eq!(
            g.filters,
            vec![Filter {
                anchor: 2,
                rel: vec!["c".into()],
                test: Test::Eq("1".into()),
            }]
        );
    }

    #[test]
    fn off_chain_binding_becomes_existential() {
        let q = parse_query(
            r#"for $x in doc("d")/a/b, $y in $x/f
               where $y/g = "1"
               return $x/e"#,
        )
        .unwrap();
        let g = compile(&q).unwrap();
        assert_eq!(g.target, vec!["a", "b"]);
        assert_eq!(
            g.filters,
            vec![
                Filter {
                    anchor: 2,
                    rel: vec!["f".into(), "g".into()],
                    test: Test::Eq("1".into()),
                },
                Filter {
                    anchor: 2,
                    rel: vec!["f".into()],
                    test: Test::Exists,
                },
            ]
        );
    }

    #[test]
    fn rejects_unsupported_shapes() {
        for (src, needle) in [
            (r#"for $x in doc("d")/a//b return $x/c"#, "child steps"),
            (r#"for $x in doc("d")/a/* return $x/c"#, "child steps"),
            (r#"for $x in doc("d")/a return $x"#, "whole-element"),
            (
                r#"for $x in doc("d")/a, $y in doc("d")/b where $x/c = $y/c return $x/e"#,
                "joins",
            ),
            (
                r#"for $x in doc("d")/a return doc("d")/b"#,
                "bound variable",
            ),
        ] {
            let q = parse_query(src).unwrap();
            match compile(&q) {
                Err(EngineError::Unsupported(m)) => {
                    assert!(
                        m.contains(needle),
                        "{src}: message {m:?} missing {needle:?}"
                    )
                }
                other => panic!("{src}: expected Unsupported, got {other:?}"),
            }
        }
    }
}
