//! Query-graph compilation for XQ[*,//].
//!
//! A desugared XQ query is a set of variable bindings plus conjunctive
//! conditions and a return template. Compilation flattens this into a
//! [`QueryGraph`]: a DAG of *variable nodes* (each rooted at a document
//! or at a parent variable, reached through a step pattern that may use
//! `*` and `//`), *value references* hanging off the variables (the
//! relative paths whose text values a filter, join, or output needs),
//! literal *selection filters*, equality *join edges*, and an *output*
//! that is either a projected value sequence or a result-skeleton
//! template for element construction.
//!
//! Document-rooted condition and content paths are normalized by
//! synthesizing an anchor variable with an empty pattern — a variable
//! whose single "occurrence" is the document itself — so evaluation
//! needs exactly one notion of anchoring.
//!
//! The checks each block performs are ordered *selections before joins*:
//! literal filters become per-occurrence marks consulted the moment a
//! variable binds, while join edges are checked at the latest variable
//! they mention (`ready_at`), over already-filtered occurrence lists.

use crate::{EngineError, Result};
use std::collections::HashMap;
use vx_xquery::{
    desugar, Axis, Condition, Content, ElemConstructor, NameTest, Operand, PathExpr, Query,
    ReturnExpr, Root, Span,
};

/// One step of a compiled path pattern (name-level; tag ids are resolved
/// against each document's skeleton at evaluation time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatStep {
    /// `true` for `//`, `false` for `/`.
    pub descend: bool,
    pub test: PatTest,
}

/// A step test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatTest {
    Name(String),
    /// `*` — any element tag (but never the synthetic `@attr` names).
    Any,
}

/// A variable node of the query DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarNode {
    /// Source name, or `""` for synthesized document anchors.
    pub name: String,
    /// `Some(doc)` when rooted at `doc("…")`.
    pub doc: Option<String>,
    /// `Some(index)` when rooted at another variable (always earlier in
    /// [`QueryGraph::vars`] — the list is topologically ordered).
    pub parent: Option<usize>,
    /// Steps from the root to the variable's elements.
    pub steps: Vec<PatStep>,
}

/// What evaluation must collect for a reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefKind {
    /// Only whether a matching element exists below the occurrence.
    Exists,
    /// The text values of matching elements (vector positions).
    Values,
    /// Deep copies of matching elements (for element construction).
    Copy,
}

/// A relative path evaluated below every occurrence of a variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueRef {
    pub var: usize,
    pub steps: Vec<PatStep>,
    pub kind: RefKind,
}

/// A literal selection attached to one variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    pub var: usize,
    pub test: FilterTest,
    /// Position within the owning block's `vars` after which the filter
    /// can be checked; `None` means every mentioned variable is bound
    /// outside the block (check on block entry).
    pub ready_at: Option<usize>,
}

/// Filter test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterTest {
    /// Some occurrence of the reference exists.
    Exists(usize),
    /// Some text value of the reference equals the literal.
    Eq(usize, String),
    /// Two references below the *same* variable share a value
    /// (a degenerate equality edge).
    PathPair(usize, usize),
}

/// An equality (join) edge between value references on two variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Join {
    pub left: usize,
    pub right: usize,
    /// See [`Filter::ready_at`].
    pub ready_at: Option<usize>,
}

/// One FLWR scope: the top-level query or a nested FLWR in a constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Global indices into [`QueryGraph::vars`], in iteration order.
    pub vars: Vec<usize>,
    pub filters: Vec<Filter>,
    pub joins: Vec<Join>,
    pub output: Output,
}

/// What a block emits per binding tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output {
    /// `return $x/p` — the text values of a reference.
    Values(usize),
    /// `return <r>…</r>` — a constructed element.
    Document(Template),
}

/// A compiled element constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    pub tag: String,
    pub content: Vec<TplItem>,
}

/// One compiled content item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TplItem {
    /// `{$x/p}` — deep copies of the matched elements (a `Copy` ref).
    Copy(usize),
    /// A nested constructor.
    Element(Template),
    /// `{for … return …}` — a nested block.
    Block(Block),
}

/// A compiled query: variable DAG, references, and the top-level block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryGraph {
    pub vars: Vec<VarNode>,
    pub refs: Vec<ValueRef>,
    pub block: Block,
}

impl QueryGraph {
    /// Every distinct `doc("…")` name the query mentions.
    pub fn doc_names(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for var in &self.vars {
            if let Some(doc) = &var.doc {
                if !out.contains(&doc.as_str()) {
                    out.push(doc);
                }
            }
        }
        out
    }
}

/// Compiles `query` (desugaring first) into a [`QueryGraph`].
///
/// Returns a structured [`EngineError::Unsupported`] for the constructs
/// that remain outside the fragment: whole-element bare returns,
/// document-rooted bare returns, qualifiers inside constructor content,
/// and patterns longer than 63 steps.
pub fn compile(query: &Query) -> Result<QueryGraph> {
    let query = desugar(query);
    let mut c = Compiler {
        vars: Vec::new(),
        refs: Vec::new(),
        scopes: Vec::new(),
    };
    let block = c.compile_block(&query)?;
    Ok(QueryGraph {
        vars: c.vars,
        refs: c.refs,
        block,
    })
}

struct Compiler {
    vars: Vec<VarNode>,
    refs: Vec<ValueRef>,
    /// Lexical scopes (innermost last): variable name → global index.
    scopes: Vec<HashMap<String, usize>>,
}

impl Compiler {
    fn compile_block(&mut self, query: &Query) -> Result<Block> {
        self.scopes.push(HashMap::new());
        let result = self.compile_block_inner(query);
        self.scopes.pop();
        result
    }

    fn compile_block_inner(&mut self, query: &Query) -> Result<Block> {
        let mut block_vars = Vec::new();
        for binding in &query.bindings {
            let (doc, parent) = match &binding.path.root {
                Root::Doc(d) => (Some(d.clone()), None),
                Root::Var(v) => (None, Some(self.lookup(v, binding.path.span)?)),
            };
            let steps = pat_steps(&binding.path)?;
            let idx = self.vars.len();
            self.vars.push(VarNode {
                name: binding.var.clone(),
                doc,
                parent,
                steps,
            });
            self.scopes
                .last_mut()
                .expect("scope pushed")
                .insert(binding.var.clone(), idx);
            block_vars.push(idx);
        }

        // Conditions: literal tests become filters, path = path becomes a
        // join edge (or a same-variable pair test).
        let mut raw_filters: Vec<(usize, FilterTest)> = Vec::new();
        let mut raw_joins: Vec<(usize, usize)> = Vec::new();
        for condition in &query.conditions {
            match condition {
                Condition::Exists(p) => {
                    let (var, steps) = self.anchor(p, &mut block_vars)?;
                    let r = self.add_ref(var, steps, RefKind::Exists);
                    raw_filters.push((var, FilterTest::Exists(r)));
                }
                Condition::Eq(p, Operand::Literal(lit)) => {
                    let (var, steps) = self.anchor(p, &mut block_vars)?;
                    let r = self.add_ref(var, steps, RefKind::Values);
                    raw_filters.push((var, FilterTest::Eq(r, lit.clone())));
                }
                Condition::Eq(left, Operand::Path(right)) => {
                    let (lv, ls) = self.anchor(left, &mut block_vars)?;
                    let (rv, rs) = self.anchor(right, &mut block_vars)?;
                    let lr = self.add_ref(lv, ls, RefKind::Values);
                    let rr = self.add_ref(rv, rs, RefKind::Values);
                    if lv == rv {
                        raw_filters.push((lv, FilterTest::PathPair(lr, rr)));
                    } else {
                        raw_joins.push((lr, rr));
                    }
                }
            }
        }

        let output = self.compile_output(&query.ret, &mut block_vars)?;

        // `ready_at` positions are computed only once every synthesized
        // anchor variable has its final place in `block_vars`.
        let position = |var: usize| block_vars.iter().position(|&v| v == var);
        let filters = raw_filters
            .into_iter()
            .map(|(var, test)| Filter {
                var,
                ready_at: position(var),
                test,
            })
            .collect();
        let joins = raw_joins
            .into_iter()
            .map(|(left, right)| {
                let lp = position(self.refs[left].var);
                let rp = position(self.refs[right].var);
                Join {
                    left,
                    right,
                    ready_at: match (lp, rp) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (Some(a), None) => Some(a),
                        (None, Some(b)) => Some(b),
                        (None, None) => None,
                    },
                }
            })
            .collect();

        Ok(Block {
            vars: block_vars,
            filters,
            joins,
            output,
        })
    }

    fn compile_output(&mut self, ret: &ReturnExpr, block_vars: &mut Vec<usize>) -> Result<Output> {
        match ret {
            ReturnExpr::Path(p) => {
                let var = match &p.root {
                    Root::Var(v) => self.lookup(v, p.span)?,
                    Root::Doc(_) => {
                        return Err(EngineError::unsupported(
                            "document-rooted return path (bind it to a variable first)",
                            Some(p.span),
                        ))
                    }
                };
                if p.steps.is_empty() {
                    return Err(EngineError::unsupported(
                        "whole-element return (wrap it in an element constructor: \
                         `return <r>{$x}</r>`)",
                        Some(p.span),
                    ));
                }
                let steps = pat_steps(p)?;
                let r = self.add_ref(var, steps, RefKind::Values);
                Ok(Output::Values(r))
            }
            ReturnExpr::Element(c) => Ok(Output::Document(self.compile_template(c, block_vars)?)),
        }
    }

    fn compile_template(
        &mut self,
        c: &ElemConstructor,
        block_vars: &mut Vec<usize>,
    ) -> Result<Template> {
        let mut content = Vec::new();
        for item in &c.content {
            match item {
                Content::Path(p) => {
                    if !p.is_desugared() {
                        return Err(EngineError::unsupported(
                            "qualifier in constructor content (filter in the `where` \
                             clause instead)",
                            Some(p.span),
                        ));
                    }
                    let (var, steps) = self.anchor(p, block_vars)?;
                    let r = self.add_ref(var, steps, RefKind::Copy);
                    content.push(TplItem::Copy(r));
                }
                Content::Element(e) => {
                    content.push(TplItem::Element(self.compile_template(e, block_vars)?));
                }
                Content::Query(q) => {
                    content.push(TplItem::Block(self.compile_block(q)?));
                }
            }
        }
        Ok(Template {
            tag: c.tag.clone(),
            content,
        })
    }

    /// Resolves a condition/content path to `(anchor variable, steps)`.
    /// Document-rooted paths get a synthesized anchor variable whose one
    /// occurrence is the document itself.
    fn anchor(
        &mut self,
        p: &PathExpr,
        block_vars: &mut Vec<usize>,
    ) -> Result<(usize, Vec<PatStep>)> {
        let steps = pat_steps(p)?;
        match &p.root {
            Root::Var(v) => Ok((self.lookup(v, p.span)?, steps)),
            Root::Doc(d) => {
                let idx = self.vars.len();
                self.vars.push(VarNode {
                    name: String::new(),
                    doc: Some(d.clone()),
                    parent: None,
                    steps: Vec::new(),
                });
                block_vars.push(idx);
                Ok((idx, steps))
            }
        }
    }

    fn add_ref(&mut self, var: usize, steps: Vec<PatStep>, kind: RefKind) -> usize {
        if let Some(i) = self
            .refs
            .iter()
            .position(|r| r.var == var && r.steps == steps && r.kind == kind)
        {
            return i;
        }
        self.refs.push(ValueRef { var, steps, kind });
        self.refs.len() - 1
    }

    fn lookup(&self, name: &str, span: Span) -> Result<usize> {
        for scope in self.scopes.iter().rev() {
            if let Some(&idx) = scope.get(name) {
                return Ok(idx);
            }
        }
        Err(EngineError::unsupported(
            format!("unbound variable `${name}`"),
            Some(span),
        ))
    }
}

/// Converts a (qualifier-free) path's steps into pattern steps.
///
/// The NFA packs its state set into a `u64` with one bit per step plus
/// the accept bit, so `PathPattern::MAX_STEPS` (63) is a hard width
/// limit: longer patterns get a structured `Unsupported` error here
/// instead of a silent bitmask wraparound downstream.
fn pat_steps(path: &PathExpr) -> Result<Vec<PatStep>> {
    debug_assert!(path.is_desugared() || matches!(path.root, Root::Var(_) | Root::Doc(_)));
    if path.steps.len() > vx_skeleton::PathPattern::MAX_STEPS {
        return Err(EngineError::unsupported(
            format!(
                "path pattern with more than {} steps",
                vx_skeleton::PathPattern::MAX_STEPS
            ),
            Some(path.span),
        ));
    }
    Ok(path
        .steps
        .iter()
        .map(|s| PatStep {
            descend: matches!(s.axis, Axis::DescendantOrSelf),
            test: match &s.test {
                NameTest::Name(n) => PatTest::Name(n.clone()),
                NameTest::Any => PatTest::Any,
            },
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vx_xquery::parse_query;

    fn graph(src: &str) -> QueryGraph {
        compile(&parse_query(src).unwrap()).unwrap()
    }

    #[test]
    fn compiles_selection_projection() {
        let g = graph(
            r#"for $x in doc("ml")/Set/Citation
               where $x/Language = "ENG" and exists($x/Article)
               return $x/PMID"#,
        );
        assert_eq!(g.vars.len(), 1);
        assert_eq!(g.vars[0].doc.as_deref(), Some("ml"));
        assert_eq!(g.vars[0].steps.len(), 2);
        assert_eq!(g.block.filters.len(), 2);
        assert!(matches!(g.block.output, Output::Values(_)));
    }

    #[test]
    fn wildcards_and_descendants_compile() {
        let g = graph(r#"for $x in doc("d")/a//b, $y in $x/* return $y/c"#);
        assert!(g.vars[0].steps[1].descend);
        assert_eq!(g.vars[1].steps[0].test, PatTest::Any);
        assert_eq!(g.vars[1].parent, Some(0));
    }

    #[test]
    fn path_equality_becomes_a_join_edge() {
        let g = graph(
            r#"for $x in doc("a")/r/e, $y in doc("b")/s/f
               where $x/k = $y/k
               return $x/v"#,
        );
        assert_eq!(g.block.joins.len(), 1);
        let join = &g.block.joins[0];
        assert_eq!(g.refs[join.left].var, 0);
        assert_eq!(g.refs[join.right].var, 1);
        // Checked once both sides are bound: at the later variable.
        assert_eq!(join.ready_at, Some(1));
        assert_eq!(g.doc_names(), vec!["a", "b"]);
    }

    #[test]
    fn same_variable_equality_is_a_pair_filter() {
        let g = graph(r#"for $x in doc("d")/r/e where $x/a = $x/b return $x/v"#);
        assert!(g.block.joins.is_empty());
        assert!(matches!(
            g.block.filters[0].test,
            FilterTest::PathPair(_, _)
        ));
    }

    #[test]
    fn document_rooted_condition_synthesizes_an_anchor() {
        let g = graph(
            r#"for $x in doc("d")/r/e
               where doc("d")/r/meta/version = "2"
               return $x/v"#,
        );
        assert_eq!(g.vars.len(), 2);
        assert_eq!(g.vars[1].name, "");
        assert!(g.vars[1].steps.is_empty());
        assert_eq!(g.block.vars, vec![0, 1]);
    }

    #[test]
    fn constructors_compile_to_templates() {
        let g = graph(
            r#"for $x in doc("d")/r/e
               return <r>{$x/a}<w>{for $z in $x/c return $z/t}</w></r>"#,
        );
        let tpl = match &g.block.output {
            Output::Document(t) => t,
            other => panic!("expected template, got {other:?}"),
        };
        assert_eq!(tpl.tag, "r");
        assert!(matches!(tpl.content[0], TplItem::Copy(_)));
        match &tpl.content[1] {
            TplItem::Element(w) => assert!(matches!(w.content[0], TplItem::Block(_))),
            other => panic!("expected nested element, got {other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_fragment_shapes_with_structured_errors() {
        for (src, needle) in [
            (r#"for $x in doc("d")/a return $x"#, "whole-element return"),
            (
                r#"for $x in doc("d")/a return doc("d")/b"#,
                "document-rooted return",
            ),
            (
                r#"for $x in doc("d")/a return <r>{$x/b[c]}</r>"#,
                "qualifier in constructor content",
            ),
            (
                r#"for $x in doc("d")/a where $y/b = "1" return $x/c"#,
                "unbound variable",
            ),
        ] {
            let q = parse_query(src).unwrap();
            match compile(&q) {
                Err(EngineError::Unsupported { construct, span }) => {
                    assert!(
                        construct.contains(needle),
                        "{src}: construct {construct:?} missing {needle:?}"
                    );
                    assert!(span.is_some(), "{src}: expected a span");
                }
                other => panic!("{src}: expected Unsupported, got {other:?}"),
            }
        }
    }
}
