//! Naive decompress-evaluate oracle.
//!
//! Evaluates a [`QueryGraph`] by rebuilding the document with
//! [`vx_core::reconstruct`] and walking the DOM — the slow baseline the
//! paper's reduce must match. Shared semantics with [`crate::reduce`]:
//! a target occurrence survives a filter iff its ancestor at the filter's
//! anchor depth satisfies the test existentially; attribute steps are
//! `@name` components; `Eq` compares individual text-node values.

use crate::graph::{QueryGraph, Test};
use crate::Result;
use vx_core::VecDoc;
use vx_xml::{Document, Element, Node};

/// Evaluates `graph` the slow way: reconstruct then walk.
pub fn naive_eval(doc: &VecDoc, graph: &QueryGraph) -> Result<Vec<Vec<u8>>> {
    if doc.root.is_none() {
        return Ok(Vec::new());
    }
    let document = vx_core::reconstruct(doc)?;
    Ok(eval_dom(&document, graph))
}

fn eval_dom(document: &Document, graph: &QueryGraph) -> Vec<Vec<u8>> {
    // Document-level filters first: all-or-nothing.
    for filter in graph.filters.iter().filter(|f| f.anchor == 0) {
        let holds = match &filter.test {
            Test::Exists => !path_elements(&document.root, &filter.rel).is_empty(),
            Test::Eq(lit) => texts_along(&document.root, &filter.rel)
                .iter()
                .any(|t| t == lit),
        };
        if !holds {
            return Vec::new();
        }
    }

    // Enumerate target occurrences with their ancestor chains.
    let mut out = Vec::new();
    let mut chain: Vec<&Element> = Vec::new();
    walk_targets(&document.root, &graph.target, &mut chain, &mut |chain| {
        let keep = graph.filters.iter().filter(|f| f.anchor > 0).all(|f| {
            let anchor = chain[f.anchor - 1];
            match &f.test {
                Test::Exists => !path_elements_rel(anchor, &f.rel).is_empty(),
                Test::Eq(lit) => texts_rel(anchor, &f.rel).iter().any(|t| t == lit),
            }
        });
        if keep {
            let target = chain.last().expect("chain holds the target");
            out.extend(
                texts_rel(target, &graph.ret_rel)
                    .into_iter()
                    .map(String::into_bytes),
            );
        }
    });
    out
}

/// Depth-first walk of all occurrences of the absolute path, calling `f`
/// with the full ancestor chain (depth 1 ... target) for each occurrence.
fn walk_targets<'a>(
    root: &'a Element,
    path: &[String],
    chain: &mut Vec<&'a Element>,
    f: &mut impl FnMut(&[&'a Element]),
) {
    let (first, rest) = match path.split_first() {
        Some(p) => p,
        None => return,
    };
    if &root.name != first {
        return;
    }
    chain.push(root);
    if rest.is_empty() {
        f(chain);
    } else {
        go(root, rest, chain, f);
    }
    chain.pop();

    fn go<'a>(
        elem: &'a Element,
        rest: &[String],
        chain: &mut Vec<&'a Element>,
        f: &mut impl FnMut(&[&'a Element]),
    ) {
        let (next, tail) = rest.split_first().expect("rest non-empty");
        for child in elem.child_elements() {
            if &child.name == next {
                chain.push(child);
                if tail.is_empty() {
                    f(chain);
                } else {
                    go(child, tail, chain, f);
                }
                chain.pop();
            }
        }
    }
}

/// Elements at the absolute path (root tag first).
fn path_elements<'a>(root: &'a Element, path: &[String]) -> Vec<&'a Element> {
    match path.split_first() {
        None => Vec::new(),
        Some((first, rest)) if &root.name == first => {
            if rest.is_empty() {
                vec![root]
            } else {
                path_elements_rel(root, rest)
            }
        }
        _ => Vec::new(),
    }
}

/// Elements at the relative path below `elem`. A trailing `@name`
/// component matches iff the attribute exists, standing in for the
/// synthetic attribute element of the vectorized encoding.
fn path_elements_rel<'a>(elem: &'a Element, rel: &[String]) -> Vec<&'a Element> {
    match rel.split_first() {
        None => vec![elem],
        Some((step, rest)) => {
            if let Some(attr) = step.strip_prefix('@') {
                // Attribute steps terminate; the element "exists" iff the
                // attribute does.
                if rest.is_empty() && elem.attr(attr).is_some() {
                    return vec![elem];
                }
                return Vec::new();
            }
            let mut out = Vec::new();
            for child in elem.child_elements() {
                if child.name == *step {
                    out.extend(path_elements_rel(child, rest));
                }
            }
            out
        }
    }
}

/// Text values at the absolute path.
fn texts_along(root: &Element, path: &[String]) -> Vec<String> {
    match path.split_first() {
        Some((first, rest)) if &root.name == first => texts_rel(root, rest),
        _ => Vec::new(),
    }
}

/// Individual text values at the relative path below `elem`, in document
/// order: text/CDATA node values of the addressed elements, or the value
/// of a trailing `@name` attribute.
fn texts_rel(elem: &Element, rel: &[String]) -> Vec<String> {
    match rel.split_first() {
        None => elem
            .children
            .iter()
            .filter_map(|n| match n {
                Node::Text(t) | Node::CData(t) => Some(t.clone()),
                _ => None,
            })
            .collect(),
        Some((step, rest)) => {
            if let Some(attr) = step.strip_prefix('@') {
                if rest.is_empty() {
                    return elem.attr(attr).map(str::to_string).into_iter().collect();
                }
                return Vec::new();
            }
            let mut out = Vec::new();
            for child in elem.child_elements() {
                if child.name == *step {
                    out.extend(texts_rel(child, rest));
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::compile;
    use crate::reduce::reduce;
    use vx_core::vectorize;
    use vx_xquery::parse_query;

    /// The differential contract: reduce over VEC(T) must agree with the
    /// naive decompress-evaluate oracle on every supported query.
    #[test]
    fn reduce_matches_oracle() {
        let xml = r#"<site>
            <people>
                <person id="p1"><name>ann</name><city>oslo</city><card/></person>
                <person id="p2"><name>bob</name><city>lima</city></person>
                <person id="p3"><name>cat</name><city>oslo</city><card/><card/></person>
            </people>
            <people>
                <person id="p4"><name>dan</name><city>kiev</city></person>
            </people>
            <meta><version>2</version></meta>
        </site>"#;
        let document = vx_xml::parse(xml).unwrap();
        let doc = vectorize(&document).unwrap();

        let queries = [
            r#"for $p in doc("s")/site/people/person return $p/name"#,
            r#"for $p in doc("s")/site/people/person where $p/city = "oslo" return $p/name"#,
            r#"for $p in doc("s")/site/people/person where exists($p/card) return $p/name"#,
            r#"for $p in doc("s")/site/people/person[city = "kiev"] return $p/@id"#,
            r#"for $p in doc("s")/site/people/person
               where $p/city = "oslo" and exists($p/card)
               return $p/@id"#,
            r#"for $g in doc("s")/site/people, $p in $g/person
               where $g/person/city = "kiev"
               return $p/name"#,
            r#"for $p in doc("s")/site/people/person
               where doc("s")/site/meta/version = "2" and $p/city = "lima"
               return $p/name"#,
            r#"for $p in doc("s")/site/people/person where $p/city = "nowhere" return $p/name"#,
            r#"for $p in doc("s")/site/absent/person return $p/name"#,
        ];
        for query in queries {
            let graph = compile(&parse_query(query).unwrap()).unwrap();
            let fast = reduce(&doc, &graph).unwrap();
            let slow = naive_eval(&doc, &graph).unwrap();
            assert_eq!(fast, slow, "reduce and oracle disagree on {query}");
        }
    }

    #[test]
    fn oracle_respects_filters() {
        let xml = r#"<r><a><b>1</b><k>yes</k></a><a><b>2</b></a></r>"#;
        let doc = vectorize(&vx_xml::parse(xml).unwrap()).unwrap();
        let graph = compile(
            &parse_query(r#"for $a in doc("d")/r/a where exists($a/k) return $a/b"#).unwrap(),
        )
        .unwrap();
        let values = naive_eval(&doc, &graph).unwrap();
        assert_eq!(values, vec![b"1".to_vec()]);
    }
}
