//! The differential oracle: naive nested-loop XQ[*,//] evaluation over a
//! DOM.
//!
//! [`naive_eval`] shares nothing with [`crate::reduce`] beyond the
//! desugared AST: it walks [`vx_xml`] trees with per-step node-set
//! expansion, nested `for` loops in binding order, and plain conjunctive
//! condition checks per tuple. Every engine test asserts
//! `reduce == naive_eval` — value outputs compare byte-for-byte, and
//! constructed documents compare by serialized XML (the engine's
//! vectorized result is reconstructed first).
//!
//! Attributes take part exactly as they do in vectorized form: each
//! attribute is a pseudo-child named `@name` holding one text value, `*`
//! never matches pseudo-children, and copying one into a constructor
//! attaches it to the constructed element as an attribute.

use crate::{EngineError, Result};
use std::collections::{HashMap, HashSet};
use vx_xml::{Document, Element, Node};
use vx_xquery::{
    desugar, Axis, Condition, Content, ElemConstructor, NameTest, Operand, PathExpr, Query,
    ReturnExpr, Root, Step,
};

/// What a naive evaluation produced: mirror of [`crate::QueryOutput`],
/// but DOM-shaped.
#[derive(Debug, Clone)]
pub enum NaiveOutput {
    Values(Vec<Vec<u8>>),
    /// The constructed elements under the same synthetic `<results>`
    /// root the engine emits.
    Document(Document),
}

/// Evaluates `query` against named DOM documents by brute force.
pub fn naive_eval(query: &Query, docs: &[(&str, &Document)]) -> Result<NaiveOutput> {
    let query = desugar(query);
    let ctx = Ctx {
        docs,
        order: document_order(docs),
    };
    match &query.ret {
        ReturnExpr::Path(_) => {
            let mut out = Vec::new();
            let mut env = Vec::new();
            eval_query(&query, &ctx, &mut env, &mut NaiveSink::Values(&mut out))?;
            Ok(NaiveOutput::Values(out))
        }
        ReturnExpr::Element(_) => {
            let mut results = Element::new("results");
            let mut env = Vec::new();
            eval_query(&query, &ctx, &mut env, &mut NaiveSink::Elem(&mut results))?;
            Ok(NaiveOutput::Document(Document::from_root(results)))
        }
    }
}

/// Evaluation context: the named documents plus a global document-order
/// numbering of every node (doc pseudo-nodes, elements, attribute
/// pseudo-children), keyed by [`NodeRef::identity`]. Step expansion
/// sorts by it so node-sets come out in document order even when a
/// descendant step's matches nest inside each other.
struct Ctx<'a> {
    docs: &'a [(&'a str, &'a Document)],
    order: HashMap<usize, u64>,
}

fn document_order(docs: &[(&str, &Document)]) -> HashMap<usize, u64> {
    fn number(node: NodeRef<'_>, order: &mut HashMap<usize, u64>, counter: &mut u64) {
        order.insert(node.identity(), *counter);
        *counter += 1;
        for child in node.children() {
            number(child, order, counter);
        }
    }
    let mut order = HashMap::new();
    let mut counter = 0u64;
    for (_, doc) in docs {
        number(NodeRef::Doc(&doc.root), &mut order, &mut counter);
    }
    order
}

/// A node the path language can visit: the virtual document node (whose
/// only child is the root element), an element, or an attribute
/// pseudo-node. Identity (for per-start dedup) is pointer identity.
#[derive(Clone, Copy)]
enum NodeRef<'a> {
    Doc(&'a Element),
    Elem(&'a Element),
    Attr(&'a (String, String)),
}

impl<'a> NodeRef<'a> {
    fn identity(self) -> usize {
        match self {
            // Distinguish Doc(root) from Elem(root): offset by 1 (the
            // pointee is larger than a byte, so this cannot collide).
            NodeRef::Doc(e) => (e as *const Element as usize) + 1,
            NodeRef::Elem(e) => e as *const Element as usize,
            NodeRef::Attr(a) => a as *const (String, String) as usize,
        }
    }

    /// Children in document order: attributes (as pseudo-children)
    /// first, then child elements — mirroring vectorization order.
    fn children(self) -> Vec<NodeRef<'a>> {
        match self {
            NodeRef::Doc(root) => vec![NodeRef::Elem(root)],
            NodeRef::Attr(_) => Vec::new(),
            NodeRef::Elem(e) => {
                let mut out: Vec<NodeRef<'a>> = e.attributes.iter().map(NodeRef::Attr).collect();
                out.extend(e.child_elements().map(NodeRef::Elem));
                out
            }
        }
    }

    fn matches(self, test: &NameTest) -> bool {
        match self {
            NodeRef::Doc(_) => false,
            NodeRef::Elem(e) => match test {
                NameTest::Name(t) => t == &e.name,
                NameTest::Any => !e.name.starts_with('@'),
            },
            NodeRef::Attr((n, _)) => match test {
                NameTest::Name(t) => t.strip_prefix('@') == Some(n.as_str()),
                NameTest::Any => false,
            },
        }
    }

    /// The node's directly contained text values, in order.
    fn texts(self) -> Vec<Vec<u8>> {
        match self {
            NodeRef::Doc(_) => Vec::new(),
            NodeRef::Attr((_, v)) => vec![v.clone().into_bytes()],
            NodeRef::Elem(e) => e
                .children
                .iter()
                .filter_map(|c| match c {
                    Node::Text(t) | Node::CData(t) => Some(t.clone().into_bytes()),
                    _ => None,
                })
                .collect(),
        }
    }

    fn descendants_preorder(self, out: &mut Vec<NodeRef<'a>>) {
        for child in self.children() {
            out.push(child);
            child.descendants_preorder(out);
        }
    }
}

/// Expands `steps` from a single start node; results are in document
/// order, deduplicated (a node reachable along two step derivations
/// counts once, like one NFA machine accepting once per element).
///
/// The post-step sort matters: per-node expansion concatenates child
/// lists, which is *not* document order once a descendant step's
/// matches nest (all of an outer match's children would precede an
/// inner match's, even when the inner subtree sits between them).
fn match_steps<'a>(start: NodeRef<'a>, steps: &[Step], ctx: &Ctx<'a>) -> Vec<NodeRef<'a>> {
    let mut current = vec![start];
    for step in steps {
        let mut next = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        for node in &current {
            let pool: Vec<NodeRef<'a>> = match step.axis {
                Axis::Child => node.children(),
                Axis::DescendantOrSelf => {
                    let mut all = Vec::new();
                    node.descendants_preorder(&mut all);
                    all
                }
            };
            for candidate in pool {
                if candidate.matches(&step.test) && seen.insert(candidate.identity()) {
                    next.push(candidate);
                }
            }
        }
        next.sort_by_key(|n| ctx.order.get(&n.identity()).copied().unwrap_or(u64::MAX));
        current = next;
    }
    current
}

type Env<'a> = Vec<(String, NodeRef<'a>)>;

fn resolve_path<'a>(path: &PathExpr, ctx: &Ctx<'a>, env: &Env<'a>) -> Result<Vec<NodeRef<'a>>> {
    debug_assert!(path.is_desugared(), "oracle runs on desugared paths");
    let start = match &path.root {
        Root::Var(name) => env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, node)| *node)
            .ok_or_else(|| {
                EngineError::unsupported(format!("unbound variable `${name}`"), Some(path.span))
            })?,
        Root::Doc(name) => {
            let doc = ctx
                .docs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| *d)
                .ok_or_else(|| EngineError::UnknownDocument(name.clone()))?;
            NodeRef::Doc(&doc.root)
        }
    };
    Ok(match_steps(start, &path.steps, ctx))
}

fn path_values<'a>(path: &PathExpr, ctx: &Ctx<'a>, env: &Env<'a>) -> Result<Vec<Vec<u8>>> {
    Ok(resolve_path(path, ctx, env)?
        .into_iter()
        .flat_map(|n| n.texts())
        .collect())
}

fn condition_holds<'a>(condition: &Condition, ctx: &Ctx<'a>, env: &Env<'a>) -> Result<bool> {
    match condition {
        Condition::Exists(p) => Ok(!resolve_path(p, ctx, env)?.is_empty()),
        Condition::Eq(p, Operand::Literal(lit)) => Ok(path_values(p, ctx, env)?
            .iter()
            .any(|v| v == lit.as_bytes())),
        Condition::Eq(left, Operand::Path(right)) => {
            let lvals: HashSet<Vec<u8>> = path_values(left, ctx, env)?.into_iter().collect();
            Ok(path_values(right, ctx, env)?
                .iter()
                .any(|v| lvals.contains(v)))
        }
    }
}

enum NaiveSink<'x> {
    Values(&'x mut Vec<Vec<u8>>),
    /// Emission appends to this element's children (and attributes, for
    /// copied attribute nodes).
    Elem(&'x mut Element),
}

fn eval_query<'a>(
    query: &Query,
    ctx: &Ctx<'a>,
    env: &mut Env<'a>,
    sink: &mut NaiveSink<'_>,
) -> Result<()> {
    bind(query, 0, ctx, env, sink)
}

fn bind<'a>(
    query: &Query,
    depth: usize,
    ctx: &Ctx<'a>,
    env: &mut Env<'a>,
    sink: &mut NaiveSink<'_>,
) -> Result<()> {
    match query.bindings.get(depth) {
        Some(binding) => {
            for node in resolve_path(&binding.path, ctx, env)? {
                env.push((binding.var.clone(), node));
                bind(query, depth + 1, ctx, env, sink)?;
                env.pop();
            }
            Ok(())
        }
        None => {
            for condition in &query.conditions {
                if !condition_holds(condition, ctx, env)? {
                    return Ok(());
                }
            }
            emit(&query.ret, ctx, env, sink)
        }
    }
}

fn emit<'a>(
    ret: &ReturnExpr,
    ctx: &Ctx<'a>,
    env: &mut Env<'a>,
    sink: &mut NaiveSink<'_>,
) -> Result<()> {
    match ret {
        ReturnExpr::Path(p) => {
            for value in path_values(p, ctx, env)? {
                match sink {
                    NaiveSink::Values(out) => out.push(value),
                    NaiveSink::Elem(el) => el
                        .children
                        .push(Node::Text(String::from_utf8_lossy(&value).into_owned())),
                }
            }
            Ok(())
        }
        ReturnExpr::Element(c) => {
            let rendered = render(c, ctx, env)?;
            match sink {
                NaiveSink::Elem(el) => {
                    el.children.push(Node::Element(rendered));
                    Ok(())
                }
                NaiveSink::Values(_) => Err(EngineError::Corrupt(
                    "constructor output into a value sink".into(),
                )),
            }
        }
    }
}

fn render<'a>(c: &ElemConstructor, ctx: &Ctx<'a>, env: &mut Env<'a>) -> Result<Element> {
    let mut el = Element::new(c.tag.clone());
    for item in &c.content {
        match item {
            Content::Path(p) => {
                if !p.is_desugared() {
                    return Err(EngineError::unsupported(
                        "qualifier in constructor content (filter in the `where` \
                         clause instead)",
                        Some(p.span),
                    ));
                }
                for node in resolve_path(p, ctx, env)? {
                    match node {
                        NodeRef::Elem(e) => el.children.push(Node::Element(e.clone())),
                        NodeRef::Doc(root) => el.children.push(Node::Element(root.clone())),
                        NodeRef::Attr((name, value)) => {
                            el.attributes.push((name.clone(), value.clone()))
                        }
                    }
                }
            }
            Content::Element(inner) => {
                let rendered = render(inner, ctx, env)?;
                el.children.push(Node::Element(rendered));
            }
            Content::Query(q) => {
                eval_query(q, ctx, env, &mut NaiveSink::Elem(&mut el))?;
            }
        }
    }
    Ok(el)
}
