//! Query profiles: per-step spans and counters recorded by an
//! instrumented [`crate::reduce`] run.
//!
//! A profile partitions one evaluation into the engine's operation
//! steps, in execution order:
//!
//! | step | covers |
//! |---|---|
//! | `plan` | document resolution, variable/reference setup |
//! | `match:<doc>` | the NFA pattern-match pass over `<doc>`'s skeleton (one per referenced document) |
//! | `group` | flattening value groups, building per-parent candidate lists |
//! | `join-build` | building the hash-join indexes over build-side extended vectors |
//! | `enumerate` | tuple enumeration: binding, selections, hash probes |
//! | `output` | value projection / element construction (time re-attributed out of `enumerate`) |
//!
//! The spans are recorded as chained boundaries ([`vx_obs::Spans::tile`])
//! so they tile [`QueryProfile::total_secs`] exactly, up to
//! floating-point rounding — `tests/metrics.rs` pins this.
//!
//! Counters ([`QueryProfile::counters`]) depend only on the query, the
//! store, and the engine version — never on wall time — so repeated runs
//! produce identical values:
//!
//! | counter | meaning |
//! |---|---|
//! | `skeleton.visits` | skeleton elements entered by the match pass |
//! | `skeleton.bulk_skips` | subtrees bulk-skipped via the memoized text layout |
//! | `nfa.advances` | NFA machine-advance operations (machines × elements) |
//! | `nfa.accepts` | pattern accept events |
//! | `cursor.values.passed` | text values passed one edge at a time |
//! | `cursor.values.skipped` | text values bulk-advanced without visiting |
//! | `occ.rows` | extended-vector rows collected (all variables) |
//! | `join.build.entries` | occurrence entries inserted into hash-join indexes |
//! | `join.probe.hits` / `join.probe.misses` | hash probes that found / missed a build-side match |
//! | `filter.checks` / `filter.passes` | selection filter evaluations / successes |
//! | `tuples.emitted` | binding tuples reaching the output step |
//! | `values.emitted` | text values projected or streamed into construction |

pub use vx_obs::{Counters, Span};

/// The occurrence count one variable collected — the cardinality of its
/// extended vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarCardinality {
    /// Source variable name (`$x`), or `""` for synthesized document
    /// anchors.
    pub name: String,
    /// Occurrences collected by the match pass.
    pub occurrences: u64,
}

/// Everything an instrumented evaluation recorded.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// Per-step spans in execution order; they tile `total_secs`.
    pub steps: Vec<Span>,
    /// Deterministic operation counters (see module docs for the
    /// inventory).
    pub counters: Counters,
    /// Extended-vector cardinality per query variable, in graph order.
    pub variables: Vec<VarCardinality>,
    /// Wall-clock seconds for the whole `reduce`.
    pub total_secs: f64,
}

impl QueryProfile {
    /// Sum of the step spans (≈ `total_secs`; exact up to rounding).
    pub fn steps_total(&self) -> f64 {
        self.steps.iter().map(|s| s.secs).sum()
    }

    /// Seconds attributed to step `name` (0.0 when absent). Step names
    /// are unique per profile except `match:<doc>`, which this sums.
    pub fn step_secs(&self, name: &str) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.secs)
            .sum()
    }

    /// Emits the profile to the `VX_LOG` event sink (no-op when the sink
    /// is disabled): one `engine.step` event per span, then one
    /// `engine.reduce` event carrying the totals and counters. When
    /// `trace` is set (the server's per-request id from
    /// [`crate::RunOptions::trace`]), every event carries a `trace`
    /// field so concurrent runs' spans and counter deltas stay
    /// distinguishable in one interleaved log.
    pub fn log(&self, query_hint: &str, trace: Option<vx_obs::TraceId>) {
        if !vx_obs::log_enabled() {
            return;
        }
        let trace_str = trace.map(|t| t.to_string());
        for step in &self.steps {
            let mut fields: Vec<(&str, vx_obs::Value<'_>)> = vec![
                ("query", vx_obs::Value::Str(query_hint)),
                ("step", vx_obs::Value::Str(&step.name)),
                ("secs", vx_obs::Value::F64(step.secs)),
            ];
            if let Some(t) = &trace_str {
                fields.push(("trace", vx_obs::Value::Str(t)));
            }
            vx_obs::event("engine.step", &fields);
        }
        let mut fields: Vec<(&str, vx_obs::Value<'_>)> = vec![
            ("query", vx_obs::Value::Str(query_hint)),
            ("total_secs", vx_obs::Value::F64(self.total_secs)),
        ];
        let counters: Vec<(&'static str, u64)> = self.counters.iter().collect();
        for (name, value) in &counters {
            fields.push((name, vx_obs::Value::U64(*value)));
        }
        if let Some(t) = &trace_str {
            fields.push(("trace", vx_obs::Value::Str(t)));
        }
        vx_obs::event("engine.reduce", &fields);
    }
}
