//! Vectorized evaluation of a [`QueryGraph`] — the paper's `reduce`.
//!
//! Evaluation never rebuilds a document. It makes **one pass over each
//! document's hash-consed skeleton**, running every variable and value
//! reference pattern as an NFA "machine" (the bitmask automata of
//! [`vx_skeleton::PathPattern`]). During the pass it collects *extended
//! vectors*: per-occurrence rows holding the parent occurrence, the
//! vector positions of referenced text values (document order makes each
//! occurrence's values a run of cursor positions), existence flags, and
//! copy tasks (a skeleton node plus a cursor snapshot — enough to stream
//! a deep copy later without having visited it).
//!
//! Subtrees in which no machine is alive are never entered: the memoized
//! per-node text layout ([`PathIndex::texts_below`]) bulk advances the
//! per-path cursors across them, so the pass touches only the parts of
//! the skeleton the query mentions plus `O(paths)` work per skipped
//! subtree.
//!
//! Tuple enumeration then runs *selections before joins*: literal
//! filters are checked the moment a variable binds, while equality edges
//! hash-probe an index built over the join side bound last
//! ([`crate::Join::ready_at`]). Binding order is document order, so
//! results come out in document order without sorting. Output either
//! projects value bytes or streams element construction into a
//! [`VecDocBuilder`] — the result of a constructor query is itself a
//! vectorized document, never a DOM.

use crate::graph::{
    Block, FilterTest, Output, PatStep, PatTest, QueryGraph, RefKind, Template, TplItem,
};
use crate::{EngineError, QueryOutput, Result};
use std::collections::{HashMap, HashSet};
use vx_core::{VecDoc, VecDocBuilder};
use vx_skeleton::{NodeId, PathIndex, PathPattern, PatternStep, PatternTest, Skeleton};

/// Evaluates `graph` against the named documents. Every `doc("…")` name
/// the graph mentions must appear in `docs` (first entry wins on
/// duplicates).
pub fn reduce(graph: &QueryGraph, docs: &[(&str, &VecDoc)]) -> Result<QueryOutput> {
    // Resolve document names.
    let mut doc_of_name: HashMap<&str, usize> = HashMap::new();
    for (i, (name, _)) in docs.iter().enumerate() {
        doc_of_name.entry(name).or_insert(i);
    }
    for name in graph.doc_names() {
        if !doc_of_name.contains_key(name) {
            return Err(EngineError::UnknownDocument(name.to_string()));
        }
    }

    // Each variable evaluates inside exactly one document: its root
    // ancestor's. (`vars` is topologically ordered, parents first.)
    let mut var_doc: Vec<usize> = Vec::with_capacity(graph.vars.len());
    for var in &graph.vars {
        let d = match (&var.doc, var.parent) {
            (Some(name), _) => doc_of_name[name.as_str()],
            (None, Some(p)) => var_doc[p],
            (None, None) => {
                return Err(EngineError::Corrupt(
                    "variable with neither document nor parent root".into(),
                ))
            }
        };
        var_doc.push(d);
    }

    let mut var_children: Vec<Vec<usize>> = vec![Vec::new(); graph.vars.len()];
    for (v, var) in graph.vars.iter().enumerate() {
        if let Some(p) = var.parent {
            var_children[p].push(v);
        }
    }
    let mut refs_of_var: Vec<Vec<usize>> = vec![Vec::new(); graph.vars.len()];
    for (r, vref) in graph.refs.iter().enumerate() {
        refs_of_var[vref.var].push(r);
    }

    // --- Collection: one skeleton pass per referenced document. -------
    let mut state = State::new(graph);
    for (doc_idx, (_, doc)) in docs.iter().enumerate() {
        if !var_doc.contains(&doc_idx) {
            continue;
        }
        collect_doc(
            graph,
            doc,
            doc_idx,
            &var_doc,
            &var_children,
            &refs_of_var,
            &mut state,
        )?;
    }
    state.flatten_values();

    // Candidate lists: occurrences of each variable grouped by parent
    // occurrence (document order within each group).
    let mut child_occs: Vec<Vec<Vec<usize>>> = Vec::with_capacity(graph.vars.len());
    for (v, var) in graph.vars.iter().enumerate() {
        match var.parent {
            Some(p) => {
                let mut groups = vec![Vec::new(); state.occ_parent[p].len()];
                for (occ, &parent) in state.occ_parent[v].iter().enumerate() {
                    groups[parent].push(occ);
                }
                child_occs.push(groups);
            }
            None => child_occs.push(Vec::new()),
        }
    }

    let eval = Eval {
        graph,
        docs,
        var_doc: &var_doc,
        state: &state,
        child_occs: &child_occs,
        join_index: build_join_indexes(graph, docs, &var_doc, &state),
    };

    let mut env = vec![usize::MAX; graph.vars.len()];
    match &graph.block.output {
        Output::Values(_) => {
            let mut out = Vec::new();
            eval.run_block(&graph.block, &mut env, &mut Sink::Values(&mut out))?;
            Ok(QueryOutput::Values(out))
        }
        Output::Document(_) => {
            let mut builder = VecDocBuilder::new();
            builder.begin_element("results");
            eval.run_block(&graph.block, &mut env, &mut Sink::Builder(&mut builder))?;
            builder.end_element();
            Ok(QueryOutput::Document(builder.finish()?))
        }
    }
}

// ---------------------------------------------------------------------
// Extended-vector state collected by the skeleton pass.
// ---------------------------------------------------------------------

/// A recorded deep copy: enough to stream the subtree later without
/// having entered it during collection.
#[derive(Debug, Clone)]
struct CopyTask {
    node: NodeId,
    /// Absolute tag path of `node` (its own tag included).
    path: String,
    /// Per-path cursor positions at the moment the copy root was
    /// reached; paths absent from the snapshot had position 0.
    cursors: HashMap<String, usize>,
}

/// Per-reference collected data, indexed `[occurrence of owning var]`.
#[derive(Debug)]
enum RefData {
    Exists(Vec<bool>),
    /// Groups of `(vector index, value index)` — one group per accepting
    /// element, in document order; flattened after collection.
    Values(Vec<Vec<Vec<(usize, usize)>>>),
    /// Post-collection flattened form of `Values`.
    Flat(Vec<Vec<(usize, usize)>>),
    Copy(Vec<Vec<CopyTask>>),
}

struct State {
    /// `[var][occ]` → parent occurrence index (0 under a document root).
    occ_parent: Vec<Vec<usize>>,
    /// `[ref]` → per-occurrence data.
    ref_data: Vec<RefData>,
}

impl State {
    fn new(graph: &QueryGraph) -> State {
        State {
            occ_parent: vec![Vec::new(); graph.vars.len()],
            ref_data: graph
                .refs
                .iter()
                .map(|r| match r.kind {
                    RefKind::Exists => RefData::Exists(Vec::new()),
                    RefKind::Values => RefData::Values(Vec::new()),
                    RefKind::Copy => RefData::Copy(Vec::new()),
                })
                .collect(),
        }
    }

    fn flatten_values(&mut self) {
        for data in &mut self.ref_data {
            if let RefData::Values(groups) = data {
                let flat = groups
                    .drain(..)
                    .map(|g| g.into_iter().flatten().collect())
                    .collect();
                *data = RefData::Flat(flat);
            }
        }
    }

    fn exists(&self, r: usize, occ: usize) -> bool {
        match &self.ref_data[r] {
            RefData::Exists(v) => v[occ],
            _ => false,
        }
    }

    fn values(&self, r: usize, occ: usize) -> &[(usize, usize)] {
        match &self.ref_data[r] {
            RefData::Flat(v) => &v[occ],
            _ => &[],
        }
    }

    fn copies(&self, r: usize, occ: usize) -> &[CopyTask] {
        match &self.ref_data[r] {
            RefData::Copy(v) => &v[occ],
            _ => &[],
        }
    }
}

// ---------------------------------------------------------------------
// Collection: the single skeleton pass per document.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Var(usize),
    Ref(usize),
}

#[derive(Debug, Clone)]
struct Machine {
    target: Target,
    /// For `Var`: the parent variable's occurrence. For `Ref`: the
    /// owning variable's occurrence.
    owner: usize,
    states: u64,
}

/// A `Values` reference whose pattern accepted at the current element:
/// the element's direct text children land in group `group`.
struct Collector {
    r: usize,
    occ: usize,
    group: usize,
}

fn pattern_of(steps: &[PatStep], skeleton: &Skeleton) -> Result<PathPattern> {
    PathPattern::new(
        steps
            .iter()
            .map(|s| PatternStep {
                descend: s.descend,
                test: match &s.test {
                    PatTest::Name(n) => PatternTest::Name(skeleton.name_id(n)),
                    PatTest::Any => PatternTest::Any,
                },
            })
            .collect(),
    )
    .ok_or_else(|| EngineError::unsupported("path pattern with more than 63 steps", None))
}

fn collect_doc(
    graph: &QueryGraph,
    doc: &VecDoc,
    doc_idx: usize,
    var_doc: &[usize],
    var_children: &[Vec<usize>],
    refs_of_var: &[Vec<usize>],
    state: &mut State,
) -> Result<()> {
    let root = doc
        .root
        .ok_or_else(|| EngineError::Corrupt("document has no root".into()))?;
    let skeleton = &doc.skeleton;
    let root_name = skeleton
        .node(root)
        .name
        .ok_or_else(|| EngineError::Corrupt("document root is a text node".into()))?;

    let mut var_pat: Vec<Option<PathPattern>> = vec![None; graph.vars.len()];
    let mut ref_pat: Vec<Option<PathPattern>> = vec![None; graph.refs.len()];
    for (v, var) in graph.vars.iter().enumerate() {
        if var_doc[v] == doc_idx {
            var_pat[v] = Some(pattern_of(&var.steps, skeleton)?);
        }
    }
    for (r, vref) in graph.refs.iter().enumerate() {
        if var_doc[vref.var] == doc_idx {
            ref_pat[r] = Some(pattern_of(&vref.steps, skeleton)?);
        }
    }

    let index = PathIndex::new(skeleton, root);

    // Integrity gate: every root-to-text path the skeleton counts must
    // be backed by a vector of exactly that many values, or evaluation
    // would silently return partial answers over a damaged store.
    for (rel, count) in index.text_paths() {
        let path: String = rel
            .iter()
            .map(|&n| skeleton.name(n))
            .collect::<Vec<_>>()
            .join("/");
        match doc.vector(&path) {
            None => {
                return Err(EngineError::Corrupt(format!(
                    "no vector for path {path} (skeleton counts {count})"
                )));
            }
            Some(vector) if vector.values.len() as u64 != count => {
                return Err(EngineError::Corrupt(format!(
                    "vector {path} has {} values, skeleton counts {count}",
                    vector.values.len()
                )));
            }
            Some(_) => {}
        }
    }

    let mut walker = Walker {
        doc,
        skeleton,
        index,
        graph,
        var_pat,
        ref_pat,
        var_children,
        refs_of_var,
        state,
        cursors: HashMap::new(),
        path: String::new(),
        root,
        root_path: skeleton.name(root_name).to_string(),
    };

    // The virtual super-root: document-rooted variables spawn here, so a
    // pattern's first step is matched against the root element itself.
    let mut machines = Vec::new();
    let mut collectors = Vec::new();
    for (v, var) in graph.vars.iter().enumerate() {
        if var.doc.is_some() && var_doc[v] == doc_idx {
            walker.spawn(Target::Var(v), 0, None, &mut machines, &mut collectors);
        }
    }
    walker.visit(root, &machines)
}

struct Walker<'a> {
    doc: &'a VecDoc,
    skeleton: &'a Skeleton,
    index: PathIndex<'a>,
    graph: &'a QueryGraph,
    var_pat: Vec<Option<PathPattern>>,
    ref_pat: Vec<Option<PathPattern>>,
    var_children: &'a [Vec<usize>],
    refs_of_var: &'a [Vec<usize>],
    state: &'a mut State,
    /// Per-path count of text values already passed, in document order.
    cursors: HashMap<String, usize>,
    /// Absolute tag path of the element being visited.
    path: String,
    root: NodeId,
    root_path: String,
}

impl Walker<'_> {
    fn pattern(&self, target: Target) -> &PathPattern {
        match target {
            Target::Var(v) => self.var_pat[v].as_ref().expect("pattern for local var"),
            Target::Ref(r) => self.ref_pat[r].as_ref().expect("pattern for local ref"),
        }
    }

    /// Starts a machine. An empty pattern accepts immediately at the
    /// spawn point (`at`; `None` is the virtual super-root).
    fn spawn(
        &mut self,
        target: Target,
        owner: usize,
        at: Option<NodeId>,
        machines: &mut Vec<Machine>,
        collectors: &mut Vec<Collector>,
    ) {
        machines.push(Machine {
            target,
            owner,
            states: PathPattern::START,
        });
        if self.pattern(target).is_empty() {
            self.accept(target, owner, at, machines, collectors);
        }
    }

    /// Handles a pattern reaching its accept state at `at`.
    fn accept(
        &mut self,
        target: Target,
        owner: usize,
        at: Option<NodeId>,
        machines: &mut Vec<Machine>,
        collectors: &mut Vec<Collector>,
    ) {
        match target {
            Target::Var(v) => {
                let occ = self.state.occ_parent[v].len();
                self.state.occ_parent[v].push(owner);
                for &r in self.refs_of_var[v].iter() {
                    match &mut self.state.ref_data[r] {
                        RefData::Exists(rows) => rows.push(false),
                        RefData::Values(rows) => rows.push(Vec::new()),
                        RefData::Copy(rows) => rows.push(Vec::new()),
                        RefData::Flat(_) => unreachable!("flattened after collection"),
                    }
                }
                for &w in self.var_children[v].iter() {
                    self.spawn(Target::Var(w), occ, at, machines, collectors);
                }
                for &r in self.refs_of_var[v].iter() {
                    self.spawn(Target::Ref(r), occ, at, machines, collectors);
                }
            }
            Target::Ref(r) => match self.graph.refs[r].kind {
                RefKind::Exists => {
                    if let RefData::Exists(rows) = &mut self.state.ref_data[r] {
                        rows[owner] = true;
                    }
                }
                RefKind::Values => {
                    if let RefData::Values(rows) = &mut self.state.ref_data[r] {
                        let group = rows[owner].len();
                        rows[owner].push(Vec::new());
                        collectors.push(Collector {
                            r,
                            occ: owner,
                            group,
                        });
                    }
                }
                RefKind::Copy => {
                    let task = match at {
                        Some(node) => CopyTask {
                            node,
                            path: self.path.clone(),
                            cursors: self.cursors.clone(),
                        },
                        // Copying at the super-root copies the document:
                        // the root element, with pristine cursors.
                        None => CopyTask {
                            node: self.root,
                            path: self.root_path.clone(),
                            cursors: HashMap::new(),
                        },
                    };
                    if let RefData::Copy(rows) = &mut self.state.ref_data[r] {
                        rows[owner].push(task);
                    }
                }
            },
        }
    }

    fn visit(&mut self, node: NodeId, machines: &[Machine]) -> Result<()> {
        let (name_id, edges) = {
            let data = self.skeleton.node(node);
            let name_id = data
                .name
                .ok_or_else(|| EngineError::Corrupt("element visit reached a text node".into()))?;
            (name_id, data.edges.clone())
        };
        let name = self.skeleton.name(name_id).to_string();
        let parent_len = self.path.len();
        if !self.path.is_empty() {
            self.path.push('/');
        }
        self.path.push_str(&name);

        // Advance every machine over this element; accepts happen in
        // machine order, which is parent-occurrence order, so occurrence
        // lists stay in document order.
        let mut advanced: Vec<(Machine, bool)> = Vec::with_capacity(machines.len());
        for m in machines {
            let pattern = self.pattern(m.target);
            let states = pattern.advance(m.states, name_id, &name);
            if states == 0 {
                continue;
            }
            let accepted = pattern.accepts(states);
            advanced.push((
                Machine {
                    target: m.target,
                    owner: m.owner,
                    states,
                },
                accepted,
            ));
        }
        let mut live: Vec<Machine> = Vec::with_capacity(advanced.len());
        let mut collectors: Vec<Collector> = Vec::new();
        for (m, accepted) in advanced {
            if accepted {
                self.accept(m.target, m.owner, Some(node), &mut live, &mut collectors);
            }
            live.push(m);
        }

        for edge in edges {
            let child_name = self.skeleton.node(edge.child).name;
            match child_name {
                None => {
                    // Text children: their vector is the current path's.
                    let vec_pos = self.doc.vector_position(&self.path).ok_or_else(|| {
                        EngineError::Corrupt(format!("no vector for text path {:?}", self.path))
                    })?;
                    let start = *self.cursors.entry(self.path.clone()).or_insert(0);
                    *self.cursors.get_mut(&self.path).expect("just inserted") += edge.run as usize;
                    for c in &collectors {
                        if let RefData::Values(rows) = &mut self.state.ref_data[c.r] {
                            for k in 0..edge.run as usize {
                                rows[c.occ][c.group].push((vec_pos, start + k));
                            }
                        }
                    }
                }
                Some(child_name_id) => {
                    if live.is_empty() {
                        // No machine can match anything below: bulk-advance
                        // the cursors over the subtree without entering it.
                        let child_name = self.skeleton.name(child_name_id).to_string();
                        self.skip(edge.child, edge.run, &child_name);
                    } else {
                        for _ in 0..edge.run {
                            self.visit(edge.child, &live)?;
                        }
                    }
                }
            }
        }
        self.path.truncate(parent_len);
        Ok(())
    }

    /// Advances the per-path cursors across `run` repetitions of the
    /// subtree at `child` using the memoized text layout, in `O(paths)`.
    fn skip(&mut self, child: NodeId, run: u64, child_name: &str) {
        let rels: Vec<(String, u64)> = self
            .index
            .texts_below(child)
            .iter()
            .map(|(rel, count)| {
                let mut abs = self.path.clone();
                if !abs.is_empty() {
                    abs.push('/');
                }
                abs.push_str(child_name);
                for &name_id in rel {
                    abs.push('/');
                    abs.push_str(self.skeleton.name(name_id));
                }
                (abs, *count)
            })
            .collect();
        for (abs, count) in rels {
            *self.cursors.entry(abs).or_insert(0) += (count * run) as usize;
        }
    }
}

// ---------------------------------------------------------------------
// Enumeration: selections before joins, document-order tuples.
// ---------------------------------------------------------------------

enum Sink<'b> {
    Values(&'b mut Vec<Vec<u8>>),
    Builder(&'b mut VecDocBuilder),
}

struct Eval<'a> {
    graph: &'a QueryGraph,
    docs: &'a [(&'a str, &'a VecDoc)],
    var_doc: &'a [usize],
    state: &'a State,
    /// `[var][parent occ]` → candidate occurrences (empty outer Vec for
    /// document-rooted variables, whose candidates are all occurrences).
    child_occs: &'a [Vec<Vec<usize>>],
    /// Hash-join indexes keyed by build-side reference: value bytes →
    /// occurrences of the build variable carrying that value.
    join_index: HashMap<usize, HashMap<Vec<u8>, HashSet<usize>>>,
}

/// Pre-builds the hash index for every join edge's build side (the side
/// bound last during enumeration, per [`crate::Join::ready_at`]).
fn build_join_indexes(
    graph: &QueryGraph,
    docs: &[(&str, &VecDoc)],
    var_doc: &[usize],
    state: &State,
) -> HashMap<usize, HashMap<Vec<u8>, HashSet<usize>>> {
    let mut out: HashMap<usize, HashMap<Vec<u8>, HashSet<usize>>> = HashMap::new();
    let mut stack: Vec<&Block> = vec![&graph.block];
    while let Some(block) = stack.pop() {
        for join in &block.joins {
            let Some(pos) = join.ready_at else { continue };
            let at_var = block.vars[pos];
            let build = if graph.refs[join.left].var == at_var {
                join.left
            } else {
                join.right
            };
            out.entry(build).or_insert_with(|| {
                let var = graph.refs[build].var;
                let doc = docs[var_doc[var]].1;
                let mut index: HashMap<Vec<u8>, HashSet<usize>> = HashMap::new();
                for occ in 0..state.occ_parent[var].len() {
                    for &(vec, idx) in state.values(build, occ) {
                        index
                            .entry(doc.vectors()[vec].values[idx].clone())
                            .or_default()
                            .insert(occ);
                    }
                }
                index
            });
        }
        if let Output::Document(tpl) = &block.output {
            push_template_blocks(tpl, &mut stack);
        }
    }
    out
}

fn push_template_blocks<'g>(tpl: &'g Template, stack: &mut Vec<&'g Block>) {
    for item in &tpl.content {
        match item {
            TplItem::Block(b) => {
                stack.push(b);
                if let Output::Document(inner) = &b.output {
                    push_template_blocks(inner, stack);
                }
            }
            TplItem::Element(e) => push_template_blocks(e, stack),
            TplItem::Copy(_) => {}
        }
    }
}

impl Eval<'_> {
    fn ref_bytes(&self, r: usize, occ: usize) -> Vec<&[u8]> {
        let doc = self.docs[self.var_doc[self.graph.refs[r].var]].1;
        self.state
            .values(r, occ)
            .iter()
            .map(|&(vec, idx)| doc.vectors()[vec].values[idx].as_slice())
            .collect()
    }

    fn filter_passes(&self, test: &FilterTest, occ: usize) -> bool {
        match test {
            FilterTest::Exists(r) => self.state.exists(*r, occ),
            FilterTest::Eq(r, lit) => self.ref_bytes(*r, occ).contains(&lit.as_bytes()),
            FilterTest::PathPair(a, b) => {
                let left: HashSet<&[u8]> = self.ref_bytes(*a, occ).into_iter().collect();
                self.ref_bytes(*b, occ).iter().any(|v| left.contains(v))
            }
        }
    }

    fn run_block(&self, block: &Block, env: &mut Vec<usize>, sink: &mut Sink<'_>) -> Result<()> {
        // Entry checks: filters and joins whose variables are all bound
        // in enclosing blocks.
        for filter in &block.filters {
            if filter.ready_at.is_none() && !self.filter_passes(&filter.test, env[filter.var]) {
                return Ok(());
            }
        }
        for join in &block.joins {
            if join.ready_at.is_none() {
                let left = self.ref_bytes(join.left, env[self.graph.refs[join.left].var]);
                let set: HashSet<&[u8]> = left.into_iter().collect();
                let right = self.ref_bytes(join.right, env[self.graph.refs[join.right].var]);
                if !right.iter().any(|v| set.contains(v)) {
                    return Ok(());
                }
            }
        }
        self.bind(block, 0, env, sink)
    }

    fn bind(
        &self,
        block: &Block,
        pos: usize,
        env: &mut Vec<usize>,
        sink: &mut Sink<'_>,
    ) -> Result<()> {
        if pos == block.vars.len() {
            return self.emit(&block.output, env, sink);
        }
        let var = block.vars[pos];

        // Hash-probe every join that becomes checkable at this binding:
        // the set of build-side occurrences matching some probe value.
        let mut allowed: Option<HashSet<usize>> = None;
        for join in &block.joins {
            if join.ready_at != Some(pos) {
                continue;
            }
            let (build, probe) = if self.graph.refs[join.left].var == var {
                (join.left, join.right)
            } else {
                (join.right, join.left)
            };
            let index = &self.join_index[&build];
            let probe_occ = env[self.graph.refs[probe].var];
            let mut matched: HashSet<usize> = HashSet::new();
            for value in self.ref_bytes(probe, probe_occ) {
                if let Some(occs) = index.get(value) {
                    matched.extend(occs);
                }
            }
            allowed = Some(match allowed {
                None => matched,
                Some(prev) => prev.intersection(&matched).copied().collect(),
            });
        }

        let all: Vec<usize>;
        let candidates: &[usize] = match self.graph.vars[var].parent {
            Some(p) => &self.child_occs[var][env[p]],
            None => {
                all = (0..self.state.occ_parent[var].len()).collect();
                &all
            }
        };
        'occs: for &occ in candidates {
            if let Some(allowed) = &allowed {
                if !allowed.contains(&occ) {
                    continue;
                }
            }
            // Selections first: literal filters on this variable.
            for filter in &block.filters {
                if filter.ready_at == Some(pos) && !self.filter_passes(&filter.test, occ) {
                    continue 'occs;
                }
            }
            env[var] = occ;
            self.bind(block, pos + 1, env, sink)?;
        }
        env[var] = usize::MAX;
        Ok(())
    }

    fn emit(&self, output: &Output, env: &mut Vec<usize>, sink: &mut Sink<'_>) -> Result<()> {
        match output {
            Output::Values(r) => {
                let var = self.graph.refs[*r].var;
                let occ = env[var];
                let doc = self.docs[self.var_doc[var]].1;
                for &(vec, idx) in self.state.values(*r, occ) {
                    let bytes = doc.vectors()[vec].values[idx].clone();
                    match sink {
                        Sink::Values(out) => out.push(bytes),
                        Sink::Builder(b) => b.text(bytes),
                    }
                }
                Ok(())
            }
            Output::Document(tpl) => match sink {
                Sink::Builder(b) => self.render(tpl, env, b),
                Sink::Values(_) => Err(EngineError::Corrupt(
                    "constructor output into a value sink".into(),
                )),
            },
        }
    }

    fn render(
        &self,
        tpl: &Template,
        env: &mut Vec<usize>,
        builder: &mut VecDocBuilder,
    ) -> Result<()> {
        builder.begin_element(&tpl.tag);
        for item in &tpl.content {
            match item {
                TplItem::Copy(r) => {
                    let var = self.graph.refs[*r].var;
                    let doc = self.docs[self.var_doc[var]].1;
                    for task in self.state.copies(*r, env[var]) {
                        let mut cursors = task.cursors.clone();
                        let mut path = task.path.clone();
                        copy_walk(doc, task.node, &mut path, &mut cursors, builder)?;
                    }
                }
                TplItem::Element(e) => self.render(e, env, builder)?,
                TplItem::Block(b) => {
                    self.run_block(b, env, &mut Sink::Builder(builder))?;
                }
            }
        }
        builder.end_element();
        Ok(())
    }
}

/// Streams a deep copy of the subtree at `node` into the builder,
/// pulling text values through local cursors seeded from the copy
/// task's snapshot (paths never seen before the snapshot start at 0).
fn copy_walk(
    doc: &VecDoc,
    node: NodeId,
    path: &mut String,
    cursors: &mut HashMap<String, usize>,
    builder: &mut VecDocBuilder,
) -> Result<()> {
    let skeleton = &doc.skeleton;
    let data = skeleton.node(node);
    let name_id = data
        .name
        .ok_or_else(|| EngineError::Corrupt("copy task rooted at a text node".into()))?;
    builder.begin_element(skeleton.name(name_id));
    for edge in &data.edges {
        let child = skeleton.node(edge.child);
        match child.name {
            None => {
                let vector = doc.vector(path).ok_or_else(|| {
                    EngineError::Corrupt(format!("no vector for copied path {path:?}"))
                })?;
                let cursor = cursors.entry(path.clone()).or_insert(0);
                for _ in 0..edge.run {
                    let bytes = vector.values.get(*cursor).cloned().ok_or_else(|| {
                        EngineError::Corrupt(format!("vector {path:?} exhausted during copy"))
                    })?;
                    *cursor += 1;
                    builder.text(bytes);
                }
            }
            Some(child_name) => {
                let saved = path.len();
                path.push('/');
                path.push_str(skeleton.name(child_name));
                for _ in 0..edge.run {
                    copy_walk(doc, edge.child, path, cursors, builder)?;
                }
                path.truncate(saved);
            }
        }
    }
    builder.end_element();
    Ok(())
}
