//! Graph reduction over `VEC(T)`.
//!
//! Evaluation never rebuilds the document. All structural questions are
//! answered on the skeleton (occurrence counts, per-binding counts), and
//! all value questions on the vectors the query names. Because vectors
//! are in document order, the values belonging to one binding occurrence
//! form a contiguous slice whose bounds are prefix sums of per-occurrence
//! counts (the paper's Prop. 2.2 observation applied to querying).

use crate::graph::{QueryGraph, Test};
use crate::{EngineError, Result};
use std::collections::HashMap;
use vx_core::VecDoc;
use vx_skeleton::{NameId, NodeId, PathIndex, Skeleton};

/// Evaluates a compiled query against a vectorized document, returning
/// the projected text values in document order.
pub fn reduce(doc: &VecDoc, graph: &QueryGraph) -> Result<Vec<Vec<u8>>> {
    let root = match doc.root {
        Some(r) => r,
        None => return Ok(Vec::new()),
    };
    let skeleton = &doc.skeleton;

    // Tag names never seen by the document cannot occur on any path; with
    // purely existential filters that means an empty result.
    let all_names = graph
        .target
        .iter()
        .chain(graph.ret_rel.iter())
        .chain(graph.filters.iter().flat_map(|f| f.rel.iter()));
    let mut ids: HashMap<&str, NameId> = HashMap::new();
    for name in all_names {
        match skeleton.name_id(name) {
            Some(id) => {
                ids.insert(name.as_str(), id);
            }
            None => return Ok(Vec::new()),
        }
    }
    let to_ids =
        |tags: &[String]| -> Vec<NameId> { tags.iter().map(|t| ids[t.as_str()]).collect() };

    let index = PathIndex::new(skeleton, root);
    let target = to_ids(&graph.target);
    let occurrences = index.occurrences(&target);
    if occurrences == 0 {
        return Ok(Vec::new());
    }
    let n = usize::try_from(occurrences)
        .map_err(|_| EngineError::Corrupt("occurrence count overflows usize".into()))?;
    let mut selected = vec![true; n];

    let mut memo = HashMap::new();
    for filter in &graph.filters {
        let rel = to_ids(&filter.rel);
        if filter.anchor == 0 {
            // Document-level condition: all-or-nothing.
            let holds = match &filter.test {
                Test::Exists => index.occurrences(&rel) > 0,
                Test::Eq(lit) => doc
                    .vector(&path_string(skeleton, &rel))
                    .is_some_and(|v| v.values.iter().any(|val| val == lit.as_bytes())),
            };
            if !holds {
                return Ok(Vec::new());
            }
            continue;
        }

        let anchor_path = &target[..filter.anchor];
        let below = &target[filter.anchor..];
        // Per-anchor-occurrence satisfaction of the test.
        let sat: Vec<bool> = match &filter.test {
            Test::Exists => binding_element_counts(skeleton, root, anchor_path, &rel, &mut memo)
                .into_iter()
                .map(|c| c > 0)
                .collect(),
            Test::Eq(lit) => {
                let counts = index.binding_text_counts(anchor_path, &rel);
                let total: u64 = counts.iter().sum();
                let full: Vec<NameId> = anchor_path.iter().chain(rel.iter()).copied().collect();
                let vector = doc.vector(&path_string(skeleton, &full));
                match vector {
                    None if total == 0 => counts.iter().map(|_| false).collect(),
                    None => {
                        return Err(EngineError::Corrupt(format!(
                            "no vector for populated path {}",
                            path_string(skeleton, &full)
                        )))
                    }
                    Some(v) => {
                        if v.values.len() as u64 != total {
                            return Err(EngineError::Corrupt(format!(
                                "vector {} has {} values, skeleton counts {}",
                                v.path,
                                v.values.len(),
                                total
                            )));
                        }
                        let mut start = 0usize;
                        counts
                            .iter()
                            .map(|&c| {
                                let end = start + c as usize;
                                let hit =
                                    v.values[start..end].iter().any(|val| val == lit.as_bytes());
                                start = end;
                                hit
                            })
                            .collect()
                    }
                }
            }
        };

        // Expand anchor selection to target occurrences: each anchor
        // occurrence owns a contiguous run of target occurrences.
        let spans = binding_element_counts(skeleton, root, anchor_path, below, &mut memo);
        if spans.len() != sat.len() {
            return Err(EngineError::Corrupt(
                "anchor occurrence counts disagree between tests".into(),
            ));
        }
        let mut start = 0usize;
        for (span, ok) in spans.iter().zip(&sat) {
            let end = start + *span as usize;
            if end > n {
                return Err(EngineError::Corrupt(
                    "target spans exceed target occurrence count".into(),
                ));
            }
            if !ok {
                selected[start..end].iter_mut().for_each(|s| *s = false);
            }
            start = end;
        }
        if start != n {
            return Err(EngineError::Corrupt(
                "target spans do not cover all target occurrences".into(),
            ));
        }
    }

    // Projection: slice the return vector by per-target prefix sums.
    let ret_rel = to_ids(&graph.ret_rel);
    let counts = index.binding_text_counts(&target, &ret_rel);
    if counts.len() != n {
        return Err(EngineError::Corrupt(
            "return counts disagree with target occurrences".into(),
        ));
    }
    let total: u64 = counts.iter().sum();
    let full: Vec<NameId> = target.iter().chain(ret_rel.iter()).copied().collect();
    let vector = match doc.vector(&path_string(skeleton, &full)) {
        Some(v) => v,
        None if total == 0 => return Ok(Vec::new()),
        None => {
            return Err(EngineError::Corrupt(format!(
                "no vector for populated path {}",
                path_string(skeleton, &full)
            )))
        }
    };
    if vector.values.len() as u64 != total {
        return Err(EngineError::Corrupt(format!(
            "vector {} has {} values, skeleton counts {}",
            vector.path,
            vector.values.len(),
            total
        )));
    }
    let mut out = Vec::new();
    let mut start = 0usize;
    for (count, keep) in counts.iter().zip(&selected) {
        let end = start + *count as usize;
        if *keep {
            out.extend(vector.values[start..end].iter().cloned());
        }
        start = end;
    }
    Ok(out)
}

/// Joins a tag-id path into the catalog path string.
fn path_string(skeleton: &Skeleton, path: &[NameId]) -> String {
    path.iter()
        .map(|&id| skeleton.name(id))
        .collect::<Vec<_>>()
        .join("/")
}

/// For each occurrence of `binding` (document order, runs expanded), the
/// number of `rel`-path *element* occurrences below it. `rel` empty means
/// the occurrence itself (always 1) — unlike text counts, which only see
/// `#` leaves. Memoized per `(node, rel-suffix)` so shared DAG nodes are
/// counted once.
fn binding_element_counts(
    skeleton: &Skeleton,
    root: NodeId,
    binding: &[NameId],
    rel: &[NameId],
    memo: &mut HashMap<(NodeId, Vec<NameId>), u64>,
) -> Vec<u64> {
    fn count(
        skeleton: &Skeleton,
        node: NodeId,
        rel: &[NameId],
        memo: &mut HashMap<(NodeId, Vec<NameId>), u64>,
    ) -> u64 {
        match rel.split_first() {
            None => 1,
            Some((&next, tail)) => {
                let key = (node, rel.to_vec());
                if let Some(&v) = memo.get(&key) {
                    return v;
                }
                let mut total = 0;
                for edge in &skeleton.node(node).edges {
                    if skeleton.node(edge.child).name == Some(next) {
                        total += edge.run * count(skeleton, edge.child, tail, memo);
                    }
                }
                memo.insert(key, total);
                total
            }
        }
    }

    fn walk(
        skeleton: &Skeleton,
        node: NodeId,
        rest: &[NameId],
        rel: &[NameId],
        repeat: u64,
        memo: &mut HashMap<(NodeId, Vec<NameId>), u64>,
        out: &mut Vec<u64>,
    ) {
        match rest.split_first() {
            None => {
                let c = count(skeleton, node, rel, memo);
                for _ in 0..repeat {
                    out.push(c);
                }
            }
            Some((&next, tail)) => {
                for edge in &skeleton.node(node).edges {
                    if skeleton.node(edge.child).name == Some(next) {
                        walk(skeleton, edge.child, tail, rel, edge.run, memo, out);
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    if let Some((&first, rest)) = binding.split_first() {
        if skeleton.node(root).name == Some(first) {
            walk(skeleton, root, rest, rel, 1, memo, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::compile;
    use vx_core::vectorize;
    use vx_xquery::parse_query;

    fn doc(xml: &str) -> VecDoc {
        vectorize(&vx_xml::parse(xml).unwrap()).unwrap()
    }

    fn eval(xml: &str, query: &str) -> Vec<String> {
        let d = doc(xml);
        let graph = compile(&parse_query(query).unwrap()).unwrap();
        reduce(&d, &graph)
            .unwrap()
            .into_iter()
            .map(|v| String::from_utf8(v).unwrap())
            .collect()
    }

    const LIB: &str = "<lib>\
        <book><title>A</title><lang>en</lang><author>x</author></book>\
        <book><title>B</title><lang>fr</lang><author>y</author><author>z</author></book>\
        <book><title>C</title><lang>en</lang></book>\
        </lib>";

    #[test]
    fn selection_with_equality() {
        assert_eq!(
            eval(
                LIB,
                r#"for $b in doc("lib")/lib/book where $b/lang = "en" return $b/title"#
            ),
            vec!["A", "C"]
        );
    }

    #[test]
    fn selection_with_exists() {
        assert_eq!(
            eval(
                LIB,
                r#"for $b in doc("lib")/lib/book where exists($b/author) return $b/title"#
            ),
            vec!["A", "B"]
        );
    }

    #[test]
    fn qualifier_and_multi_valued_projection() {
        assert_eq!(
            eval(
                LIB,
                r#"for $b in doc("lib")/lib/book[lang = "fr"] return $b/author"#
            ),
            vec!["y", "z"]
        );
    }

    #[test]
    fn unknown_tag_gives_empty_result() {
        assert_eq!(
            eval(LIB, r#"for $b in doc("lib")/lib/nothing return $b/title"#),
            Vec::<String>::new()
        );
    }

    #[test]
    fn attribute_projection() {
        let xml = r#"<r><e id="1"><v>a</v></e><e id="2"><v>b</v></e></r>"#;
        assert_eq!(
            eval(
                xml,
                r#"for $e in doc("d")/r/e where $e/v = "b" return $e/@id"#
            ),
            vec!["2"]
        );
    }
}
