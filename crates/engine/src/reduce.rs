//! Vectorized evaluation of a [`QueryGraph`] — the paper's `reduce`.
//!
//! Evaluation never rebuilds a document. It makes **one pass over each
//! document's hash-consed skeleton**, running every variable and value
//! reference pattern as an NFA "machine" (the bitmask automata of
//! [`vx_skeleton::PathPattern`]). During the pass it collects *extended
//! vectors*: per-occurrence rows holding the parent occurrence, the
//! vector positions of referenced text values (document order makes each
//! occurrence's values a run of cursor positions), existence flags, and
//! copy tasks (a skeleton node plus a cursor snapshot — enough to stream
//! a deep copy later without having visited it).
//!
//! Subtrees in which no machine is alive are never entered: the memoized
//! per-node text layout ([`PathIndex::texts_below`]) bulk advances the
//! per-path cursors across them, so the pass touches only the parts of
//! the skeleton the query mentions plus `O(paths)` work per skipped
//! subtree.
//!
//! Tuple enumeration then runs *selections before joins*: literal
//! filters are checked the moment a variable binds, while equality edges
//! hash-probe an index built over the join side bound last
//! ([`crate::Join::ready_at`]). Binding order is document order, so
//! results come out in document order without sorting. Output either
//! projects value bytes or streams element construction into a
//! [`VecDocBuilder`] — the result of a constructor query is itself a
//! vectorized document, never a DOM.

use crate::graph::{
    Block, Filter, FilterTest, Join, Output, PatStep, PatTest, QueryGraph, RefKind, Template,
    TplItem,
};
use crate::plan::{
    choose_strategy, IndexSource, JoinStrategy, Plan, PlanFilter, PlanJoin, PlanVar, RunOptions,
};
use crate::profile::{QueryProfile, VarCardinality};
use crate::{EngineError, QueryOutput, Result};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use vx_core::{VecDoc, VecDocBuilder};
use vx_obs::{Counters, Spans};
use vx_skeleton::{
    NodeId, PathIndex, PathPattern, PatternStep, PatternTest, Skeleton, StructIndex,
};

/// One document made available to evaluation: its `doc("…")` name, the
/// decoded vectorized document, and — for handle-opened stores — the
/// precomputed [`PathIndex`] shared by every query over that store.
/// When `index` is `None`, collection builds (and integrity-gates) a
/// fresh index for the run; when it is `Some`, the store was already
/// gated at [`vx_core::StoreHandle::open`] time.
#[derive(Clone, Copy)]
pub struct DocBinding<'a> {
    /// The `doc("…")` name this entry answers to.
    pub name: &'a str,
    /// The decoded vectorized document.
    pub doc: &'a VecDoc,
    /// Precomputed per-node text layout, if the caller holds one.
    pub index: Option<&'a PathIndex>,
}

fn bindings_of<'a>(docs: &'a [(&'a str, &'a VecDoc)]) -> Vec<DocBinding<'a>> {
    docs.iter()
        .map(|&(name, doc)| DocBinding {
            name,
            doc,
            index: None,
        })
        .collect()
}

/// Evaluates `graph` against the named documents. Every `doc("…")` name
/// the graph mentions must appear in `docs` (first entry wins on
/// duplicates).
pub fn reduce(graph: &QueryGraph, docs: &[(&str, &VecDoc)]) -> Result<QueryOutput> {
    Ok(reduce_inner(graph, &bindings_of(docs), "", &RunOptions::default())?.0)
}

/// The one evaluation entry point: everything [`crate::Query::run_with`]
/// exposes routes through here. `hint` labels `VX_LOG` events (the query
/// source). Profiled runs always collect serially — per-step spans must
/// tile the total, which interleaved document passes would break.
pub(crate) fn reduce_with(
    graph: &QueryGraph,
    docs: &[DocBinding<'_>],
    hint: &str,
    options: &RunOptions,
) -> Result<(QueryOutput, Option<QueryProfile>)> {
    reduce_inner(graph, docs, hint, options)
}

/// Evaluates `graph` with instrumentation on: the returned
/// [`QueryProfile`] carries per-step spans (which tile the total),
/// deterministic operation counters, and per-variable extended-vector
/// cardinalities. `hint` labels the query in `VX_LOG` events.
pub fn reduce_profiled(
    graph: &QueryGraph,
    docs: &[(&str, &VecDoc)],
    hint: &str,
) -> Result<(QueryOutput, QueryProfile)> {
    let options = RunOptions {
        profile: true,
        ..RunOptions::default()
    };
    let (output, profile) = reduce_inner(graph, &bindings_of(docs), hint, &options)?;
    Ok((
        output,
        profile.expect("reduce_inner profiles when asked to"),
    ))
}

/// Whether multi-document collection may fan out on scoped threads.
/// Auto: only when the host reports ≥ 2 CPUs — on a single core the
/// fan-out is pure spawn/merge overhead. The `VX_PARALLEL` environment
/// variable overrides: `0`/`off` never fans out, `force` always does
/// (the concurrency differential tests and `bench_serve` use `force`
/// so the scoped-thread merge path is exercised and measured even on
/// single-core hosts).
fn fan_out_enabled() -> bool {
    match std::env::var("VX_PARALLEL") {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => false,
        Ok(v) if v.eq_ignore_ascii_case("force") => true,
        _ => std::thread::available_parallelism().is_ok_and(|n| n.get() >= 2),
    }
}

/// Resolves [`RunOptions::struct_index`]: an explicit option wins,
/// otherwise `VX_STRUCT_INDEX=0`/`off` disables summary pruning and
/// anything else (including unset) enables it.
fn struct_index_enabled(options: &RunOptions) -> bool {
    options.struct_index.unwrap_or_else(|| {
        !std::env::var("VX_STRUCT_INDEX").is_ok_and(|v| v == "0" || v.eq_ignore_ascii_case("off"))
    })
}

/// The shared evaluation body. Timers run only when `want_profile` is
/// set or the `VX_LOG` sink is active — an unprofiled run with `VX_LOG`
/// unset takes no timestamps beyond plain counter arithmetic, which is
/// what keeps the disabled path inside the < 5 % bench budget.
fn reduce_inner(
    graph: &QueryGraph,
    docs: &[DocBinding<'_>],
    hint: &str,
    options: &RunOptions,
) -> Result<(QueryOutput, Option<QueryProfile>)> {
    let parallel = options.parallel;
    let profiling = options.profile || vx_obs::log_enabled();
    let total = Instant::now();
    let mut spans = Spans::new();
    if profiling {
        spans.tile(None);
    }

    // Resolve document names.
    let mut doc_of_name: HashMap<&str, usize> = HashMap::new();
    for (i, binding) in docs.iter().enumerate() {
        doc_of_name.entry(binding.name).or_insert(i);
    }
    for name in graph.doc_names() {
        if !doc_of_name.contains_key(name) {
            return Err(EngineError::UnknownDocument(name.to_string()));
        }
    }

    // Each variable evaluates inside exactly one document: its root
    // ancestor's. (`vars` is topologically ordered, parents first.)
    let mut var_doc: Vec<usize> = Vec::with_capacity(graph.vars.len());
    for var in &graph.vars {
        let d = match (&var.doc, var.parent) {
            (Some(name), _) => doc_of_name[name.as_str()],
            (None, Some(p)) => var_doc[p],
            (None, None) => {
                return Err(EngineError::Corrupt(
                    "variable with neither document nor parent root".into(),
                ))
            }
        };
        var_doc.push(d);
    }

    let mut var_children: Vec<Vec<usize>> = vec![Vec::new(); graph.vars.len()];
    for (v, var) in graph.vars.iter().enumerate() {
        if let Some(p) = var.parent {
            var_children[p].push(v);
        }
    }
    let mut refs_of_var: Vec<Vec<usize>> = vec![Vec::new(); graph.vars.len()];
    for (r, vref) in graph.refs.iter().enumerate() {
        refs_of_var[vref.var].push(r);
    }
    if profiling {
        spans.tile(Some("plan"));
    }

    // --- Collection: one skeleton pass per referenced document. -------
    //
    // Documents are independent (each variable and reference belongs to
    // exactly one), so the per-document passes fan out over scoped
    // threads when there is more than one, the host has more than one
    // CPU, and nobody is watching the clock: each thread fills a
    // private `State`, and the merge moves each document's slots into
    // the shared one — the result is byte-identical to the serial pass.
    // The last document is collected on the calling thread (spawning
    // buys nothing for it), and profiled runs stay serial so the
    // `match:{doc}` spans keep tiling the total.
    let referenced: Vec<usize> = (0..docs.len()).filter(|i| var_doc.contains(i)).collect();
    let mut state = State::new(graph);
    let mut walk_tally = WalkTally::default();
    let struct_enabled = struct_index_enabled(options);
    if parallel && !profiling && referenced.len() >= 2 && fan_out_enabled() {
        let var_doc_ref = &var_doc;
        let var_children_ref = &var_children;
        let refs_of_var_ref = &refs_of_var;
        let collect_one = |doc_idx: usize| -> Result<(State, WalkTally)> {
            let mut sub = State::new(graph);
            let mut tally = WalkTally::default();
            collect_doc(
                graph,
                docs[doc_idx].doc,
                docs[doc_idx].index,
                doc_idx,
                var_doc_ref,
                var_children_ref,
                refs_of_var_ref,
                &mut sub,
                &mut tally,
                struct_enabled,
            )?;
            Ok((sub, tally))
        };
        let collected: Vec<Result<(State, WalkTally)>> = std::thread::scope(|scope| {
            let (&last_idx, rest) = referenced.split_last().expect("len >= 2");
            let workers: Vec<_> = rest
                .iter()
                .map(|&doc_idx| scope.spawn(move || collect_one(doc_idx)))
                .collect();
            let last = collect_one(last_idx);
            let mut results: Vec<Result<(State, WalkTally)>> = workers
                .into_iter()
                .map(|w| w.join().expect("document collector thread panicked"))
                .collect();
            results.push(last);
            results
        });
        // Merge in document order; errors surface in document order too,
        // matching what the serial loop would have reported first.
        for (&doc_idx, sub) in referenced.iter().zip(collected) {
            let (sub_state, sub_tally) = sub?;
            state.adopt(sub_state, doc_idx, &var_doc, graph);
            walk_tally.add(&sub_tally);
        }
    } else {
        for &doc_idx in &referenced {
            collect_doc(
                graph,
                docs[doc_idx].doc,
                docs[doc_idx].index,
                doc_idx,
                &var_doc,
                &var_children,
                &refs_of_var,
                &mut state,
                &mut walk_tally,
                struct_enabled,
            )?;
            if profiling {
                spans.tile(Some(&format!("match:{}", docs[doc_idx].name)));
            }
        }
    }
    state.flatten_values();

    // Candidate lists: occurrences of each variable grouped by parent
    // occurrence (document order within each group).
    let mut child_occs: Vec<Vec<Vec<usize>>> = Vec::with_capacity(graph.vars.len());
    for (v, var) in graph.vars.iter().enumerate() {
        match var.parent {
            Some(p) => {
                let mut groups = vec![Vec::new(); state.occ_parent[p].len()];
                for (occ, &parent) in state.occ_parent[v].iter().enumerate() {
                    groups[parent].push(occ);
                }
                child_occs.push(groups);
            }
            None => child_occs.push(Vec::new()),
        }
    }
    if profiling {
        spans.tile(Some("group"));
    }

    let forced = options.strategy.or_else(|| {
        std::env::var("VX_PLAN")
            .ok()
            .and_then(|s| JoinStrategy::parse(&s))
    });
    let plans = plan_execution(
        graph,
        docs,
        &var_doc,
        &state,
        forced,
        options.use_indexes,
        options.trace,
    );
    if profiling {
        spans.tile(Some("join-build"));
    }

    let eval = Eval {
        graph,
        docs,
        var_doc: &var_doc,
        state: &state,
        child_occs: &child_occs,
        plans,
        profiling,
        tally: EnumTally::default(),
    };

    let mut env = vec![usize::MAX; graph.vars.len()];
    let output = match &graph.block.output {
        Output::Values(_) => {
            let mut out = Vec::new();
            eval.run_block(&graph.block, &mut env, &mut Sink::Values(&mut out))?;
            QueryOutput::Values(out)
        }
        Output::Document(_) => {
            let mut builder = VecDocBuilder::new();
            builder.begin_element("results");
            eval.run_block(&graph.block, &mut env, &mut Sink::Builder(&mut builder))?;
            builder.end_element();
            QueryOutput::Document(builder.finish()?)
        }
    };

    if !profiling {
        return Ok((output, None));
    }

    // Per-emit output time was measured inside the enumeration loop;
    // re-attribute it so `enumerate` + `output` still tile the interval.
    spans.tile(Some("enumerate"));
    let total_secs = total.elapsed().as_secs_f64();
    let output_secs = eval.tally.output_secs.get();
    spans.deduct("enumerate", output_secs);
    spans.record("output", output_secs);

    let mut counters = Counters::new();
    counters.add("skeleton.visits", walk_tally.visits);
    counters.add("skeleton.bulk_skips", walk_tally.bulk_skips);
    counters.add("nfa.advances", walk_tally.nfa_advances);
    counters.add("nfa.accepts", walk_tally.nfa_accepts);
    counters.add("cursor.values.passed", walk_tally.values_passed);
    counters.add("cursor.values.skipped", walk_tally.values_skipped);
    counters.add("struct.summary.hits", walk_tally.summary_hits);
    counters.add("struct.nodes.skipped", walk_tally.nodes_skipped);
    counters.add("struct.fallbacks", walk_tally.fallbacks);
    counters.add(
        "occ.rows",
        state.occ_parent.iter().map(|v| v.len() as u64).sum(),
    );
    counters.add(
        "join.build.entries",
        eval.plans.joins.values().map(JoinExec::entries).sum(),
    );
    counters.add("join.probe.hits", eval.tally.probe_hits.get());
    counters.add("join.probe.misses", eval.tally.probe_misses.get());
    counters.add("filter.checks", eval.tally.filter_checks.get());
    counters.add("filter.passes", eval.tally.filter_passes.get());
    counters.add("tuples.emitted", eval.tally.tuples.get());
    counters.add("values.emitted", eval.tally.values.get());

    let variables = graph
        .vars
        .iter()
        .enumerate()
        .map(|(v, var)| VarCardinality {
            name: var.name.clone(),
            occurrences: state.occ_parent[v].len() as u64,
        })
        .collect();

    let profile = QueryProfile {
        steps: spans.into_spans(),
        counters,
        variables,
        total_secs,
    };
    profile.log(hint, options.trace);
    Ok((output, Some(profile)))
}

// ---------------------------------------------------------------------
// Extended-vector state collected by the skeleton pass.
// ---------------------------------------------------------------------

/// A recorded deep copy: enough to stream the subtree later without
/// having entered it during collection.
#[derive(Debug, Clone)]
struct CopyTask {
    node: NodeId,
    /// Absolute tag path of `node` (its own tag included).
    path: String,
    /// Per-path cursor positions at the moment the copy root was
    /// reached; paths absent from the snapshot had position 0.
    cursors: HashMap<String, usize>,
}

/// Per-reference collected data, indexed `[occurrence of owning var]`.
#[derive(Debug)]
enum RefData {
    Exists(Vec<bool>),
    /// Groups of `(vector index, value index)` — one group per accepting
    /// element, in document order; flattened after collection.
    Values(Vec<Vec<Vec<(usize, usize)>>>),
    /// Post-collection flattened form of `Values`.
    Flat(Vec<Vec<(usize, usize)>>),
    Copy(Vec<Vec<CopyTask>>),
}

struct State {
    /// `[var][occ]` → parent occurrence index (0 under a document root).
    occ_parent: Vec<Vec<usize>>,
    /// `[ref]` → per-occurrence data.
    ref_data: Vec<RefData>,
}

impl State {
    fn new(graph: &QueryGraph) -> State {
        State {
            occ_parent: vec![Vec::new(); graph.vars.len()],
            ref_data: graph
                .refs
                .iter()
                .map(|r| match r.kind {
                    RefKind::Exists => RefData::Exists(Vec::new()),
                    RefKind::Values => RefData::Values(Vec::new()),
                    RefKind::Copy => RefData::Copy(Vec::new()),
                })
                .collect(),
        }
    }

    /// Moves document `doc_idx`'s slots out of `sub` (a state filled by
    /// a parallel per-document pass) into `self`. Each variable and
    /// reference belongs to exactly one document, so the moves are
    /// disjoint and the merged state matches a serial pass exactly.
    fn adopt(&mut self, mut sub: State, doc_idx: usize, var_doc: &[usize], graph: &QueryGraph) {
        for (v, &owner) in var_doc.iter().enumerate().take(graph.vars.len()) {
            if owner == doc_idx {
                self.occ_parent[v] = std::mem::take(&mut sub.occ_parent[v]);
            }
        }
        for (r, vref) in graph.refs.iter().enumerate() {
            if var_doc[vref.var] == doc_idx {
                self.ref_data[r] =
                    std::mem::replace(&mut sub.ref_data[r], RefData::Exists(Vec::new()));
            }
        }
    }

    fn flatten_values(&mut self) {
        for data in &mut self.ref_data {
            if let RefData::Values(groups) = data {
                let flat = groups
                    .drain(..)
                    .map(|g| g.into_iter().flatten().collect())
                    .collect();
                *data = RefData::Flat(flat);
            }
        }
    }

    fn exists(&self, r: usize, occ: usize) -> bool {
        match &self.ref_data[r] {
            RefData::Exists(v) => v[occ],
            _ => false,
        }
    }

    fn values(&self, r: usize, occ: usize) -> &[(usize, usize)] {
        match &self.ref_data[r] {
            RefData::Flat(v) => &v[occ],
            _ => &[],
        }
    }

    fn copies(&self, r: usize, occ: usize) -> &[CopyTask] {
        match &self.ref_data[r] {
            RefData::Copy(v) => &v[occ],
            _ => &[],
        }
    }
}

/// Counters accumulated by the skeleton pass. Plain integer adds on the
/// hot path — cheap enough to keep unconditionally live, so counter
/// values never depend on whether profiling was requested.
#[derive(Debug, Default)]
struct WalkTally {
    /// Skeleton elements entered (`skeleton.visits`).
    visits: u64,
    /// Subtrees bulk-skipped without entering (`skeleton.bulk_skips`).
    bulk_skips: u64,
    /// NFA machine-advance operations (`nfa.advances`).
    nfa_advances: u64,
    /// Pattern accept events (`nfa.accepts`).
    nfa_accepts: u64,
    /// Text values passed edge-by-edge (`cursor.values.passed`).
    values_passed: u64,
    /// Text values bulk-advanced during skips (`cursor.values.skipped`).
    values_skipped: u64,
    /// Machines ruled out at a skipped subtree because the structural
    /// self-index proved their remaining steps cannot complete inside
    /// it (`struct.summary.hits`).
    summary_hits: u64,
    /// Expanded nodes of subtrees skipped *because* the structural
    /// index proved no machine viable inside (`struct.nodes.skipped`).
    nodes_skipped: u64,
    /// Patterns that fell back to the plain NFA walk while the
    /// structural index was on — summary-opaque patterns with no named
    /// step (`struct.fallbacks`).
    fallbacks: u64,
}

impl WalkTally {
    /// Folds a per-document tally into the run total. All counters are
    /// plain sums, so parallel per-document collection reports exactly
    /// the numbers the serial pass would.
    fn add(&mut self, other: &WalkTally) {
        self.visits += other.visits;
        self.bulk_skips += other.bulk_skips;
        self.nfa_advances += other.nfa_advances;
        self.nfa_accepts += other.nfa_accepts;
        self.values_passed += other.values_passed;
        self.values_skipped += other.values_skipped;
        self.summary_hits += other.summary_hits;
        self.nodes_skipped += other.nodes_skipped;
        self.fallbacks += other.fallbacks;
    }
}

/// Counters accumulated during tuple enumeration. `Cell`s because the
/// [`Eval`] methods take `&self` (they also hold shared borrows into the
/// join indexes mid-recursion).
#[derive(Debug, Default)]
struct EnumTally {
    probe_hits: Cell<u64>,
    probe_misses: Cell<u64>,
    filter_checks: Cell<u64>,
    filter_passes: Cell<u64>,
    tuples: Cell<u64>,
    values: Cell<u64>,
    /// Seconds spent emitting output, measured only when
    /// `Eval::profiling` is set; re-attributed out of `enumerate`.
    output_secs: Cell<f64>,
    /// Guards nested template blocks from double-counting output time.
    in_output: Cell<bool>,
}

fn bump(cell: &Cell<u64>) {
    cell.set(cell.get() + 1);
}

// ---------------------------------------------------------------------
// Collection: the single skeleton pass per document.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Var(usize),
    Ref(usize),
}

#[derive(Debug, Clone)]
struct Machine {
    target: Target,
    /// For `Var`: the parent variable's occurrence. For `Ref`: the
    /// owning variable's occurrence.
    owner: usize,
    states: u64,
}

/// A `Values` reference whose pattern accepted at the current element:
/// the element's direct text children land in group `group`.
struct Collector {
    r: usize,
    occ: usize,
    group: usize,
}

/// Per-pattern precompute for structural pruning: for each NFA state
/// bit `i`, what the suffix `steps[i..]` demands of a subtree before it
/// can possibly complete there. Consulted per element child during the
/// walk; `None` (summary-opaque pattern) means the machine always runs
/// the plain NFA.
#[derive(Clone)]
struct PatMeta {
    len: usize,
    /// Words per name bitset (matches the structural index's layout).
    blocks: usize,
    /// `suffix[i*blocks..]`: bitset of concrete names steps `i..` still
    /// need to find — all must occur at or below a subtree's root.
    suffix: Vec<u64>,
    /// `impossible[i]`: some step `j ≥ i` names a tag absent from this
    /// document; state bit `i` can never reach the accept bit.
    impossible: Vec<bool>,
}

/// Builds the pruning metadata, or `None` when the pattern has no named
/// step to anchor on (`//*`-style patterns are summary-opaque: the path
/// summary cannot rule any subtree out, so pruning would be pure
/// overhead).
fn meta_of(pattern: &PathPattern, name_count: usize) -> Option<PatMeta> {
    let steps = pattern.steps();
    if !steps.iter().any(|s| matches!(s.test, PatternTest::Name(_))) {
        return None;
    }
    let len = steps.len();
    let blocks = name_count.div_ceil(64).max(1);
    let mut suffix = vec![0u64; len * blocks];
    let mut impossible = vec![false; len];
    let mut acc = vec![0u64; blocks];
    let mut dead = false;
    for i in (0..len).rev() {
        match steps[i].test {
            PatternTest::Name(Some(id)) => {
                acc[id.0 as usize / 64] |= 1u64 << (id.0 % 64);
            }
            // The step names a tag this document never interned: no
            // element anywhere can match it.
            PatternTest::Name(None) => dead = true,
            PatternTest::Any => {}
        }
        suffix[i * blocks..(i + 1) * blocks].copy_from_slice(&acc);
        impossible[i] = dead;
    }
    Some(PatMeta {
        len,
        blocks,
        suffix,
        impossible,
    })
}

fn pattern_of(steps: &[PatStep], skeleton: &Skeleton) -> Result<PathPattern> {
    PathPattern::new(
        steps
            .iter()
            .map(|s| PatternStep {
                descend: s.descend,
                test: match &s.test {
                    PatTest::Name(n) => PatternTest::Name(skeleton.name_id(n)),
                    PatTest::Any => PatternTest::Any,
                },
            })
            .collect(),
    )
    .ok_or_else(|| {
        EngineError::unsupported(
            format!(
                "path pattern with more than {} steps",
                PathPattern::MAX_STEPS
            ),
            None,
        )
    })
}

#[allow(clippy::too_many_arguments)]
fn collect_doc(
    graph: &QueryGraph,
    doc: &VecDoc,
    precomputed: Option<&PathIndex>,
    doc_idx: usize,
    var_doc: &[usize],
    var_children: &[Vec<usize>],
    refs_of_var: &[Vec<usize>],
    state: &mut State,
    tally: &mut WalkTally,
    struct_enabled: bool,
) -> Result<()> {
    let root = doc
        .root
        .ok_or_else(|| EngineError::Corrupt("document has no root".into()))?;
    let skeleton = &doc.skeleton;
    let root_name = skeleton
        .node(root)
        .name
        .ok_or_else(|| EngineError::Corrupt("document root is a text node".into()))?;

    let name_count = skeleton.names().len();
    let mut var_pat: Vec<Option<PathPattern>> = vec![None; graph.vars.len()];
    let mut ref_pat: Vec<Option<PathPattern>> = vec![None; graph.refs.len()];
    let mut var_meta: Vec<Option<PatMeta>> = vec![None; graph.vars.len()];
    let mut ref_meta: Vec<Option<PatMeta>> = vec![None; graph.refs.len()];
    for (v, var) in graph.vars.iter().enumerate() {
        if var_doc[v] == doc_idx {
            let pattern = pattern_of(&var.steps, skeleton)?;
            if struct_enabled {
                var_meta[v] = meta_of(&pattern, name_count);
                if var_meta[v].is_none() && !pattern.is_empty() {
                    tally.fallbacks += 1;
                }
            }
            var_pat[v] = Some(pattern);
        }
    }
    for (r, vref) in graph.refs.iter().enumerate() {
        if var_doc[vref.var] == doc_idx {
            let pattern = pattern_of(&vref.steps, skeleton)?;
            if struct_enabled {
                ref_meta[r] = meta_of(&pattern, name_count);
                if ref_meta[r].is_none() && !pattern.is_empty() {
                    tally.fallbacks += 1;
                }
            }
            ref_pat[r] = Some(pattern);
        }
    }

    // Handle-backed documents arrive with the index precomputed and the
    // store already integrity-gated at open time; bare `VecDoc`s build a
    // fresh index and are gated here.
    let built;
    let index: &PathIndex = match precomputed {
        Some(index) => index,
        None => {
            built = PathIndex::new(skeleton, root);

            // Integrity gate: every root-to-text path the skeleton counts
            // must be backed by a vector of exactly that many values, or
            // evaluation would silently return partial answers over a
            // damaged store.
            for (rel, count) in built.text_paths(skeleton) {
                let path: String = rel
                    .iter()
                    .map(|&n| skeleton.name(n))
                    .collect::<Vec<_>>()
                    .join("/");
                match doc.vector(&path) {
                    None => {
                        return Err(EngineError::Corrupt(format!(
                            "no vector for path {path} (skeleton counts {count})"
                        )));
                    }
                    Some(vector) if vector.values.len() as u64 != count => {
                        return Err(EngineError::Corrupt(format!(
                            "vector {path} has {} values, skeleton counts {count}",
                            vector.values.len()
                        )));
                    }
                    Some(_) => {}
                }
            }
            &built
        }
    };

    let mut walker = Walker {
        doc,
        skeleton,
        index,
        structural: struct_enabled.then(|| index.structural()),
        graph,
        var_pat,
        ref_pat,
        var_meta,
        ref_meta,
        var_children,
        refs_of_var,
        state,
        tally,
        cursors: HashMap::new(),
        path: String::new(),
        root,
        root_path: skeleton.name(root_name).to_string(),
    };

    // The virtual super-root: document-rooted variables spawn here, so a
    // pattern's first step is matched against the root element itself.
    let mut machines = Vec::new();
    let mut collectors = Vec::new();
    for (v, var) in graph.vars.iter().enumerate() {
        if var.doc.is_some() && var_doc[v] == doc_idx {
            walker.spawn(Target::Var(v), 0, None, &mut machines, &mut collectors);
        }
    }
    walker.visit(root, &machines)
}

struct Walker<'a> {
    doc: &'a VecDoc,
    skeleton: &'a Skeleton,
    index: &'a PathIndex,
    /// The structural self-index when summary pruning is enabled
    /// (`None` = pure NFA walk, the `VX_STRUCT_INDEX=off` behavior).
    structural: Option<&'a StructIndex>,
    graph: &'a QueryGraph,
    var_pat: Vec<Option<PathPattern>>,
    ref_pat: Vec<Option<PathPattern>>,
    var_meta: Vec<Option<PatMeta>>,
    ref_meta: Vec<Option<PatMeta>>,
    var_children: &'a [Vec<usize>],
    refs_of_var: &'a [Vec<usize>],
    state: &'a mut State,
    tally: &'a mut WalkTally,
    /// Per-path count of text values already passed, in document order.
    cursors: HashMap<String, usize>,
    /// Absolute tag path of the element being visited.
    path: String,
    root: NodeId,
    root_path: String,
}

impl Walker<'_> {
    fn pattern(&self, target: Target) -> &PathPattern {
        match target {
            Target::Var(v) => self.var_pat[v].as_ref().expect("pattern for local var"),
            Target::Ref(r) => self.ref_pat[r].as_ref().expect("pattern for local ref"),
        }
    }

    /// Starts a machine. An empty pattern accepts immediately at the
    /// spawn point (`at`; `None` is the virtual super-root).
    fn spawn(
        &mut self,
        target: Target,
        owner: usize,
        at: Option<NodeId>,
        machines: &mut Vec<Machine>,
        collectors: &mut Vec<Collector>,
    ) {
        machines.push(Machine {
            target,
            owner,
            states: PathPattern::START,
        });
        if self.pattern(target).is_empty() {
            self.accept(target, owner, at, machines, collectors);
        }
    }

    /// Handles a pattern reaching its accept state at `at`.
    fn accept(
        &mut self,
        target: Target,
        owner: usize,
        at: Option<NodeId>,
        machines: &mut Vec<Machine>,
        collectors: &mut Vec<Collector>,
    ) {
        match target {
            Target::Var(v) => {
                let occ = self.state.occ_parent[v].len();
                self.state.occ_parent[v].push(owner);
                for &r in self.refs_of_var[v].iter() {
                    match &mut self.state.ref_data[r] {
                        RefData::Exists(rows) => rows.push(false),
                        RefData::Values(rows) => rows.push(Vec::new()),
                        RefData::Copy(rows) => rows.push(Vec::new()),
                        RefData::Flat(_) => unreachable!("flattened after collection"),
                    }
                }
                for &w in self.var_children[v].iter() {
                    self.spawn(Target::Var(w), occ, at, machines, collectors);
                }
                for &r in self.refs_of_var[v].iter() {
                    self.spawn(Target::Ref(r), occ, at, machines, collectors);
                }
            }
            Target::Ref(r) => match self.graph.refs[r].kind {
                RefKind::Exists => {
                    if let RefData::Exists(rows) = &mut self.state.ref_data[r] {
                        rows[owner] = true;
                    }
                }
                RefKind::Values => {
                    if let RefData::Values(rows) = &mut self.state.ref_data[r] {
                        let group = rows[owner].len();
                        rows[owner].push(Vec::new());
                        collectors.push(Collector {
                            r,
                            occ: owner,
                            group,
                        });
                    }
                }
                RefKind::Copy => {
                    let task = match at {
                        Some(node) => CopyTask {
                            node,
                            path: self.path.clone(),
                            cursors: self.cursors.clone(),
                        },
                        // Copying at the super-root copies the document:
                        // the root element, with pristine cursors.
                        None => CopyTask {
                            node: self.root,
                            path: self.root_path.clone(),
                            cursors: HashMap::new(),
                        },
                    };
                    if let RefData::Copy(rows) = &mut self.state.ref_data[r] {
                        rows[owner].push(task);
                    }
                }
            },
        }
    }

    fn visit(&mut self, node: NodeId, machines: &[Machine]) -> Result<()> {
        self.tally.visits += 1;
        self.tally.nfa_advances += machines.len() as u64;
        let (name_id, edges) = {
            let data = self.skeleton.node(node);
            let name_id = data
                .name
                .ok_or_else(|| EngineError::Corrupt("element visit reached a text node".into()))?;
            (name_id, data.edges.clone())
        };
        let name = self.skeleton.name(name_id).to_string();
        let parent_len = self.path.len();
        if !self.path.is_empty() {
            self.path.push('/');
        }
        self.path.push_str(&name);

        // Advance every machine over this element; accepts happen in
        // machine order, which is parent-occurrence order, so occurrence
        // lists stay in document order.
        let mut advanced: Vec<(Machine, bool)> = Vec::with_capacity(machines.len());
        for m in machines {
            let pattern = self.pattern(m.target);
            let states = pattern.advance(m.states, name_id, &name);
            if states == 0 {
                continue;
            }
            let accepted = pattern.accepts(states);
            advanced.push((
                Machine {
                    target: m.target,
                    owner: m.owner,
                    states,
                },
                accepted,
            ));
        }
        let mut live: Vec<Machine> = Vec::with_capacity(advanced.len());
        let mut collectors: Vec<Collector> = Vec::new();
        for (m, accepted) in advanced {
            if accepted {
                self.tally.nfa_accepts += 1;
                self.accept(m.target, m.owner, Some(node), &mut live, &mut collectors);
            }
            live.push(m);
        }

        for edge in edges {
            let child_name = self.skeleton.node(edge.child).name;
            match child_name {
                None => {
                    // Text children: their vector is the current path's.
                    let vec_pos = self.doc.vector_position(&self.path).ok_or_else(|| {
                        EngineError::Corrupt(format!("no vector for text path {:?}", self.path))
                    })?;
                    let start = *self.cursors.entry(self.path.clone()).or_insert(0);
                    *self.cursors.get_mut(&self.path).expect("just inserted") += edge.run as usize;
                    self.tally.values_passed += edge.run;
                    for c in &collectors {
                        if let RefData::Values(rows) = &mut self.state.ref_data[c.r] {
                            for k in 0..edge.run as usize {
                                rows[c.occ][c.group].push((vec_pos, start + k));
                            }
                        }
                    }
                }
                Some(child_name_id) => {
                    if live.is_empty() {
                        // No machine can match anything below: bulk-advance
                        // the cursors over the subtree without entering it.
                        let child_name = self.skeleton.name(child_name_id).to_string();
                        self.skip(edge.child, edge.run, &child_name);
                    } else if self.subtree_dead(&live, edge.child, child_name_id) {
                        // Structural pruning: summary evidence alone shows
                        // no machine can complete inside this subtree, so
                        // the walk skips it wholesale.
                        let structural = self.structural.expect("pruning implies an index");
                        self.tally.summary_hits += live.len() as u64;
                        self.tally.nodes_skipped += structural.expanded(edge.child) * edge.run;
                        let child_name = self.skeleton.name(child_name_id).to_string();
                        self.skip(edge.child, edge.run, &child_name);
                    } else {
                        for _ in 0..edge.run {
                            self.visit(edge.child, &live)?;
                        }
                    }
                }
            }
        }
        self.path.truncate(parent_len);
        Ok(())
    }

    /// Whether the whole subtree at `child` can be skipped: the index
    /// is loaded and *no* live machine is viable inside it. Exits on
    /// the first viable machine and never allocates — partial pruning
    /// (cloning the survivors) was measured to cost more than it saves
    /// on flat corpora, so the walk only acts on unanimous evidence.
    fn subtree_dead(
        &self,
        live: &[Machine],
        child: NodeId,
        child_name: vx_skeleton::NameId,
    ) -> bool {
        let Some(structural) = self.structural else {
            return false;
        };
        !live
            .iter()
            .any(|m| self.machine_viable(structural, m, child, child_name))
    }

    /// Whether `m` can still reach its accept bit anywhere inside the
    /// subtree at `child`. Sound over-approximation: every concretely
    /// named remaining step must find its tag at or below `child`, and
    /// the remaining step count must fit in the subtree's element
    /// depth; the exact per-element transitions stay with
    /// `PathPattern::advance`.
    fn machine_viable(
        &self,
        structural: &StructIndex,
        m: &Machine,
        child: NodeId,
        child_name: vx_skeleton::NameId,
    ) -> bool {
        let meta = match m.target {
            Target::Var(v) => &self.var_meta[v],
            Target::Ref(r) => &self.ref_meta[r],
        };
        let Some(meta) = meta else {
            return true; // summary-opaque pattern: plain NFA walk
        };
        let below = structural.below_bits(child);
        let budget = 1 + structural.depth_below(child) as usize;
        let (name_word, name_bit) = (child_name.0 as usize / 64, 1u64 << (child_name.0 % 64));
        for i in 0..meta.len {
            if m.states & (1u64 << i) == 0 || meta.impossible[i] || meta.len - i > budget {
                continue;
            }
            let suffix = &meta.suffix[i * meta.blocks..(i + 1) * meta.blocks];
            let satisfied = suffix.iter().enumerate().all(|(w, &need)| {
                let have = below[w] | if w == name_word { name_bit } else { 0 };
                need & !have == 0
            });
            if satisfied {
                return true;
            }
        }
        // Only the accept bit (or nothing prunable) was alive: nothing
        // below this child can advance the machine further.
        false
    }

    /// Advances the per-path cursors across `run` repetitions of the
    /// subtree at `child` using the memoized text layout, in `O(paths)`.
    fn skip(&mut self, child: NodeId, run: u64, child_name: &str) {
        self.tally.bulk_skips += 1;
        let rels: Vec<(String, u64)> = self
            .index
            .texts_below(child)
            .iter()
            .map(|(rel, count)| {
                let mut abs = self.path.clone();
                if !abs.is_empty() {
                    abs.push('/');
                }
                abs.push_str(child_name);
                for &name_id in rel {
                    abs.push('/');
                    abs.push_str(self.skeleton.name(name_id));
                }
                (abs, *count)
            })
            .collect();
        for (abs, count) in rels {
            *self.cursors.entry(abs).or_insert(0) += (count * run) as usize;
            self.tally.values_skipped += count * run;
        }
    }
}

// ---------------------------------------------------------------------
// Enumeration: selections before joins, document-order tuples.
// ---------------------------------------------------------------------

enum Sink<'b> {
    Values(&'b mut Vec<Vec<u8>>),
    Builder(&'b mut VecDocBuilder),
}

struct Eval<'a> {
    graph: &'a QueryGraph,
    docs: &'a [DocBinding<'a>],
    var_doc: &'a [usize],
    state: &'a State,
    /// `[var][parent occ]` → candidate occurrences (empty outer Vec for
    /// document-rooted variables, whose candidates are all occurrences).
    child_occs: &'a [Vec<Vec<usize>>],
    /// Per-join execution plans and index-resolved literal filters.
    plans: ExecPlans<'a>,
    /// Whether to take output-emission timestamps (counters are always
    /// live; only `Instant` calls are gated).
    profiling: bool,
    tally: EnumTally,
}

/// Everything the planner pre-builds before enumeration.
struct ExecPlans<'a> {
    /// Keyed by `(build ref, probe ref)` — the side bound last during
    /// enumeration (per [`crate::Join::ready_at`]) and the side probed.
    joins: HashMap<(usize, usize), JoinExec<'a>>,
    /// `Eq` filters resolved through a persistent value index as point
    /// lookups: `(ref, literal, occurrences passing — sorted)`. A vec
    /// because there are at most a handful per query and tuple-keyed
    /// map lookups would tie the probe literal's lifetime to the plan's.
    eq_filters: Vec<(usize, &'a str, Vec<usize>)>,
}

/// One planned join edge.
struct JoinExec<'a> {
    data: JoinData<'a>,
}

enum JoinData<'a> {
    /// Value bytes → occurrences of the build variable carrying that
    /// value. The pre-0.3 path, byte- and counter-identical to it.
    Hash(HashMap<Vec<u8>, HashSet<usize>>),
    /// The build side's `(value, occurrence)` run, value-ascending —
    /// probed by binary search (index-nested-loop).
    BuildRun(Vec<(&'a [u8], usize)>),
    /// Sort-merge, fully materialized: probe occurrence → matching
    /// build occurrences (sorted, deduplicated). `build_values` keeps
    /// the `join.build.entries` counter meaningful.
    Matched {
        lists: Vec<Vec<usize>>,
        build_values: u64,
    },
}

impl JoinExec<'_> {
    /// The `join.build.entries` contribution: hash-table entry count or
    /// sorted-run length.
    fn entries(&self) -> u64 {
        match &self.data {
            JoinData::Hash(index) => index.values().map(|s| s.len() as u64).sum(),
            JoinData::BuildRun(run) => run.len() as u64,
            JoinData::Matched { build_values, .. } => *build_values,
        }
    }
}

/// A probe result: the build-side occurrences matching the current
/// tuple, in whichever shape the strategy produced.
enum Matched<'e> {
    /// Unordered (hash strategy) — membership-checked per candidate.
    Set(HashSet<usize>),
    /// Sorted ascending, deduplicated — intersected by two pointers.
    List(Vec<usize>),
    /// Borrowed sorted list (sort-merge lookups).
    Slice(&'e [usize]),
}

impl Matched<'_> {
    fn as_slice(&self) -> &[usize] {
        match self {
            Matched::List(v) => v,
            Matched::Slice(s) => s,
            Matched::Set(_) => unreachable!("sorted access to a hash-matched set"),
        }
    }
}

/// Intersects two probe results, preferring sorted output unless both
/// sides are hash sets (the pre-0.3 shape).
fn intersect_matched<'e>(a: Matched<'e>, b: Matched<'e>) -> Matched<'e> {
    match (a, b) {
        (Matched::Set(x), Matched::Set(y)) => Matched::Set(x.intersection(&y).copied().collect()),
        (Matched::Set(s), other) | (other, Matched::Set(s)) => Matched::List(
            other
                .as_slice()
                .iter()
                .copied()
                .filter(|occ| s.contains(occ))
                .collect(),
        ),
        (x, y) => {
            let (a, b) = (x.as_slice(), y.as_slice());
            let mut out = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(a[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            Matched::List(out)
        }
    }
}

/// The build and probe references of a join that becomes checkable at
/// binding position `pos` of `block`.
fn join_sides(graph: &QueryGraph, block: &Block, join: &Join, pos: usize) -> (usize, usize) {
    let at_var = block.vars[pos];
    if graph.refs[join.left].var == at_var {
        (join.left, join.right)
    } else {
        (join.right, join.left)
    }
}

/// Total text values a reference collected across all occurrences of
/// its variable — the planner's exact cardinality.
fn ref_value_count(state: &State, r: usize, occs: usize) -> u64 {
    (0..occs).map(|occ| state.values(r, occ).len() as u64).sum()
}

/// The single vector all of `r`'s values come from, if its document
/// holds a persistent sorted run for it. Multi-vector references (a
/// `//` pattern matching several paths) fall back to query-time sorts.
fn persistent_vector_of(doc: &VecDoc, state: &State, r: usize, occs: usize) -> Option<usize> {
    let mut vec_idx: Option<usize> = None;
    for occ in 0..occs {
        for &(vec, _) in state.values(r, occ) {
            match vec_idx {
                None => vec_idx = Some(vec),
                Some(prev) if prev == vec => {}
                Some(_) => return None,
            }
        }
    }
    vec_idx.filter(|&v| doc.sorted_run(v).is_some())
}

/// `vector position → owning occurrence` for a single-vector reference
/// (`usize::MAX` where no occurrence references the position).
fn occ_of_positions(state: &State, r: usize, occs: usize, len: usize) -> Vec<usize> {
    let mut map = vec![usize::MAX; len];
    for occ in 0..occs {
        for &(_, idx) in state.values(r, occ) {
            map[idx] = occ;
        }
    }
    map
}

/// Builds the `(value, occurrence)` run of a reference, value-ascending.
/// Reuses the persistent `.vec` value index when the reference is
/// single-vector and one was loaded (O(n) remap); otherwise sorts the
/// collected pairs at query time. Returns whether the persistent run
/// was used.
fn sorted_run_for<'a>(
    doc: &'a VecDoc,
    state: &State,
    r: usize,
    occs: usize,
    use_persistent: bool,
) -> (Vec<(&'a [u8], usize)>, bool) {
    if use_persistent {
        if let Some(vec_idx) = persistent_vector_of(doc, state, r, occs) {
            let order = doc
                .sorted_run(vec_idx)
                .expect("checked by persistent_vector_of");
            let values = &doc.vectors()[vec_idx].values;
            let occ_of = occ_of_positions(state, r, occs, values.len());
            let run = order
                .iter()
                .filter_map(|&pos| {
                    let occ = occ_of[pos as usize];
                    (occ != usize::MAX).then(|| (values[pos as usize].as_slice(), occ))
                })
                .collect();
            return (run, true);
        }
    }
    let mut run: Vec<(&[u8], usize)> = Vec::new();
    for occ in 0..occs {
        for &(vec, idx) in state.values(r, occ) {
            run.push((doc.vectors()[vec].values[idx].as_slice(), occ));
        }
    }
    run.sort_unstable_by(|a, b| a.0.cmp(b.0).then(a.1.cmp(&b.1)));
    (run, false)
}

/// The pre-0.3 hash build: value bytes → occurrences of the build
/// variable carrying that value.
fn hash_build(
    doc: &VecDoc,
    state: &State,
    build: usize,
    occs: usize,
) -> HashMap<Vec<u8>, HashSet<usize>> {
    let mut index: HashMap<Vec<u8>, HashSet<usize>> = HashMap::new();
    for occ in 0..occs {
        for &(vec, idx) in state.values(build, occ) {
            index
                .entry(doc.vectors()[vec].values[idx].clone())
                .or_default()
                .insert(occ);
        }
    }
    index
}

/// Merges two value-sorted runs into per-probe-occurrence match lists.
fn merge_runs(
    probe_run: &[(&[u8], usize)],
    build_run: &[(&[u8], usize)],
    probe_occs: usize,
) -> Vec<Vec<usize>> {
    let mut lists: Vec<Vec<usize>> = vec![Vec::new(); probe_occs];
    let (mut i, mut j) = (0, 0);
    while i < probe_run.len() && j < build_run.len() {
        match probe_run[i].0.cmp(build_run[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let value = probe_run[i].0;
                let i_end = i + probe_run[i..]
                    .iter()
                    .take_while(|(v, _)| *v == value)
                    .count();
                let j_end = j + build_run[j..]
                    .iter()
                    .take_while(|(v, _)| *v == value)
                    .count();
                for &(_, probe_occ) in &probe_run[i..i_end] {
                    for &(_, build_occ) in &build_run[j..j_end] {
                        lists[probe_occ].push(build_occ);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    for list in &mut lists {
        list.sort_unstable();
        list.dedup();
    }
    lists
}

/// The planner pass: walks every block, picks a strategy per planned
/// join edge from exact post-collection cardinalities, and builds its
/// execution data. Also resolves `Eq` filters through persistent value
/// indexes as point lookups where possible.
fn plan_execution<'a>(
    graph: &'a QueryGraph,
    docs: &'a [DocBinding<'a>],
    var_doc: &[usize],
    state: &'a State,
    forced: Option<JoinStrategy>,
    use_indexes: bool,
    trace: Option<vx_obs::TraceId>,
) -> ExecPlans<'a> {
    let mut joins: HashMap<(usize, usize), JoinExec<'a>> = HashMap::new();
    let mut eq_filters: Vec<(usize, &'a str, Vec<usize>)> = Vec::new();
    let mut stack: Vec<&Block> = vec![&graph.block];
    while let Some(block) = stack.pop() {
        for join in &block.joins {
            let Some(pos) = join.ready_at else { continue };
            let (build, probe) = join_sides(graph, block, join, pos);
            if joins.contains_key(&(build, probe)) {
                continue;
            }
            let build_var = graph.refs[build].var;
            let probe_var = graph.refs[probe].var;
            let build_doc = docs[var_doc[build_var]].doc;
            let probe_doc = docs[var_doc[probe_var]].doc;
            let build_occs = state.occ_parent[build_var].len();
            let probe_occs = state.occ_parent[probe_var].len();
            let build_values = ref_value_count(state, build, build_occs);
            let probe_values = ref_value_count(state, probe, probe_occs);
            let has_index = persistent_vector_of(build_doc, state, build, build_occs).is_some();
            let strategy =
                choose_strategy(forced, use_indexes, has_index, probe_values, build_values);
            if vx_obs::log_enabled() {
                let probe_label = ref_label(graph, probe);
                let build_label = ref_label(graph, build);
                let trace_str = trace.map(|t| t.to_string());
                let mut fields: Vec<(&str, vx_obs::Value<'_>)> = vec![
                    ("probe", vx_obs::Value::Str(&probe_label)),
                    ("build", vx_obs::Value::Str(&build_label)),
                    ("strategy", vx_obs::Value::Str(strategy.name())),
                    ("probe_values", vx_obs::Value::U64(probe_values)),
                    ("build_values", vx_obs::Value::U64(build_values)),
                ];
                if let Some(t) = &trace_str {
                    fields.push(("trace", vx_obs::Value::Str(t)));
                }
                vx_obs::event("engine.join", &fields);
            }
            let data = match strategy {
                JoinStrategy::Hash => {
                    JoinData::Hash(hash_build(build_doc, state, build, build_occs))
                }
                JoinStrategy::IndexNestedLoop => {
                    let (run, _) = sorted_run_for(build_doc, state, build, build_occs, use_indexes);
                    JoinData::BuildRun(run)
                }
                JoinStrategy::SortMerge => {
                    let (build_run, _) =
                        sorted_run_for(build_doc, state, build, build_occs, use_indexes);
                    let (probe_run, _) =
                        sorted_run_for(probe_doc, state, probe, probe_occs, use_indexes);
                    JoinData::Matched {
                        lists: merge_runs(&probe_run, &build_run, probe_occs),
                        build_values: build_run.len() as u64,
                    }
                }
            };
            joins.insert((build, probe), JoinExec { data });
        }
        for filter in &block.filters {
            if filter.ready_at.is_none() || !use_indexes {
                continue;
            }
            let FilterTest::Eq(r, lit) = &filter.test else {
                continue;
            };
            if eq_filters
                .iter()
                .any(|(er, elit, _)| *er == *r && *elit == lit.as_str())
            {
                continue;
            }
            let var = graph.refs[*r].var;
            let doc = docs[var_doc[var]].doc;
            let occs = state.occ_parent[var].len();
            let Some(vec_idx) = persistent_vector_of(doc, state, *r, occs) else {
                continue;
            };
            let order = doc
                .sorted_run(vec_idx)
                .expect("checked by persistent_vector_of");
            let values = &doc.vectors()[vec_idx].values;
            let occ_of = occ_of_positions(state, *r, occs, values.len());
            let target = lit.as_bytes();
            let lo = order.partition_point(|&pos| values[pos as usize].as_slice() < target);
            let mut passing: Vec<usize> = order[lo..]
                .iter()
                .take_while(|&&pos| values[pos as usize].as_slice() == target)
                .map(|&pos| occ_of[pos as usize])
                .filter(|&occ| occ != usize::MAX)
                .collect();
            passing.sort_unstable();
            passing.dedup();
            eq_filters.push((*r, lit.as_str(), passing));
        }
        if let Output::Document(tpl) = &block.output {
            push_template_blocks(tpl, &mut stack);
        }
    }
    ExecPlans { joins, eq_filters }
}

/// Renders a step path as `/a//b/*`.
fn render_steps(steps: &[PatStep]) -> String {
    let mut out = String::new();
    for step in steps {
        out.push_str(if step.descend { "//" } else { "/" });
        match &step.test {
            PatTest::Name(n) => out.push_str(n),
            PatTest::Any => out.push('*'),
        }
    }
    out
}

/// `$var/path` label for a value reference.
fn ref_label(graph: &QueryGraph, r: usize) -> String {
    format!(
        "${}{}",
        graph.vars[graph.refs[r].var].name,
        render_steps(&graph.refs[r].steps)
    )
}

/// Builds the [`Plan`] for `graph` over `docs`: runs collection (the
/// one skeleton pass — enumeration never starts), then reports exactly
/// the strategy the planner would pick per join edge and which literal
/// filters resolve through value indexes.
pub(crate) fn explain_with(
    graph: &QueryGraph,
    docs: &[DocBinding<'_>],
    options: &RunOptions,
) -> Result<Plan> {
    let mut doc_of_name: HashMap<&str, usize> = HashMap::new();
    for (i, binding) in docs.iter().enumerate() {
        doc_of_name.entry(binding.name).or_insert(i);
    }
    for name in graph.doc_names() {
        if !doc_of_name.contains_key(name) {
            return Err(EngineError::UnknownDocument(name.to_string()));
        }
    }
    let mut var_doc: Vec<usize> = Vec::with_capacity(graph.vars.len());
    for var in &graph.vars {
        let d = match (&var.doc, var.parent) {
            (Some(name), _) => doc_of_name[name.as_str()],
            (None, Some(p)) => var_doc[p],
            (None, None) => {
                return Err(EngineError::Corrupt(
                    "variable with neither document nor parent root".into(),
                ))
            }
        };
        var_doc.push(d);
    }
    let mut var_children: Vec<Vec<usize>> = vec![Vec::new(); graph.vars.len()];
    for (v, var) in graph.vars.iter().enumerate() {
        if let Some(p) = var.parent {
            var_children[p].push(v);
        }
    }
    let mut refs_of_var: Vec<Vec<usize>> = vec![Vec::new(); graph.vars.len()];
    for (r, vref) in graph.refs.iter().enumerate() {
        refs_of_var[vref.var].push(r);
    }
    let mut state = State::new(graph);
    let mut tally = WalkTally::default();
    let struct_enabled = struct_index_enabled(options);
    let referenced: Vec<usize> = (0..docs.len()).filter(|i| var_doc.contains(i)).collect();
    for &doc_idx in &referenced {
        collect_doc(
            graph,
            docs[doc_idx].doc,
            docs[doc_idx].index,
            doc_idx,
            &var_doc,
            &var_children,
            &refs_of_var,
            &mut state,
            &mut tally,
            struct_enabled,
        )?;
    }
    state.flatten_values();

    let forced = options.strategy.or_else(|| {
        std::env::var("VX_PLAN")
            .ok()
            .and_then(|s| JoinStrategy::parse(&s))
    });

    let variables = graph
        .vars
        .iter()
        .enumerate()
        .map(|(v, var)| PlanVar {
            name: var.name.clone(),
            root: match (&var.doc, var.parent) {
                (Some(name), _) => format!("doc(\"{name}\")"),
                (None, Some(p)) => format!("${}", graph.vars[p].name),
                (None, None) => String::new(),
            },
            path: render_steps(&var.steps),
            occurrences: state.occ_parent[v].len() as u64,
            // Matches `meta_of`'s opaqueness rule without needing the
            // document's name table: any named step anchors the
            // summary; a pure-wildcard (or empty) pattern walks the NFA.
            matching: if struct_enabled
                && var.steps.iter().any(|s| matches!(s.test, PatTest::Name(_)))
            {
                "summary"
            } else {
                "nfa"
            },
        })
        .collect();

    let mut joins = Vec::new();
    let mut filters = Vec::new();
    let mut stack: Vec<&Block> = vec![&graph.block];
    while let Some(block) = stack.pop() {
        for join in &block.joins {
            match join.ready_at {
                None => joins.push(PlanJoin {
                    probe: ref_label(graph, join.left),
                    build: ref_label(graph, join.right),
                    strategy: JoinStrategy::Hash,
                    index: IndexSource::None,
                    probe_values: 0,
                    build_values: 0,
                    planned: false,
                }),
                Some(pos) => {
                    let (build, probe) = join_sides(graph, block, join, pos);
                    let build_var = graph.refs[build].var;
                    let probe_var = graph.refs[probe].var;
                    let build_doc = docs[var_doc[build_var]].doc;
                    let probe_doc = docs[var_doc[probe_var]].doc;
                    let build_occs = state.occ_parent[build_var].len();
                    let probe_occs = state.occ_parent[probe_var].len();
                    let build_values = ref_value_count(&state, build, build_occs);
                    let probe_values = ref_value_count(&state, probe, probe_occs);
                    let build_persistent =
                        persistent_vector_of(build_doc, &state, build, build_occs).is_some();
                    let strategy = choose_strategy(
                        forced,
                        options.use_indexes,
                        build_persistent,
                        probe_values,
                        build_values,
                    );
                    let index = match strategy {
                        JoinStrategy::Hash => IndexSource::None,
                        JoinStrategy::IndexNestedLoop => {
                            if options.use_indexes && build_persistent {
                                IndexSource::Persistent
                            } else {
                                IndexSource::QuerySort
                            }
                        }
                        JoinStrategy::SortMerge => {
                            let probe_persistent =
                                persistent_vector_of(probe_doc, &state, probe, probe_occs)
                                    .is_some();
                            if options.use_indexes && build_persistent && probe_persistent {
                                IndexSource::Persistent
                            } else {
                                IndexSource::QuerySort
                            }
                        }
                    };
                    joins.push(PlanJoin {
                        probe: ref_label(graph, probe),
                        build: ref_label(graph, build),
                        strategy,
                        index,
                        probe_values,
                        build_values,
                        planned: true,
                    });
                }
            }
        }
        for filter in &block.filters {
            let (test, indexed) = match &filter.test {
                FilterTest::Exists(r) => (format!("exists({})", ref_label(graph, *r)), false),
                FilterTest::Eq(r, lit) => {
                    let var = graph.refs[*r].var;
                    let doc = docs[var_doc[var]].doc;
                    let occs = state.occ_parent[var].len();
                    let indexed = filter.ready_at.is_some()
                        && options.use_indexes
                        && persistent_vector_of(doc, &state, *r, occs).is_some();
                    (format!("{} = {lit:?}", ref_label(graph, *r)), indexed)
                }
                FilterTest::PathPair(a, b) => (
                    format!("{} = {}", ref_label(graph, *a), ref_label(graph, *b)),
                    false,
                ),
            };
            filters.push(PlanFilter { test, indexed });
        }
        if let Output::Document(tpl) = &block.output {
            push_template_blocks(tpl, &mut stack);
        }
    }

    Ok(Plan {
        variables,
        joins,
        filters,
        output: match &graph.block.output {
            Output::Values(_) => "values",
            Output::Document(_) => "document",
        },
    })
}

fn push_template_blocks<'g>(tpl: &'g Template, stack: &mut Vec<&'g Block>) {
    for item in &tpl.content {
        match item {
            TplItem::Block(b) => {
                stack.push(b);
                if let Output::Document(inner) = &b.output {
                    push_template_blocks(inner, stack);
                }
            }
            TplItem::Element(e) => push_template_blocks(e, stack),
            TplItem::Copy(_) => {}
        }
    }
}

impl Eval<'_> {
    fn ref_bytes(&self, r: usize, occ: usize) -> Vec<&[u8]> {
        let doc = self.docs[self.var_doc[self.graph.refs[r].var]].doc;
        self.state
            .values(r, occ)
            .iter()
            .map(|&(vec, idx)| doc.vectors()[vec].values[idx].as_slice())
            .collect()
    }

    fn filter_passes(&self, test: &FilterTest, occ: usize) -> bool {
        bump(&self.tally.filter_checks);
        let pass = match test {
            FilterTest::Exists(r) => self.state.exists(*r, occ),
            FilterTest::Eq(r, lit) => self.ref_bytes(*r, occ).contains(&lit.as_bytes()),
            FilterTest::PathPair(a, b) => {
                let left: HashSet<&[u8]> = self.ref_bytes(*a, occ).into_iter().collect();
                self.ref_bytes(*b, occ).iter().any(|v| left.contains(v))
            }
        };
        if pass {
            bump(&self.tally.filter_passes);
        }
        pass
    }

    fn run_block(&self, block: &Block, env: &mut Vec<usize>, sink: &mut Sink<'_>) -> Result<()> {
        // Entry checks: filters and joins whose variables are all bound
        // in enclosing blocks.
        for filter in &block.filters {
            if filter.ready_at.is_none() && !self.filter_passes(&filter.test, env[filter.var]) {
                return Ok(());
            }
        }
        for join in &block.joins {
            if join.ready_at.is_none() {
                let left = self.ref_bytes(join.left, env[self.graph.refs[join.left].var]);
                let set: HashSet<&[u8]> = left.into_iter().collect();
                let right = self.ref_bytes(join.right, env[self.graph.refs[join.right].var]);
                if !right.iter().any(|v| set.contains(v)) {
                    return Ok(());
                }
            }
        }
        self.bind(block, 0, env, sink)
    }

    fn bind(
        &self,
        block: &Block,
        pos: usize,
        env: &mut Vec<usize>,
        sink: &mut Sink<'_>,
    ) -> Result<()> {
        if pos == block.vars.len() {
            bump(&self.tally.tuples);
            // Time output emission only for the outermost emit — nested
            // template blocks re-enter `bind` while the clock is running.
            if self.profiling && !self.tally.in_output.get() {
                self.tally.in_output.set(true);
                let mark = Instant::now();
                let result = self.emit(&block.output, env, sink);
                self.tally
                    .output_secs
                    .set(self.tally.output_secs.get() + mark.elapsed().as_secs_f64());
                self.tally.in_output.set(false);
                return result;
            }
            return self.emit(&block.output, env, sink);
        }
        let var = block.vars[pos];

        // Probe every join that becomes checkable at this binding — each
        // yields the build-side occurrences matching the current tuple,
        // in the strategy's shape (hash set or sorted list).
        let mut allowed: Option<Matched<'_>> = None;
        for join in &block.joins {
            if join.ready_at != Some(pos) {
                continue;
            }
            let (build, probe) = join_sides(self.graph, block, join, pos);
            let probe_occ = env[self.graph.refs[probe].var];
            let matched = self.probe_join(build, probe, probe_occ);
            allowed = Some(match allowed {
                None => matched,
                Some(prev) => intersect_matched(prev, matched),
            });
        }
        // Index-resolved literal filters narrow the same way joins do,
        // instead of being re-checked per occurrence below.
        for filter in &block.filters {
            if filter.ready_at != Some(pos) {
                continue;
            }
            if let Some(passing) = self.indexed_eq(filter) {
                let narrowed = Matched::Slice(passing);
                allowed = Some(match allowed {
                    None => narrowed,
                    Some(prev) => intersect_matched(prev, narrowed),
                });
            }
        }

        // Candidate occurrences: the parent's children when nested, every
        // occurrence when document-rooted. The doc-rooted range is never
        // materialized — `bind` runs once per enclosing tuple, and an
        // O(occurrences) allocation per probe would itself re-create the
        // quadratic cliff the planner removes.
        let parent = self.graph.vars[var].parent;
        match allowed {
            None => match parent {
                Some(p) => {
                    for &occ in &self.child_occs[var][env[p]] {
                        self.bind_occ(block, pos, var, occ, env, sink)?;
                    }
                }
                None => {
                    for occ in 0..self.state.occ_parent[var].len() {
                        self.bind_occ(block, pos, var, occ, env, sink)?;
                    }
                }
            },
            Some(Matched::Set(set)) => {
                // The pre-0.3 shape: scan candidates, membership-check.
                match parent {
                    Some(p) => {
                        for &occ in &self.child_occs[var][env[p]] {
                            if set.contains(&occ) {
                                self.bind_occ(block, pos, var, occ, env, sink)?;
                            }
                        }
                    }
                    None => {
                        for occ in 0..self.state.occ_parent[var].len() {
                            if set.contains(&occ) {
                                self.bind_occ(block, pos, var, occ, env, sink)?;
                            }
                        }
                    }
                }
            }
            Some(matched) => {
                let list = matched.as_slice();
                match parent {
                    None => {
                        // Document-rooted: candidates are all occurrences,
                        // so the sorted match list IS the candidate list —
                        // this is what removes the per-probe full scan.
                        for &occ in list {
                            self.bind_occ(block, pos, var, occ, env, sink)?;
                        }
                    }
                    Some(p) => {
                        let candidates = &self.child_occs[var][env[p]];
                        let (mut ci, mut li) = (0, 0);
                        while ci < candidates.len() && li < list.len() {
                            match candidates[ci].cmp(&list[li]) {
                                std::cmp::Ordering::Less => ci += 1,
                                std::cmp::Ordering::Greater => li += 1,
                                std::cmp::Ordering::Equal => {
                                    self.bind_occ(block, pos, var, candidates[ci], env, sink)?;
                                    ci += 1;
                                    li += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        env[var] = usize::MAX;
        Ok(())
    }

    /// Binds one surviving occurrence: selections first (literal filters
    /// not already resolved through an index), then recurse.
    fn bind_occ(
        &self,
        block: &Block,
        pos: usize,
        var: usize,
        occ: usize,
        env: &mut Vec<usize>,
        sink: &mut Sink<'_>,
    ) -> Result<()> {
        for filter in &block.filters {
            if filter.ready_at == Some(pos)
                && self.indexed_eq(filter).is_none()
                && !self.filter_passes(&filter.test, occ)
            {
                return Ok(());
            }
        }
        env[var] = occ;
        self.bind(block, pos + 1, env, sink)
    }

    /// The occurrences passing `filter` when it is an `Eq` the planner
    /// resolved through a persistent value index.
    fn indexed_eq(&self, filter: &Filter) -> Option<&[usize]> {
        match &filter.test {
            FilterTest::Eq(r, lit) => self
                .plans
                .eq_filters
                .iter()
                .find(|(er, elit, _)| er == r && *elit == lit.as_str())
                .map(|(_, _, passing)| passing.as_slice()),
            _ => None,
        }
    }

    /// Probes one planned join for the current tuple.
    fn probe_join(&self, build: usize, probe: usize, probe_occ: usize) -> Matched<'_> {
        let exec = &self.plans.joins[&(build, probe)];
        match &exec.data {
            JoinData::Hash(index) => {
                let mut matched: HashSet<usize> = HashSet::new();
                for value in self.ref_bytes(probe, probe_occ) {
                    if let Some(occs) = index.get(value) {
                        bump(&self.tally.probe_hits);
                        matched.extend(occs);
                    } else {
                        bump(&self.tally.probe_misses);
                    }
                }
                Matched::Set(matched)
            }
            JoinData::BuildRun(run) => {
                let mut matched: Vec<usize> = Vec::new();
                for value in self.ref_bytes(probe, probe_occ) {
                    let lo = run.partition_point(|&(v, _)| v < value);
                    let matches = run[lo..].iter().take_while(|&&(v, _)| v == value);
                    let before = matched.len();
                    matched.extend(matches.map(|&(_, occ)| occ));
                    if matched.len() > before {
                        bump(&self.tally.probe_hits);
                    } else {
                        bump(&self.tally.probe_misses);
                    }
                }
                matched.sort_unstable();
                matched.dedup();
                Matched::List(matched)
            }
            JoinData::Matched { lists, .. } => {
                let list = lists.get(probe_occ).map_or(&[] as &[usize], Vec::as_slice);
                if list.is_empty() {
                    bump(&self.tally.probe_misses);
                } else {
                    bump(&self.tally.probe_hits);
                }
                Matched::Slice(list)
            }
        }
    }

    fn emit(&self, output: &Output, env: &mut Vec<usize>, sink: &mut Sink<'_>) -> Result<()> {
        match output {
            Output::Values(r) => {
                let var = self.graph.refs[*r].var;
                let occ = env[var];
                let doc = self.docs[self.var_doc[var]].doc;
                self.tally
                    .values
                    .set(self.tally.values.get() + self.state.values(*r, occ).len() as u64);
                for &(vec, idx) in self.state.values(*r, occ) {
                    let bytes = doc.vectors()[vec].values[idx].clone();
                    match sink {
                        Sink::Values(out) => out.push(bytes),
                        Sink::Builder(b) => b.text(bytes),
                    }
                }
                Ok(())
            }
            Output::Document(tpl) => match sink {
                Sink::Builder(b) => self.render(tpl, env, b),
                Sink::Values(_) => Err(EngineError::Corrupt(
                    "constructor output into a value sink".into(),
                )),
            },
        }
    }

    fn render(
        &self,
        tpl: &Template,
        env: &mut Vec<usize>,
        builder: &mut VecDocBuilder,
    ) -> Result<()> {
        builder.begin_element(&tpl.tag);
        for item in &tpl.content {
            match item {
                TplItem::Copy(r) => {
                    let var = self.graph.refs[*r].var;
                    let doc = self.docs[self.var_doc[var]].doc;
                    for task in self.state.copies(*r, env[var]) {
                        let mut cursors = task.cursors.clone();
                        let mut path = task.path.clone();
                        copy_walk(
                            doc,
                            task.node,
                            &mut path,
                            &mut cursors,
                            builder,
                            &self.tally.values,
                        )?;
                    }
                }
                TplItem::Element(e) => self.render(e, env, builder)?,
                TplItem::Block(b) => {
                    self.run_block(b, env, &mut Sink::Builder(builder))?;
                }
            }
        }
        builder.end_element();
        Ok(())
    }
}

/// Streams a deep copy of the subtree at `node` into the builder,
/// pulling text values through local cursors seeded from the copy
/// task's snapshot (paths never seen before the snapshot start at 0).
fn copy_walk(
    doc: &VecDoc,
    node: NodeId,
    path: &mut String,
    cursors: &mut HashMap<String, usize>,
    builder: &mut VecDocBuilder,
    values_out: &Cell<u64>,
) -> Result<()> {
    let skeleton = &doc.skeleton;
    let data = skeleton.node(node);
    let name_id = data
        .name
        .ok_or_else(|| EngineError::Corrupt("copy task rooted at a text node".into()))?;
    builder.begin_element(skeleton.name(name_id));
    for edge in &data.edges {
        let child = skeleton.node(edge.child);
        match child.name {
            None => {
                let vector = doc.vector(path).ok_or_else(|| {
                    EngineError::Corrupt(format!("no vector for copied path {path:?}"))
                })?;
                let cursor = cursors.entry(path.clone()).or_insert(0);
                values_out.set(values_out.get() + edge.run);
                for _ in 0..edge.run {
                    let bytes = vector.values.get(*cursor).cloned().ok_or_else(|| {
                        EngineError::Corrupt(format!("vector {path:?} exhausted during copy"))
                    })?;
                    *cursor += 1;
                    builder.text(bytes);
                }
            }
            Some(child_name) => {
                let saved = path.len();
                path.push('/');
                path.push_str(skeleton.name(child_name));
                for _ in 0..edge.run {
                    copy_walk(doc, edge.child, path, cursors, builder, values_out)?;
                }
                path.truncate(saved);
            }
        }
    }
    builder.end_element();
    Ok(())
}
