//! `vx-engine` — query evaluation over vectorized documents (DESIGN.md
//! row 6).
//!
//! The paper evaluates XQ[*,//] by compiling a query into a *query graph*
//! and reducing it against `VEC(T)` with vector operations, never
//! rebuilding the document:
//!
//! * [`compile`] turns a (desugared) [`vx_xquery::Query`] into a
//!   [`QueryGraph`]: a DAG of variable nodes rooted at documents or other
//!   variables through step patterns (with `*` and `//`), value
//!   references, literal selection filters, equality join edges, and an
//!   output — a projected value sequence or a result-skeleton template.
//! * [`reduce`] evaluates the graph against named [`vx_core::VecDoc`]s in
//!   one skeleton pass per document: patterns run as NFAs over the
//!   hash-consed skeleton, per-occurrence value ranges come from the
//!   per-path cursors (document order makes them contiguous), selections
//!   mark occurrences before joins hash-probe them, and element
//!   construction streams into a [`vx_core::VecDocBuilder`] — the result
//!   of a constructor query is itself a `VEC(T)`, never a DOM.
//! * [`naive_eval`] is the differential oracle: an independent
//!   nested-loop evaluator over the reconstructed DOM. `reduce` and
//!   `naive_eval` must agree on every supported query; the engine tests
//!   enforce this.
//!
//! The ergonomic entry point is [`Query`]: parse and compile once, run
//! against many documents, and get a [`QueryOutput`] that is either raw
//! byte values or a vectorized result document.
//!
//! Anything outside the fragment — qualifiers inside constructor content,
//! whole-element bare returns, document-rooted bare returns — fails with
//! a structured [`EngineError::Unsupported`] naming the construct and its
//! source span rather than silently approximating.

mod graph;
mod oracle;
mod plan;
mod profile;
mod reduce;

pub use graph::{
    compile, Block, Filter, FilterTest, Join, Output, PatStep, PatTest, QueryGraph, RefKind,
    Template, TplItem, ValueRef, VarNode,
};
pub use oracle::{naive_eval, NaiveOutput};
pub use plan::{IndexSource, JoinStrategy, Plan, PlanFilter, PlanJoin, PlanVar, RunOptions};
pub use profile::{QueryProfile, VarCardinality};
pub use reduce::{reduce, reduce_profiled, DocBinding};

use std::fmt;
use vx_core::{reconstruct, CoreError, StoreHandle, VecDoc};
use vx_xml::{write_document, Element, Node, WriteOptions};
use vx_xquery::{Span, XqError};

/// Engine errors.
#[derive(Debug)]
pub enum EngineError {
    /// Query parse failure.
    Xq(XqError),
    /// Failure from the core layer (reconstruction, store access).
    Core(CoreError),
    /// The query is valid XQ but outside the fragment this engine
    /// evaluates. `construct` names the offending construct; `span` is
    /// its byte range in the query source, when known.
    Unsupported {
        construct: String,
        span: Option<Span>,
    },
    /// The query mentions `doc("…")` for a name the caller did not
    /// provide.
    UnknownDocument(String),
    /// The vectorized document is internally inconsistent.
    Corrupt(String),
}

impl EngineError {
    pub(crate) fn unsupported(construct: impl Into<String>, span: Option<Span>) -> Self {
        EngineError::Unsupported {
            construct: construct.into(),
            span,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Xq(e) => write!(f, "{e}"),
            EngineError::Core(e) => write!(f, "{e}"),
            EngineError::Unsupported { construct, span } => {
                write!(f, "unsupported query construct: {construct}")?;
                if let Some(span) = span {
                    write!(f, " (at bytes {}..{})", span.start, span.end)?;
                }
                Ok(())
            }
            EngineError::UnknownDocument(name) => {
                write!(f, "query references unknown document doc(\"{name}\")")
            }
            EngineError::Corrupt(m) => write!(f, "corrupt vectorized document: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Xq(e) => Some(e),
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XqError> for EngineError {
    fn from(e: XqError) -> Self {
        EngineError::Xq(e)
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// What a query runs against: one document, a named corpus, or opened
/// store handles (whose precomputed [`vx_skeleton::PathIndex`] and
/// persistent value indexes are reused). Built via `From`, so
/// [`Query::run_with`] accepts any of the four shapes directly.
#[derive(Debug, Clone, Copy)]
pub enum Targets<'a> {
    /// Every `doc("…")` name in the query resolves to this document.
    Doc(&'a VecDoc),
    /// Each `doc("name")` resolves through the slice (first entry wins
    /// on duplicates); unknown names fail with
    /// [`EngineError::UnknownDocument`].
    Corpus(&'a [(&'a str, &'a VecDoc)]),
    /// Every `doc("…")` name resolves to this opened store.
    Handle(&'a StoreHandle),
    /// Each `doc("name")` resolves to the handle whose
    /// [`StoreHandle::name`] matches.
    Handles(&'a [StoreHandle]),
}

impl<'a> From<&'a VecDoc> for Targets<'a> {
    fn from(doc: &'a VecDoc) -> Self {
        Targets::Doc(doc)
    }
}

impl<'a> From<&'a [(&'a str, &'a VecDoc)]> for Targets<'a> {
    fn from(docs: &'a [(&'a str, &'a VecDoc)]) -> Self {
        Targets::Corpus(docs)
    }
}

impl<'a> From<&'a Vec<(&'a str, &'a VecDoc)>> for Targets<'a> {
    fn from(docs: &'a Vec<(&'a str, &'a VecDoc)>) -> Self {
        Targets::Corpus(docs)
    }
}

impl<'a> From<&'a StoreHandle> for Targets<'a> {
    fn from(store: &'a StoreHandle) -> Self {
        Targets::Handle(store)
    }
}

impl<'a> From<&'a [StoreHandle]> for Targets<'a> {
    fn from(stores: &'a [StoreHandle]) -> Self {
        Targets::Handles(stores)
    }
}

impl<'a> From<&'a Vec<StoreHandle>> for Targets<'a> {
    fn from(stores: &'a Vec<StoreHandle>) -> Self {
        Targets::Handles(stores)
    }
}

/// What [`Query::run_with`] returns: the output, plus the profile when
/// [`RunOptions::profile`] asked for one.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub output: QueryOutput,
    pub profile: Option<QueryProfile>,
}

/// A compiled query: parse and compile once, run many times.
///
/// ```
/// use vx_engine::{Query, QueryOutput, RunOptions};
/// let xml = "<lib><book><t>A</t></book><book><t>B</t></book></lib>";
/// let doc = vx_core::vectorize(&vx_xml::parse(xml).unwrap()).unwrap();
/// let q = Query::new(r#"for $b in doc("lib")//book return $b/t"#).unwrap();
/// let out = q.run_with(&doc, &RunOptions::default()).unwrap().output;
/// assert_eq!(out.strings(), vec!["A", "B"]);
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    source: String,
    graph: QueryGraph,
}

/// A compiled query holds no per-run state — compile once, run from any
/// number of threads. Kept true at compile time: if scratch ever leaks
/// into `Query`, `vx serve`'s shared query cache stops building here.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Query>();

impl Query {
    /// Parses, desugars, and compiles `source`.
    pub fn new(source: &str) -> Result<Query> {
        let parsed = vx_xquery::parse_query(source)?;
        let graph = compile(&parsed)?;
        Ok(Query {
            source: source.to_string(),
            graph,
        })
    }

    /// The original query text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The compiled query graph.
    pub fn graph(&self) -> &QueryGraph {
        &self.graph
    }

    /// Resolves `targets` into per-document bindings. Handle-backed
    /// targets carry their precomputed [`vx_skeleton::PathIndex`];
    /// bare documents and corpora build one per run.
    fn bindings<'a>(&'a self, targets: &Targets<'a>) -> Vec<DocBinding<'a>> {
        match *targets {
            Targets::Doc(doc) => self
                .graph
                .doc_names()
                .into_iter()
                .map(|name| DocBinding {
                    name,
                    doc,
                    index: None,
                })
                .collect(),
            Targets::Corpus(docs) => docs
                .iter()
                .map(|&(name, doc)| DocBinding {
                    name,
                    doc,
                    index: None,
                })
                .collect(),
            Targets::Handle(store) => self
                .graph
                .doc_names()
                .into_iter()
                .map(|name| DocBinding {
                    name,
                    doc: store.doc(),
                    index: Some(store.index()),
                })
                .collect(),
            Targets::Handles(stores) => stores
                .iter()
                .map(|s| DocBinding {
                    name: s.name(),
                    doc: s.doc(),
                    index: Some(s.index()),
                })
                .collect(),
        }
    }

    /// Runs the query against any [`Targets`] shape under one option
    /// set — the single execution entry point (the pre-0.3
    /// `run`/`run_corpus`/`run_handle`/… family is gone; [`Targets`]
    /// conversions cover every shape it handled).
    ///
    /// Multi-document collection fans out over scoped threads when
    /// [`RunOptions::parallel`] is set (subject to `VX_PARALLEL` and the
    /// host CPU count); results are byte-identical to the serial pass.
    /// With [`RunOptions::profile`] the outcome carries a
    /// [`QueryProfile`] and collection stays serial so the per-step
    /// spans tile the total.
    pub fn run_with<'a>(
        &'a self,
        targets: impl Into<Targets<'a>>,
        options: &RunOptions,
    ) -> Result<RunOutcome> {
        let targets = targets.into();
        let bindings = self.bindings(&targets);
        let (output, profile) = reduce::reduce_with(&self.graph, &bindings, &self.source, options)?;
        Ok(RunOutcome { output, profile })
    }

    /// Explains how the query would execute against `targets` under the
    /// default options: runs collection (one skeleton pass — never
    /// enumeration), then reports exact per-variable cardinalities, the
    /// join strategy the planner picks per edge, and which literal
    /// filters resolve through persistent value indexes. The rendered
    /// form is stable (`vx explain`, the server's `"explain": true`).
    pub fn explain<'a>(&'a self, targets: impl Into<Targets<'a>>) -> Result<Plan> {
        self.explain_with(targets, &RunOptions::default())
    }

    /// As [`Query::explain`] under explicit options (forced strategy,
    /// indexes off).
    pub fn explain_with<'a>(
        &'a self,
        targets: impl Into<Targets<'a>>,
        options: &RunOptions,
    ) -> Result<Plan> {
        let targets = targets.into();
        let bindings = self.bindings(&targets);
        reduce::explain_with(&self.graph, &bindings, options)
    }
}

/// The result of running a [`Query`].
// One value exists per query result; the size gap between the variants
// (`VecDoc` carries its sorted-run side-table inline) never multiplies.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum QueryOutput {
    /// `return $x/p` — the projected text values, as raw bytes (XML text
    /// is not guaranteed to be meaningful UTF-8 after vectorization;
    /// decoding is an explicit opt-in via [`QueryOutput::strings`]).
    Values(Vec<Vec<u8>>),
    /// `return <r>…</r>` — a *vectorized* result document: the
    /// constructed elements under a synthetic `<results>` root, built
    /// skeleton-and-vectors first (never a DOM).
    Document(VecDoc),
}

impl QueryOutput {
    /// The output's text values, lossily decoded to `String`s. For
    /// `Values` these are the projected values; for `Document`, every
    /// text value of the constructed document in document order
    /// (attribute values first within each element, matching
    /// vectorization order).
    pub fn strings(&self) -> Vec<String> {
        match self {
            QueryOutput::Values(values) => values
                .iter()
                .map(|v| String::from_utf8_lossy(v).into_owned())
                .collect(),
            QueryOutput::Document(doc) => match reconstruct(doc) {
                Ok(dom) => {
                    let mut out = Vec::new();
                    collect_texts(&dom.root, &mut out);
                    out
                }
                Err(_) => Vec::new(),
            },
        }
    }

    /// Serializes the output as compact XML. A `Document` reconstructs
    /// and writes its root; `Values` are wrapped as
    /// `<results><value>…</value></results>` (lossily decoded).
    pub fn to_xml(&self) -> Result<String> {
        let opts = WriteOptions::compact();
        match self {
            QueryOutput::Document(doc) => Ok(write_document(&reconstruct(doc)?, &opts)),
            QueryOutput::Values(values) => {
                let mut root = Element::new("results");
                for v in values {
                    root.children.push(Node::Element(
                        Element::new("value").with_text(String::from_utf8_lossy(v).into_owned()),
                    ));
                }
                Ok(write_document(&vx_xml::Document::from_root(root), &opts))
            }
        }
    }
}

fn collect_texts(element: &Element, out: &mut Vec<String>) {
    for (_, value) in &element.attributes {
        out.push(value.clone());
    }
    for child in &element.children {
        match child {
            Node::Element(e) => collect_texts(e, out),
            Node::Text(t) | Node::CData(t) => out.push(t.clone()),
            _ => {}
        }
    }
}
