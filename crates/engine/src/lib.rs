//! `vx-engine` — query evaluation over vectorized documents (DESIGN.md
//! row 6).
//!
//! The paper evaluates XQ by compiling a query into a *query graph* and
//! reducing it against `VEC(T)` with vector operations, never rebuilding
//! the document. This crate implements the minimal slice of that plan:
//!
//! * [`compile`] turns a (desugared) [`vx_xquery::Query`] into a
//!   [`QueryGraph`]: one target element path, a relative projection path,
//!   and a set of existential/equality filters anchored on ancestors of
//!   the target.
//! * [`reduce`] evaluates the graph against a [`vx_core::VecDoc`] using
//!   skeleton path counts only: occurrence ranges are prefix sums over
//!   per-binding text counts (document order makes every binding's values
//!   a contiguous vector slice), so selection and projection touch just
//!   the vectors named by the query.
//! * [`naive_eval`] is the differential oracle: reconstruct the document
//!   and walk the DOM. `reduce` and `naive_eval` must agree on every
//!   supported query; the engine tests enforce this.
//!
//! Anything outside the supported fragment — wildcards, `//`, joins,
//! returning whole elements, cross-product bindings — fails with
//! [`EngineError::Unsupported`] rather than silently approximating.
//! Later PRs widen the fragment (see ROADMAP.md).

mod graph;
mod oracle;
mod reduce;

pub use graph::{compile, Filter, QueryGraph, Test};
pub use oracle::naive_eval;
pub use reduce::reduce;

use std::fmt;
use vx_core::{CoreError, VecDoc};
use vx_xquery::XqError;

/// Engine errors.
#[derive(Debug)]
pub enum EngineError {
    /// Query parse failure.
    Xq(XqError),
    /// Failure from the core layer (reconstruction, store access).
    Core(CoreError),
    /// The query is valid XQ but outside the fragment this engine evaluates.
    Unsupported(String),
    /// The vectorized document is internally inconsistent.
    Corrupt(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Xq(e) => write!(f, "{e}"),
            EngineError::Core(e) => write!(f, "{e}"),
            EngineError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            EngineError::Corrupt(m) => write!(f, "corrupt vectorized document: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Xq(e) => Some(e),
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XqError> for EngineError {
    fn from(e: XqError) -> Self {
        EngineError::Xq(e)
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Convenience entry point: parse, desugar, compile, and reduce `query`
/// against `doc`, returning result values as (lossy) strings.
pub fn run(doc: &VecDoc, query: &str) -> Result<Vec<String>> {
    let parsed = vx_xquery::parse_query(query)?;
    let graph = compile(&parsed)?;
    let values = reduce(doc, &graph)?;
    Ok(values
        .into_iter()
        .map(|v| String::from_utf8_lossy(&v).into_owned())
        .collect())
}
