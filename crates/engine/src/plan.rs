//! Cardinality-aware join planning and the redesigned execution options.
//!
//! The paper's evaluator (pre-0.3) hash-joined every equality edge: build
//! a `value → occurrences` table over the side bound last, then probe it
//! per enclosing tuple and *scan every candidate occurrence* against the
//! matched set. For a low-selectivity self-join (Table 3's SQ3) that scan
//! is quadratic — every probe touches every build occurrence.
//!
//! The planner kills that cliff with two more strategies, both driven by
//! the value-sorted runs that version-3 `.vec` files persist (and that
//! can be rebuilt at query time when a run is forced on an unindexed
//! store):
//!
//! * [`JoinStrategy::IndexNestedLoop`] — binary-search the build side's
//!   sorted run per probe value. Wins when the probe side is selective.
//! * [`JoinStrategy::SortMerge`] — merge the two sorted runs once into
//!   per-probe-occurrence match lists. Wins when both sides are large.
//!
//! Strategy choice is per join edge, from exact post-collection
//! cardinalities: hash when no index is available (or indexes are
//! disabled), otherwise index-nested-loop when
//! `probe_values · ⌈log₂ build_values⌉ < build_values`, sort-merge
//! beyond. `VX_PLAN=hash|inl|merge` or [`RunOptions::strategy`] forces
//! one strategy for every edge — the differential suite runs all three
//! and the default plan against the naive oracle, byte-for-byte.
//!
//! [`Plan`] is the stable, renderable description of those choices that
//! [`crate::Query::explain`], `vx explain`, and the server's
//! `"explain": true` all share.

use std::fmt;

/// How one equality join edge is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Build a `value → occurrence set` hash table, probe per tuple,
    /// scan candidates against the matched set. The pre-0.3 behaviour
    /// and the fallback when no sorted run is available.
    Hash,
    /// Binary-search the build side's value-sorted run per probe value.
    IndexNestedLoop,
    /// Merge both sides' value-sorted runs once into per-probe-occurrence
    /// match lists; probing is then a slice lookup.
    SortMerge,
}

impl JoinStrategy {
    /// Parses a `VX_PLAN` value. `hash`, `inl`, `merge` (ASCII
    /// case-insensitive); anything else is `None`.
    pub fn parse(s: &str) -> Option<JoinStrategy> {
        if s.eq_ignore_ascii_case("hash") {
            Some(JoinStrategy::Hash)
        } else if s.eq_ignore_ascii_case("inl") {
            Some(JoinStrategy::IndexNestedLoop)
        } else if s.eq_ignore_ascii_case("merge") {
            Some(JoinStrategy::SortMerge)
        } else {
            None
        }
    }

    /// The `VX_PLAN` spelling of the strategy.
    pub fn name(&self) -> &'static str {
        match self {
            JoinStrategy::Hash => "hash",
            JoinStrategy::IndexNestedLoop => "inl",
            JoinStrategy::SortMerge => "merge",
        }
    }
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a join's sorted runs come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexSource {
    /// Every run the strategy needs was loaded from a version-3 `.vec`
    /// value index at store-open time.
    Persistent,
    /// At least one run was sorted at query time (forced strategy on a
    /// store without a persistent index).
    QuerySort,
    /// No run needed — the hash strategy.
    None,
}

impl IndexSource {
    fn label(&self) -> &'static str {
        match self {
            IndexSource::Persistent => "persistent-index",
            IndexSource::QuerySort => "query-sort",
            IndexSource::None => "none",
        }
    }
}

/// Execution options for [`crate::Query::run_with`] — the one knob set
/// that replaced the pre-0.3 `run`/`run_corpus`/`run_handle`/… family.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Fan multi-document collection out over scoped threads (subject to
    /// `VX_PARALLEL` and the host CPU count). Profiled runs always
    /// collect serially so the per-step spans tile the total.
    pub parallel: bool,
    /// Collect a [`crate::QueryProfile`] into
    /// [`crate::RunOutcome::profile`].
    pub profile: bool,
    /// Let the planner use persistent value indexes (join strategy
    /// choice and literal-filter point lookups). Off means every join
    /// hash-builds and every filter scans, exactly as pre-0.3.
    pub use_indexes: bool,
    /// Force one join strategy for every edge instead of the
    /// per-edge cardinality choice. `None` defers to the `VX_PLAN`
    /// environment variable, then to the planner.
    pub strategy: Option<JoinStrategy>,
    /// Whether `*`/`//` step patterns are matched through the
    /// structural self-index (containment bitsets prune subtrees the
    /// remaining steps provably cannot complete in). `None` defers to
    /// the `VX_STRUCT_INDEX` environment variable (`0`/`off` disables;
    /// unset or anything else enables).
    pub struct_index: Option<bool>,
    /// Request-scoped trace id attached to every `engine.step` /
    /// `engine.join` / `engine.reduce` event this run emits through the
    /// `VX_LOG` sink, so concurrent callers (the server runs one query
    /// per connection thread) can attribute spans and counter deltas to
    /// a specific request. `None` leaves the events unattributed, as
    /// before.
    pub trace: Option<vx_obs::TraceId>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            parallel: true,
            profile: false,
            use_indexes: true,
            strategy: None,
            struct_index: None,
            trace: None,
        }
    }
}

/// Picks the strategy for one join edge. `forced` comes from
/// [`RunOptions::strategy`] or `VX_PLAN`; `has_index` is whether the
/// build side has a usable persistent sorted run; the cardinalities are
/// exact post-collection value counts.
pub(crate) fn choose_strategy(
    forced: Option<JoinStrategy>,
    use_indexes: bool,
    has_index: bool,
    probe_values: u64,
    build_values: u64,
) -> JoinStrategy {
    if let Some(s) = forced {
        return s;
    }
    if !use_indexes || !has_index {
        return JoinStrategy::Hash;
    }
    if probe_values.saturating_mul(ceil_log2(build_values)) < build_values {
        JoinStrategy::IndexNestedLoop
    } else {
        JoinStrategy::SortMerge
    }
}

/// `⌈log₂ n⌉`, floored at 1 — the per-probe binary-search cost unit.
fn ceil_log2(n: u64) -> u64 {
    u64::from(n.max(2).next_power_of_two().trailing_zeros()).max(1)
}

/// One variable in a [`Plan`].
#[derive(Debug, Clone)]
pub struct PlanVar {
    /// The `$name` from the query.
    pub name: String,
    /// Root: `doc("…")` for document-rooted variables, `$parent` for
    /// nested ones.
    pub root: String,
    /// The variable's step path rendered as `/a//b/*`.
    pub path: String,
    /// Exact occurrence count after collection.
    pub occurrences: u64,
    /// How the step pattern is matched against the skeleton:
    /// `"summary"` when the structural self-index prunes the walk,
    /// `"nfa"` when the pattern is summary-opaque (no named step) or
    /// the index is disabled.
    pub matching: &'static str,
}

/// One equality join edge in a [`Plan`].
#[derive(Debug, Clone)]
pub struct PlanJoin {
    /// `$var/path` of the probe side (bound earlier).
    pub probe: String,
    /// `$var/path` of the build side (bound last).
    pub build: String,
    pub strategy: JoinStrategy,
    pub index: IndexSource,
    /// Total probe-side values.
    pub probe_values: u64,
    /// Total build-side values (the run / hash-table entry count).
    pub build_values: u64,
    /// `None` when the edge is checked per tuple at block entry (both
    /// sides bound in enclosing blocks) rather than planned.
    pub planned: bool,
}

/// One literal filter in a [`Plan`].
#[derive(Debug, Clone)]
pub struct PlanFilter {
    /// Human-readable test, e.g. `$b/id = "42"` or `exists($a/name)`.
    pub test: String,
    /// `true` when the filter resolves through a persistent value index
    /// as a point lookup instead of a per-occurrence scan.
    pub indexed: bool,
}

/// A stable, renderable description of how a query will execute.
///
/// Produced by [`crate::Query::explain`]; rendered by `vx explain` and
/// the server's `"explain": true`. The text form is covered by a golden
/// test — extend it, don't reshuffle it.
#[derive(Debug, Clone)]
pub struct Plan {
    pub variables: Vec<PlanVar>,
    pub joins: Vec<PlanJoin>,
    pub filters: Vec<PlanFilter>,
    /// `values` or `document`.
    pub output: &'static str,
}

impl Plan {
    /// Renders the plan as stable, line-oriented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("variables:\n");
        for v in &self.variables {
            out.push_str(&format!(
                "  ${} := {}{}  occurrences={} match={}\n",
                v.name, v.root, v.path, v.occurrences, v.matching
            ));
        }
        if !self.joins.is_empty() {
            out.push_str("joins:\n");
            for j in &self.joins {
                if j.planned {
                    out.push_str(&format!(
                        "  {} = {}  strategy={} access={} probe_values={} build_values={}\n",
                        j.probe,
                        j.build,
                        j.strategy,
                        j.index.label(),
                        j.probe_values,
                        j.build_values
                    ));
                } else {
                    out.push_str(&format!(
                        "  {} = {}  strategy=entry-check\n",
                        j.probe, j.build
                    ));
                }
            }
        }
        if !self.filters.is_empty() {
            out.push_str("filters:\n");
            for f in &self.filters {
                out.push_str(&format!(
                    "  {}  access={}\n",
                    f.test,
                    if f.indexed { "value-index" } else { "scan" }
                ));
            }
        }
        out.push_str(&format!("output: {}\n", self.output));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_parse_round_trips() {
        for s in [
            JoinStrategy::Hash,
            JoinStrategy::IndexNestedLoop,
            JoinStrategy::SortMerge,
        ] {
            assert_eq!(JoinStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(JoinStrategy::parse("MERGE"), Some(JoinStrategy::SortMerge));
        assert_eq!(JoinStrategy::parse("nested"), None);
    }

    #[test]
    fn chooser_prefers_hash_without_index_and_scales_with_cardinality() {
        // No index or indexes off → hash, regardless of cardinality.
        assert_eq!(
            choose_strategy(None, true, false, 10, 1_000_000),
            JoinStrategy::Hash
        );
        assert_eq!(
            choose_strategy(None, false, true, 10, 1_000_000),
            JoinStrategy::Hash
        );
        // Selective probe → binary search per probe beats a full merge.
        assert_eq!(
            choose_strategy(None, true, true, 10, 1_000_000),
            JoinStrategy::IndexNestedLoop
        );
        // Both sides large (SQ3's self-join shape) → sort-merge.
        assert_eq!(
            choose_strategy(None, true, true, 20_000, 20_000),
            JoinStrategy::SortMerge
        );
        // Forced wins over everything.
        assert_eq!(
            choose_strategy(Some(JoinStrategy::Hash), true, true, 20_000, 20_000),
            JoinStrategy::Hash
        );
    }
}
