//! `vx-ingest` — the streaming, bounded-memory vectorization pipeline.
//!
//! The DOM path (`vx-core::vectorize`) materializes the whole document
//! tree before building `VEC(T) = (S, V)`, capping ingest at available
//! memory. This crate builds the same `(S, V)` in **one pass over parse
//! events** with no tree at all:
//!
//! * [`vx_xml::Events`] yields start/attr/text/end events straight off a
//!   [`std::io::Read`] source;
//! * [`vx_skeleton::SkeletonBuilder`] hash-conses each subtree bottom-up
//!   the moment its end tag arrives, run-length-coalescing repeated edges
//!   on the fly — memory is the compressed DAG plus the open-element
//!   stack;
//! * [`vx_vector::SpillVector`] buffers each path's values in one 8 KiB
//!   page, spilling full pages to a shared temporary file through the
//!   bounded [`vx_vector::SpillPool`] buffer pool.
//!
//! Peak memory is therefore `O(compressed skeleton + open-element stack +
//! one page per distinct path + pool frames)` — the paper's scenario of
//! repositories far larger than RAM. The [`Pipeline`] here mirrors the
//! DOM vectorizer's construction order exactly (name interning at element
//! entry, `@attr` pseudo-children in attribute order, `#` markers for
//! text), which is what makes the two paths' on-disk output
//! byte-identical; `vx-core::Store::ingest_stream` wires this into the
//! persistent store and the root `tests/ingest_stream.rs` suite pins the
//! equivalence differentially.

use std::collections::HashMap;
use std::fmt;
use vx_skeleton::{NodeId, Skeleton, SkeletonBuilder};
use vx_vector::{SpillPool, SpillVector};
use vx_xml::Event;

/// Errors produced by the streaming pipeline.
#[derive(Debug)]
pub enum IngestError {
    Xml(vx_xml::XmlError),
    Storage(vx_storage::StorageError),
    Skeleton(vx_skeleton::SkeletonError),
    Vector(vx_vector::VectorError),
    /// The stream contains a construct vectorization cannot represent
    /// losslessly (comments / processing instructions inside the tree) in
    /// strict mode. Same wording as the DOM path's error.
    Unsupported(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Xml(e) => write!(f, "{e}"),
            IngestError::Storage(e) => write!(f, "{e}"),
            IngestError::Skeleton(e) => write!(f, "{e}"),
            IngestError::Vector(e) => write!(f, "{e}"),
            IngestError::Unsupported(m) => write!(f, "unsupported content: {m}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<vx_xml::XmlError> for IngestError {
    fn from(e: vx_xml::XmlError) -> Self {
        IngestError::Xml(e)
    }
}

impl From<vx_storage::StorageError> for IngestError {
    fn from(e: vx_storage::StorageError) -> Self {
        IngestError::Storage(e)
    }
}

impl From<vx_skeleton::SkeletonError> for IngestError {
    fn from(e: vx_skeleton::SkeletonError) -> Self {
        IngestError::Skeleton(e)
    }
}

impl From<vx_vector::VectorError> for IngestError {
    fn from(e: vx_vector::VectorError) -> Self {
        IngestError::Vector(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, IngestError>;

/// Pipeline policy knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineOptions {
    /// When false (default), comments and processing instructions inside
    /// the tree are an error, exactly as in `vx-core::VectorizeOptions`.
    /// When true they are dropped. Prolog/epilog misc is always ignored.
    pub drop_unrepresentable: bool,
}

/// Plain tallies accumulated while feeding events — integer adds on the
/// event path, always on. Values depend only on the input stream, so two
/// ingests of the same document report identical stats.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Parse events consumed (all kinds, including ignored misc).
    pub events: u64,
    /// Elements opened.
    pub elements: u64,
    /// Attribute values appended to vectors.
    pub attr_values: u64,
    /// Text/CDATA values appended to vectors.
    pub text_values: u64,
}

impl PipelineStats {
    /// Total values appended across all vectors.
    pub fn values(&self) -> u64 {
        self.attr_values + self.text_values
    }
}

/// Everything the pipeline accumulated, ready for the store layer to
/// serialize: the consed skeleton, and one spilled vector per path in
/// first-occurrence document order (the store's `v{NNNNNN}.vec` order).
pub struct IngestOutput {
    pub skeleton: Skeleton,
    pub root: NodeId,
    pub vectors: Vec<(String, SpillVector)>,
    pub pool: SpillPool,
    pub stats: PipelineStats,
}

/// The event-to-`(S, V)` driver. Feed it every event of one document,
/// then [`Pipeline::finish`].
pub struct Pipeline {
    builder: SkeletonBuilder,
    pool: SpillPool,
    vectors: Vec<(String, SpillVector)>,
    by_path: HashMap<String, usize>,
    path: String,
    parent_lens: Vec<usize>,
    options: PipelineOptions,
    stats: PipelineStats,
}

impl Pipeline {
    /// A pipeline spilling through `pool`.
    pub fn new(pool: SpillPool, options: PipelineOptions) -> Self {
        Pipeline {
            builder: SkeletonBuilder::new(),
            pool,
            vectors: Vec::new(),
            by_path: HashMap::new(),
            path: String::new(),
            parent_lens: Vec::new(),
            options,
            stats: PipelineStats::default(),
        }
    }

    /// Tallies so far (final values after the last [`Pipeline::feed`]).
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    fn push_value(&mut self, path: &str, value: &[u8]) -> Result<()> {
        let idx = match self.by_path.get(path) {
            Some(&i) => i,
            None => {
                let i = self.vectors.len();
                self.vectors.push((path.to_string(), SpillVector::new()));
                self.by_path.insert(path.to_string(), i);
                i
            }
        };
        self.vectors[idx].1.append(&mut self.pool, value)?;
        Ok(())
    }

    /// Consumes one parse event.
    pub fn feed(&mut self, event: Event) -> Result<()> {
        self.stats.events += 1;
        match event {
            Event::Decl(_) => {}
            Event::Start(name) => {
                self.stats.elements += 1;
                self.builder.start_element(&name)?;
                self.parent_lens.push(self.path.len());
                if !self.path.is_empty() {
                    self.path.push('/');
                }
                self.path.push_str(&name);
            }
            Event::Attr { name, value } => {
                self.stats.attr_values += 1;
                self.builder.attribute(&name)?;
                let attr_path = format!("{}/@{name}", self.path);
                self.push_value(&attr_path, value.as_bytes())?;
            }
            Event::Text(t) | Event::CData(t) => {
                self.stats.text_values += 1;
                self.builder.text()?;
                let path = std::mem::take(&mut self.path);
                let result = self.push_value(&path, t.as_bytes());
                self.path = path;
                result?;
            }
            Event::End(_) => {
                self.builder.end_element()?;
                let parent_len = self
                    .parent_lens
                    .pop()
                    .expect("builder accepted end_element, so an element was open");
                self.path.truncate(parent_len);
            }
            Event::Comment(_) | Event::Pi { .. } => {
                // Prolog/epilog misc is ignored by vectorization; inside
                // the tree it is unrepresentable, same as the DOM path.
                if self.builder.depth() > 0 && !self.options.drop_unrepresentable {
                    return Err(IngestError::Unsupported(format!(
                        "comment/processing instruction under `{}`; \
                         vectorization drops these only with drop_unrepresentable",
                        self.path
                    )));
                }
            }
        }
        Ok(())
    }

    /// Finishes the pass. Errors on an unbalanced or empty stream.
    pub fn finish(self) -> Result<IngestOutput> {
        let (skeleton, root) = self.builder.finish()?;
        Ok(IngestOutput {
            skeleton,
            root,
            vectors: self.vectors,
            pool: self.pool,
            stats: self.stats,
        })
    }
}

/// Runs a whole event stream through a [`Pipeline`] in one call.
pub fn run(
    events: impl Iterator<Item = vx_xml::Result<Event>>,
    pool: SpillPool,
    options: PipelineOptions,
) -> Result<IngestOutput> {
    let mut pipeline = Pipeline::new(pool, options);
    for event in events {
        pipeline.feed(event?)?;
    }
    pipeline.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use vx_xml::Events;

    fn temp_spill(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vx-ingest-{}-{name}.spill", std::process::id()))
    }

    fn ingest(xml: &str, name: &str, options: PipelineOptions) -> Result<IngestOutput> {
        let pool = SpillPool::create(&temp_spill(name), 4).unwrap();
        run(Events::new(xml.as_bytes()), pool, options)
    }

    fn values(output: &mut IngestOutput, path: &str) -> Vec<Vec<u8>> {
        let i = output
            .vectors
            .iter()
            .position(|(p, _)| p == path)
            .unwrap_or_else(|| panic!("no vector for {path}"));
        let (_, sv) = output.vectors.remove(i);
        let mut bytes = Vec::new();
        sv.finish_plain(&mut output.pool, &mut bytes).unwrap();
        let vec = vx_vector::Vector::decode(&bytes).unwrap();
        vec.iter().map(<[u8]>::to_vec).collect()
    }

    #[test]
    fn paths_arrive_in_first_occurrence_order_with_values() {
        let mut out = ingest(
            r#"<lib><book id="1"><title>T1</title></book><book id="2"><title>T2</title></book></lib>"#,
            "order",
            PipelineOptions::default(),
        )
        .unwrap();
        let paths: Vec<_> = out.vectors.iter().map(|(p, _)| p.clone()).collect();
        assert_eq!(paths, ["lib/book/@id", "lib/book/title"]);
        assert_eq!(
            values(&mut out, "lib/book/title"),
            [b"T1".to_vec(), b"T2".to_vec()]
        );
        assert_eq!(
            values(&mut out, "lib/book/@id"),
            [b"1".to_vec(), b"2".to_vec()]
        );
        // lib + 2 × (book, @id, '#', title, '#') = 11 expanded nodes.
        assert_eq!(out.skeleton.expanded_size(out.root), 11);
    }

    #[test]
    fn repeated_rows_compress_in_flight() {
        let mut xml = String::from("<t>");
        for i in 0..500 {
            xml.push_str(&format!("<r><c>{i}</c></r>"));
        }
        xml.push_str("</t>");
        let out = ingest(&xml, "rle", PipelineOptions::default()).unwrap();
        // '#', c, r, t — the 500 identical rows share one DAG node.
        assert_eq!(out.skeleton.len(), 4);
        assert_eq!(out.skeleton.expanded_size(out.root), 1 + 500 * 3);
    }

    #[test]
    fn strict_mode_rejects_tree_comments_like_the_dom_path() {
        let Err(err) = ingest("<a><!-- c --></a>", "strict", PipelineOptions::default()) else {
            panic!("strict mode must reject tree comments");
        };
        let IngestError::Unsupported(m) = err else {
            panic!("expected Unsupported, got {err}");
        };
        assert!(m.contains("under `a`"));
        // Dropping mode and prolog/epilog misc are fine.
        assert!(ingest(
            "<a><!-- c --></a>",
            "drop",
            PipelineOptions {
                drop_unrepresentable: true
            }
        )
        .is_ok());
        assert!(ingest(
            "<!-- pre --><a>x</a><!-- post -->",
            "misc",
            PipelineOptions::default()
        )
        .is_ok());
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(matches!(
            ingest("<a><b></a>", "bad", PipelineOptions::default()),
            Err(IngestError::Xml(_))
        ));
    }
}
