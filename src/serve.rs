//! `vx serve` — a std-only HTTP/1.1 + JSON query server over shared
//! immutable stores.
//!
//! The server is the payoff of the [`vx_core::StoreHandle`] refactor:
//! every store is opened **once** at startup, every query is compiled
//! **once** into the per-`(store, query-text)` cache, and a fixed pool
//! of worker threads answers requests concurrently against the same
//! `Arc`-shared handles — no locks anywhere on the read path (the query
//! cache takes a brief `RwLock` around a `HashMap` probe; evaluation
//! itself touches only immutable store data plus per-call scratch).
//!
//! The protocol is deliberately small (no external dependencies — the
//! build environment is offline):
//!
//! | endpoint | body | answer |
//! |---|---|---|
//! | `POST /query` | `{"store":"name","query":"XQ…","out":"values"\|"xml"}` | `{"store","query","cached","trace","values":[…]}` or `{"xml":"…"}` |
//! | `POST /query` + `"explain":true` | same body | `{"store","query","cached","trace","plan":"…"}` — the planner's decisions, nothing runs |
//! | `POST /query` + `"profile":true` | same body | the answer plus `"profile"`: per-step seconds, deterministic counters, per-variable cardinalities |
//! | `GET /stats` | — | JSON: server counters, engine counter totals, slow-log summary, per-store catalog summary |
//! | `GET /metrics` | — | Prometheus text exposition (counters, gauges, cumulative latency buckets) |
//! | `GET /debug/slow` | — | the slow-query flight recorder's entries (plan + profile per slow request) |
//! | `GET /healthz` | — | `{"status":"ok","stores":[…]}` |
//! | `POST /reload` | — | reopens every store from disk and swaps the handles |
//! | `POST /shutdown` | — | acknowledges, then drains the worker pool |
//!
//! **Request-scoped tracing.** Every request is assigned a
//! [`vx_obs::TraceId`] at parse time. The id is threaded through the
//! engine via [`RunOptions::trace`] — so with `VX_LOG` on, every
//! `engine.step`/`engine.join`/`engine.reduce` event carries a `trace`
//! field attributing spans and counter deltas to one request even when
//! many run concurrently — and echoed to the client: `"trace"` in
//! `/query` answers, `"request_id"` inside every structured error body.
//! `/query` always runs instrumented (the flight recorder below needs
//! the profile *after* the run turns out slow), which pins multi-store
//! collection to the serial path; per-request counters are additionally
//! folded into process totals served by `/stats` and `/metrics`.
//!
//! **Slow-query flight recorder.** Requests slower than `VX_SLOW_MS`
//! milliseconds (default 100, overridable per server via
//! [`ServeOptions`]) are captured into a fixed-size [`vx_obs::Ring`]:
//! full profile, rendered plan, chosen join strategies, and trace id.
//! `GET /debug/slow` exposes the ring; a graceful shutdown dumps it to
//! stderr so a post-mortem still sees the tail. Capturing the plan
//! re-runs collection (enumeration never starts), a deliberate trade:
//! slow queries are rare and already expensive, and the plan is
//! reconstructed only for them.
//!
//! **Hot reload.** Each store lives in a slot holding an
//! `RwLock<StoreHandle>`; request handlers clone the handle (an `Arc`
//! bump) under a read lock, so `POST /reload` can reopen the directory —
//! picking up appended WAL records or a new compacted generation — and
//! swap the slot under the write lock while in-flight queries finish
//! against the handle they already cloned. The compiled-query cache
//! survives reloads untouched: compilation only parses query text, never
//! the store. The cache is bounded (FIFO eviction, default 256 entries);
//! evictions count and emit a `serve.cache.evict` event.
//!
//! Errors are structured JSON —
//! `{"error":{"code","kind","message","request_id"}}` — mapped from
//! [`vx_engine::EngineError`]: parse/unsupported/unknown-document
//! failures are 400s, an unknown store name is a 404, and a corrupt
//! store is a 500. `store` may be omitted: with one store every
//! `doc("…")` name resolves to it, and with several the query's
//! `doc("name")` references resolve across the stores by name
//! (cross-store joins included).

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use vx_core::json::{self, Json};
use vx_core::StoreHandle;
use vx_engine::{EngineError, Query, RunOptions, Targets};
use vx_obs::registry::LATENCY_BOUNDS_US;
use vx_obs::{Counters, Histogram, Registry, Ring, TraceId};

/// Largest accepted request body (a query text, not a document).
const MAX_BODY: usize = 1 << 20;

/// Per-connection socket read timeout: a stalled keep-alive client
/// releases its worker instead of pinning it forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Server tuning knobs, separated from `bind` so tests can pin them
/// explicitly instead of racing on process-global environment variables.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Requests at least this many milliseconds long enter the slow-query
    /// flight recorder. `0` records every query.
    pub slow_ms: u64,
    /// Flight-recorder ring capacity (most recent N slow queries).
    pub slow_log_capacity: usize,
    /// Compiled-query cache bound; oldest entries evict first (FIFO).
    pub query_cache_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            slow_ms: 100,
            slow_log_capacity: 64,
            query_cache_capacity: 256,
        }
    }
}

impl ServeOptions {
    /// Defaults with environment overrides: `VX_SLOW_MS` (threshold in
    /// milliseconds) and `VX_SERVE_CACHE` (query-cache capacity).
    pub fn from_env() -> ServeOptions {
        let mut options = ServeOptions::default();
        if let Some(ms) = std::env::var("VX_SLOW_MS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            options.slow_ms = ms;
        }
        if let Some(cap) = std::env::var("VX_SERVE_CACHE")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            options.query_cache_capacity = cap;
        }
        options
    }
}

/// One store's slot: the directory it reloads from and the currently
/// served handle. Swapped whole by `POST /reload`; readers clone the
/// handle (an `Arc` bump) and never hold the lock across evaluation.
struct StoreSlot {
    dir: PathBuf,
    handle: RwLock<StoreHandle>,
}

impl StoreSlot {
    /// Clones the current handle. A poisoned lock (a panicking writer)
    /// still holds a valid handle — reloads build the new handle fully
    /// before taking the write lock — so serving continues.
    fn get(&self) -> StoreHandle {
        match self.handle.read() {
            Ok(handle) => handle.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    fn swap(&self, new_handle: StoreHandle) {
        match self.handle.write() {
            Ok(mut handle) => *handle = new_handle,
            Err(poisoned) => *poisoned.into_inner() = new_handle,
        }
    }
}

/// The bounded compiled-query cache: `(store, query-text)` → compiled
/// query, FIFO eviction at capacity. FIFO (not LRU) keeps the hot-path
/// probe a pure read — promoting on hit would need a write lock per
/// request.
struct QueryCache {
    map: HashMap<(String, String), Arc<Query>>,
    fifo: VecDeque<(String, String)>,
    capacity: usize,
}

impl QueryCache {
    fn new(capacity: usize) -> QueryCache {
        QueryCache {
            map: HashMap::new(),
            fifo: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, key: &(String, String)) -> Option<Arc<Query>> {
        self.map.get(key).cloned()
    }

    /// Inserts `query`, returning the evicted key when the cache was
    /// full. Re-inserting an existing key (two workers compiled the same
    /// miss concurrently) replaces the entry without growing the queue.
    fn insert(&mut self, key: (String, String), query: Arc<Query>) -> Option<(String, String)> {
        if self.map.insert(key.clone(), query).is_some() {
            return None;
        }
        self.fifo.push_back(key);
        if self.fifo.len() > self.capacity {
            if let Some(oldest) = self.fifo.pop_front() {
                self.map.remove(&oldest);
                return Some(oldest);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Everything the worker threads share. Store slots swap atomically on
/// reload and compiled queries are immutable once inserted; the
/// histograms are lock-free.
struct AppState {
    /// Store name (directory basename) → slot, plus the names in
    /// startup order for deterministic listings.
    stores: HashMap<String, StoreSlot>,
    order: Vec<String>,
    queries: RwLock<QueryCache>,
    /// Per-endpoint request latency, recorded for every answered
    /// request including error answers.
    lat_query: Histogram,
    lat_stats: Histogram,
    lat_metrics: Histogram,
    lat_healthz: Histogram,
    requests: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    /// Successful `POST /reload` store swaps.
    reloads: AtomicU64,
    /// Open TCP connections (keep-alive idlers included).
    connections: AtomicU64,
    /// Requests currently inside `handle`.
    inflight: AtomicU64,
    /// Requests refused by admission control. Always 0 today — the
    /// gauge/counter pair exists so the upcoming backpressure work lands
    /// into an already-scraped metric.
    rejected: AtomicU64,
    /// Process totals of every per-request engine profile: the sum over
    /// requests of their deterministic counter deltas.
    engine_totals: Mutex<Counters>,
    /// The slow-query flight recorder (entries are pre-rendered JSON).
    slow_log: Ring<Json>,
    slow_ms: u64,
    shutdown: AtomicBool,
    started: Instant,
}

impl AppState {
    fn engine_totals_snapshot(&self) -> Counters {
        match self.engine_totals.lock() {
            Ok(totals) => totals.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    fn merge_engine_counters(&self, counters: &Counters) {
        let mut totals = match self.engine_totals.lock() {
            Ok(totals) => totals,
            Err(poisoned) => poisoned.into_inner(),
        };
        totals.merge(counters);
    }
}

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<AppState>();

/// A bound, not-yet-running server. [`Server::bind`] opens the stores
/// and the listener; [`Server::run`] blocks until a `POST /shutdown`
/// drains the pool. Tests bind to port 0 and read
/// [`Server::local_addr`].
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    threads: usize,
}

impl Server {
    /// Opens every store directory into a [`StoreHandle`] (name = the
    /// directory's basename) and binds `addr`, with options from the
    /// environment (`VX_SLOW_MS`, `VX_SERVE_CACHE`). Duplicate basenames
    /// and unopenable stores are errors — a server that silently dropped
    /// a store would answer 404s for data the operator pointed it at.
    pub fn bind(store_dirs: &[&Path], addr: &str, threads: usize) -> crate::Result<Server> {
        Server::bind_with(store_dirs, addr, threads, &ServeOptions::from_env())
    }

    /// [`Server::bind`] with explicit [`ServeOptions`].
    pub fn bind_with(
        store_dirs: &[&Path],
        addr: &str,
        threads: usize,
        options: &ServeOptions,
    ) -> crate::Result<Server> {
        if store_dirs.is_empty() {
            return Err(crate::Error::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "serve: at least one store directory is required",
            )));
        }
        let mut stores = HashMap::new();
        let mut order = Vec::new();
        for dir in store_dirs {
            let handle = StoreHandle::open(dir).map_err(crate::Error::Core)?;
            let name = handle.name().to_string();
            let slot = StoreSlot {
                dir: dir.to_path_buf(),
                handle: RwLock::new(handle),
            };
            if stores.insert(name.clone(), slot).is_some() {
                return Err(crate::Error::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("serve: duplicate store name `{name}`"),
                )));
            }
            order.push(name);
        }
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state: Arc::new(AppState {
                stores,
                order,
                queries: RwLock::new(QueryCache::new(options.query_cache_capacity)),
                lat_query: Histogram::new(),
                lat_stats: Histogram::new(),
                lat_metrics: Histogram::new(),
                lat_healthz: Histogram::new(),
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                cache_evictions: AtomicU64::new(0),
                reloads: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                inflight: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                engine_totals: Mutex::new(Counters::new()),
                slow_log: Ring::new(options.slow_log_capacity),
                slow_ms: options.slow_ms,
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
            }),
            threads: threads.max(1),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Runs the accept loop on `threads` worker threads and blocks until
    /// shutdown. Each worker accepts connections from the shared
    /// listener and serves keep-alive requests until the client closes
    /// or `POST /shutdown` flips the flag; the shutdown handler then
    /// wakes every blocked `accept` with self-connections so the pool
    /// drains promptly and deterministically. After the pool drains, the
    /// slow-query flight recorder is dumped to stderr so a graceful
    /// shutdown never discards the evidence it collected.
    pub fn run(self) -> crate::Result<()> {
        let addr = self.local_addr();
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                let listener = self
                    .listener
                    .try_clone()
                    .expect("listener handles are clonable");
                let state = Arc::clone(&self.state);
                scope.spawn(move || {
                    while !state.shutdown.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _)) => serve_connection(stream, &state, addr),
                            Err(_) => break,
                        }
                    }
                });
            }
        });
        let entries = self.state.slow_log.snapshot();
        if !entries.is_empty() {
            eprintln!(
                "vx serve: flight recorder held {} slow quer{} at shutdown \
                 ({} recorded over the process lifetime):",
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" },
                self.state.slow_log.total_pushed(),
            );
            for entry in &entries {
                eprintln!("{}", json::to_string_pretty(entry));
            }
        }
        Ok(())
    }
}

/// Serves one TCP connection: keep-alive request loop until the client
/// closes, errors, or shutdown begins.
fn serve_connection(stream: TcpStream, state: &Arc<AppState>, addr: SocketAddr) {
    struct ConnGuard<'a>(&'a AtomicU64);
    impl Drop for ConnGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    state.connections.fetch_add(1, Ordering::Relaxed);
    let _guard = ConnGuard(&state.connections);

    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean EOF between requests
            Err(RequestError::Io) => return,
            Err(RequestError::Malformed(message)) => {
                let trace = TraceId::next();
                log_error(state, "bad_request", &message, trace);
                let body = error_json(400, "bad_request", &message, trace);
                let _ = write_response(&mut writer, 400, "Bad Request", &body, JSON, false);
                return;
            }
        };
        // One trace id per request, echoed in every answer and attached
        // to every event the request's evaluation emits.
        let trace = TraceId::next();
        let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::SeqCst);
        let start = Instant::now();
        state.inflight.fetch_add(1, Ordering::Relaxed);
        let reply = handle(&request, state, trace);
        state.inflight.fetch_sub(1, Ordering::Relaxed);
        state.requests.fetch_add(1, Ordering::Relaxed);
        if reply.status >= 400 {
            state.errors.fetch_add(1, Ordering::Relaxed);
        }
        let secs = start.elapsed().as_secs_f64();
        if let Some(hist) = endpoint_histogram(state, &request) {
            hist.record_secs(secs);
        }
        if vx_obs::log_enabled() {
            let id = trace.to_string();
            vx_obs::event(
                "serve.request",
                &[
                    ("method", vx_obs::Value::Str(&request.method)),
                    ("path", vx_obs::Value::Str(&request.path)),
                    ("status", vx_obs::Value::U64(reply.status as u64)),
                    ("secs", vx_obs::Value::F64(secs)),
                    ("trace", vx_obs::Value::Str(&id)),
                ],
            );
        }
        let reason = match reply.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Internal Server Error",
        };
        if write_response(
            &mut writer,
            reply.status,
            reason,
            &reply.body,
            reply.content_type,
            keep_alive,
        )
        .is_err()
        {
            return;
        }
        // A shutdown request is answered first, then the pool is woken.
        if request.method == "POST" && request.path == "/shutdown" {
            state.shutdown.store(true, Ordering::SeqCst);
            for _ in 0..64 {
                match TcpStream::connect(addr) {
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

fn endpoint_histogram<'a>(state: &'a AppState, request: &Request) -> Option<&'a Histogram> {
    match request.path.as_str() {
        "/query" => Some(&state.lat_query),
        "/stats" => Some(&state.lat_stats),
        "/metrics" => Some(&state.lat_metrics),
        "/healthz" => Some(&state.lat_healthz),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Minimal HTTP/1.1 parsing and writing
// ---------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    keep_alive: bool,
    body: Vec<u8>,
}

/// One computed answer: status, body, and its media type.
struct Reply {
    status: u16,
    body: String,
    content_type: &'static str,
}

const JSON: &str = "application/json";
/// The Prometheus text exposition media type.
const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            body,
            content_type: JSON,
        }
    }
}

enum RequestError {
    /// Read failure or timeout: drop the connection silently.
    Io,
    /// The bytes arrived but are not HTTP we accept: answer 400.
    Malformed(String),
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, RequestError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(_) => return Err(RequestError::Io),
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v),
        _ => return Err(RequestError::Malformed("malformed request line".into())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol version {version}"
        )));
    }
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(_) => return Err(RequestError::Io),
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| RequestError::Malformed("bad Content-Length".into()))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(RequestError::Malformed(format!(
            "request body exceeds {MAX_BODY} bytes"
        )));
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        return Err(RequestError::Io);
    }
    // Strip a `?query` suffix; no endpoint takes URL parameters today.
    let path = target.split('?').next().unwrap_or(&target).to_string();
    Ok(Some(Request {
        method,
        path,
        keep_alive,
        body,
    }))
}

fn write_response(
    writer: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    content_type: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

// ---------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------

fn error_json(code: u16, kind: &str, message: &str, trace: TraceId) -> String {
    let error = Json::Object(vec![
        ("code".into(), Json::Num(code as f64)),
        ("kind".into(), Json::Str(kind.into())),
        ("message".into(), Json::Str(message.into())),
        ("request_id".into(), Json::Str(trace.to_string())),
    ]);
    json::to_string_pretty(&Json::Object(vec![("error".into(), error)]))
}

/// Mirrors a structured error into the `VX_LOG` sink (keyed by the same
/// `request_id` the client received, so a client-reported failure greps
/// straight to the server-side record).
fn log_error(_state: &AppState, kind: &str, message: &str, trace: TraceId) {
    if !vx_obs::log_enabled() {
        return;
    }
    let id = trace.to_string();
    vx_obs::event(
        "serve.error",
        &[
            ("kind", vx_obs::Value::Str(kind)),
            ("message", vx_obs::Value::Str(message)),
            ("request_id", vx_obs::Value::Str(&id)),
        ],
    );
}

/// Maps an engine failure onto `(status, kind)`: the caller's fault
/// (unparseable, unsupported, unknown document) is a 400; a store that
/// fails mid-query is a 500.
fn engine_error_reply(state: &AppState, e: &EngineError, trace: TraceId) -> Reply {
    let (code, kind) = match e {
        EngineError::Xq(_) => (400, "bad_query"),
        EngineError::Unsupported { .. } => (400, "unsupported_query"),
        EngineError::UnknownDocument(_) => (400, "unknown_document"),
        EngineError::Corrupt(_) | EngineError::Core(_) => (500, "store_error"),
    };
    let message = e.to_string();
    log_error(state, kind, &message, trace);
    Reply::json(code, error_json(code, kind, &message, trace))
}

fn bad_request(state: &AppState, message: &str, trace: TraceId) -> Reply {
    log_error(state, "bad_request", message, trace);
    Reply::json(400, error_json(400, "bad_request", message, trace))
}

fn handle(request: &Request, state: &Arc<AppState>, trace: TraceId) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/query") => handle_query(request, state, trace),
        ("POST", "/reload") => handle_reload(state),
        ("GET", "/stats") => Reply::json(200, stats_json(state)),
        ("GET", "/metrics") => Reply {
            status: 200,
            body: metrics_text(state),
            content_type: PROM,
        },
        ("GET", "/debug/slow") => Reply::json(200, slow_json(state)),
        ("GET", "/healthz") => Reply::json(200, healthz_json(state)),
        ("POST", "/shutdown") => Reply::json(
            200,
            json::to_string_pretty(&Json::Object(vec![(
                "status".into(),
                Json::Str("shutting down".into()),
            )])),
        ),
        ("POST" | "GET", path) if known_path(path) => {
            let message = format!("wrong method for {path}");
            log_error(state, "method_not_allowed", &message, trace);
            Reply::json(405, error_json(405, "method_not_allowed", &message, trace))
        }
        (_, path) => {
            let message = format!("no such endpoint {path}");
            log_error(state, "not_found", &message, trace);
            Reply::json(404, error_json(404, "not_found", &message, trace))
        }
    }
}

fn known_path(path: &str) -> bool {
    matches!(
        path,
        "/query" | "/stats" | "/metrics" | "/debug/slow" | "/healthz" | "/reload" | "/shutdown"
    )
}

/// `POST /reload`: reopens every store directory and swaps the slots.
/// In-flight queries keep the handle they already cloned; new requests
/// see the fresh one — appended WAL records become visible, a compacted
/// generation takes over, all without dropping a connection. A store
/// that fails to reopen keeps its old handle and turns the response
/// into a 500 listing the failure; the other stores still swap.
fn handle_reload(state: &Arc<AppState>) -> Reply {
    let mut stores = Vec::new();
    let mut failures = 0u64;
    for name in &state.order {
        let slot = &state.stores[name];
        let start = Instant::now();
        match StoreHandle::open(&slot.dir) {
            Ok(new_handle) => {
                let generation = new_handle.generation();
                let wal_pending = new_handle.wal().pending_docs;
                let vectors = new_handle.catalog().vectors.len();
                slot.swap(new_handle);
                state.reloads.fetch_add(1, Ordering::Relaxed);
                if vx_obs::log_enabled() {
                    vx_obs::event(
                        "serve.reload",
                        &[
                            ("store", vx_obs::Value::Str(name)),
                            ("generation", vx_obs::Value::U64(generation as u64)),
                            ("wal_pending", vx_obs::Value::U64(wal_pending)),
                            ("secs", vx_obs::Value::F64(start.elapsed().as_secs_f64())),
                        ],
                    );
                }
                stores.push(Json::Object(vec![
                    ("name".into(), Json::Str(name.clone())),
                    ("status".into(), Json::Str("reloaded".into())),
                    ("generation".into(), Json::Num(generation as f64)),
                    ("wal_pending".into(), Json::Num(wal_pending as f64)),
                    ("vectors".into(), Json::Num(vectors as f64)),
                ]));
            }
            Err(e) => {
                failures += 1;
                stores.push(Json::Object(vec![
                    ("name".into(), Json::Str(name.clone())),
                    ("status".into(), Json::Str("error".into())),
                    ("message".into(), Json::Str(e.to_string())),
                ]));
            }
        }
    }
    let status = if failures == 0 { 200 } else { 500 };
    let body = json::to_string_pretty(&Json::Object(vec![
        (
            "status".into(),
            Json::Str(if failures == 0 { "ok" } else { "partial" }.into()),
        ),
        ("stores".into(), Json::Array(stores)),
    ]));
    Reply::json(status, body)
}

fn handle_query(request: &Request, state: &Arc<AppState>, trace: TraceId) -> Reply {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return bad_request(state, "body is not UTF-8", trace),
    };
    let parsed = match json::parse(body) {
        Ok(parsed) => parsed,
        Err(e) => return bad_request(state, &format!("bad JSON: {e}"), trace),
    };
    let Some(query_text) = parsed.get("query").and_then(Json::as_str) else {
        return bad_request(state, "missing string field `query`", trace);
    };
    // `store` present: every doc("…") name in the query resolves to
    // that store (the CLI's semantics). Absent with one store: same.
    // Absent with several: doc("name") resolves across the stores by
    // name, so cross-store queries need no disambiguation.
    let store_name = match parsed.get("store").and_then(Json::as_str) {
        Some(name) => Some(name.to_string()),
        None if state.order.len() == 1 => Some(state.order[0].clone()),
        None => None,
    };
    let out_mode = match parsed.get("out").and_then(Json::as_str) {
        None | Some("values") => "values",
        Some("xml") => "xml",
        Some(other) => {
            return bad_request(
                state,
                &format!("`out` must be \"values\" or \"xml\", got \"{other}\""),
                trace,
            )
        }
    };
    let want_profile = parsed
        .get("profile")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    // Clone the served handle out of its slot (an `Arc` bump); the
    // evaluation below never holds the slot lock, so a concurrent
    // reload swaps freely while this query finishes on its snapshot.
    let store: Option<StoreHandle> = match &store_name {
        Some(name) => match state.stores.get(name) {
            Some(slot) => Some(slot.get()),
            None => {
                let message = format!("no store named `{name}`");
                log_error(state, "unknown_store", &message, trace);
                return Reply::json(404, error_json(404, "unknown_store", &message, trace));
            }
        },
        None => None,
    };

    // Compiled-query cache: a read-locked probe on the hot path; misses
    // compile outside any lock and publish under a brief write lock
    // (last writer wins — both compiled the same source). The cross-
    // store resolution mode caches under the reserved name `*`.
    let cache_store = store_name.clone().unwrap_or_else(|| "*".into());
    let key = (cache_store.clone(), query_text.to_string());
    let cached = state.queries.read().ok().and_then(|cache| cache.get(&key));
    let (query, was_cached) = match cached {
        Some(query) => {
            state.cache_hits.fetch_add(1, Ordering::Relaxed);
            (query, true)
        }
        None => {
            state.cache_misses.fetch_add(1, Ordering::Relaxed);
            match Query::new(query_text) {
                Ok(compiled) => {
                    let compiled = Arc::new(compiled);
                    if let Ok(mut cache) = state.queries.write() {
                        if let Some((evicted_store, evicted_query)) =
                            cache.insert(key, Arc::clone(&compiled))
                        {
                            state.cache_evictions.fetch_add(1, Ordering::Relaxed);
                            if vx_obs::log_enabled() {
                                let id = trace.to_string();
                                vx_obs::event(
                                    "serve.cache.evict",
                                    &[
                                        ("store", vx_obs::Value::Str(&evicted_store)),
                                        ("query", vx_obs::Value::Str(&evicted_query)),
                                        ("trace", vx_obs::Value::Str(&id)),
                                    ],
                                );
                            }
                        }
                    }
                    (compiled, false)
                }
                Err(e) => return engine_error_reply(state, &e, trace),
            }
        }
    };

    let explain = parsed
        .get("explain")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let all: Vec<StoreHandle>;
    let targets = match &store {
        Some(store) => Targets::Handle(store),
        None => {
            all = state
                .order
                .iter()
                .map(|name| state.stores[name].get())
                .collect();
            Targets::Handles(&all)
        }
    };
    let mut fields = vec![
        ("store".into(), Json::Str(cache_store.clone())),
        ("query".into(), Json::Str(query_text.into())),
        ("cached".into(), Json::Bool(was_cached)),
        ("trace".into(), Json::Str(trace.to_string())),
    ];
    if explain {
        // Plan only: collection runs for exact cardinalities, but no
        // tuple is ever enumerated.
        return match query.explain(targets) {
            Ok(plan) => {
                fields.push(("plan".into(), Json::Str(plan.render())));
                Reply::json(200, json::to_string_pretty(&Json::Object(fields)))
            }
            Err(e) => engine_error_reply(state, &e, trace),
        };
    }
    // Every served query runs instrumented with its request's trace id:
    // the profile feeds the flight recorder (slowness is only known
    // after the run) and the per-request counters fold into the process
    // totals behind `/stats` and `/metrics`.
    let options = RunOptions {
        profile: true,
        trace: Some(trace),
        ..RunOptions::default()
    };
    let run_started = Instant::now();
    let outcome = match query.run_with(targets, &options) {
        Ok(outcome) => outcome,
        Err(e) => return engine_error_reply(state, &e, trace),
    };
    let elapsed = run_started.elapsed();
    let output = outcome.output;
    let profile = outcome
        .profile
        .expect("run_with profiles when options.profile is set");
    state.merge_engine_counters(&profile.counters);
    if elapsed.as_secs_f64() * 1e3 >= state.slow_ms as f64 {
        record_slow_query(
            state,
            &cache_store,
            query_text,
            &profile,
            targets,
            &query,
            trace,
            elapsed.as_secs_f64(),
        );
    }
    match out_mode {
        "xml" => match output.to_xml() {
            Ok(xml) => fields.push(("xml".into(), Json::Str(xml))),
            Err(e) => return engine_error_reply(state, &e, trace),
        },
        _ => {
            let values: Vec<Json> = output.strings().into_iter().map(Json::Str).collect();
            fields.push(("count".into(), Json::Num(values.len() as f64)));
            fields.push(("values".into(), Json::Array(values)));
        }
    }
    if want_profile {
        fields.push(("profile".into(), crate::bench::profile_json(&profile)));
    }
    Reply::json(200, json::to_string_pretty(&Json::Object(fields)))
}

/// Captures one slow request into the flight recorder: profile, rendered
/// plan, join strategies, trace id. The plan is reconstructed with
/// `explain` (collection re-runs; enumeration never starts) — acceptable
/// for requests that already crossed the slow threshold, and the only
/// way to attach a plan without paying for it on every fast request.
#[allow(clippy::too_many_arguments)]
fn record_slow_query(
    state: &AppState,
    store: &str,
    query_text: &str,
    profile: &vx_engine::QueryProfile,
    targets: Targets<'_>,
    query: &Query,
    trace: TraceId,
    elapsed_secs: f64,
) {
    let (plan_text, strategies) = match query.explain(targets) {
        Ok(plan) => {
            let strategies: Vec<Json> = plan
                .joins
                .iter()
                .map(|j| Json::Str(j.strategy.name().to_string()))
                .collect();
            (Json::Str(plan.render()), Json::Array(strategies))
        }
        Err(_) => (Json::Null, Json::Array(Vec::new())),
    };
    let entry = Json::Object(vec![
        ("trace".into(), Json::Str(trace.to_string())),
        ("store".into(), Json::Str(store.to_string())),
        ("query".into(), Json::Str(query_text.to_string())),
        ("elapsed_ms".into(), Json::Num(elapsed_secs * 1e3)),
        ("plan".into(), plan_text),
        ("strategies".into(), strategies),
        ("profile".into(), crate::bench::profile_json(profile)),
    ]);
    state.slow_log.push(entry);
    if vx_obs::log_enabled() {
        let id = trace.to_string();
        vx_obs::event(
            "serve.slow",
            &[
                ("store", vx_obs::Value::Str(store)),
                ("query", vx_obs::Value::Str(query_text)),
                ("ms", vx_obs::Value::F64(elapsed_secs * 1e3)),
                ("trace", vx_obs::Value::Str(&id)),
            ],
        );
    }
}

fn healthz_json(state: &AppState) -> String {
    let stores: Vec<Json> = state
        .order
        .iter()
        .map(|name| Json::Str(name.clone()))
        .collect();
    json::to_string_pretty(&Json::Object(vec![
        ("status".into(), Json::Str("ok".into())),
        ("stores".into(), Json::Array(stores)),
    ]))
}

fn histogram_json(hist: &Histogram) -> Json {
    Json::Object(vec![
        ("count".into(), Json::Num(hist.count() as f64)),
        ("p50_us".into(), Json::Num(hist.p50_us() as f64)),
        ("p99_us".into(), Json::Num(hist.p99_us() as f64)),
        ("mean_us".into(), Json::Num(hist.mean_us().round())),
        ("max_us".into(), Json::Num(hist.max_us() as f64)),
    ])
}

/// Current (connections − in-flight) — keep-alive connections sitting
/// idle between requests. Until real admission control lands this is the
/// closest observable to a queue depth: sockets the pool owns but is not
/// actively serving.
fn queue_depth(state: &AppState) -> u64 {
    let connections = state.connections.load(Ordering::Relaxed);
    let inflight = state.inflight.load(Ordering::Relaxed);
    connections.saturating_sub(inflight)
}

/// `GET /stats`: one JSON document covering the server counters, the
/// process-total engine counters, the slow-log occupancy, and the
/// per-store catalog summaries.
fn stats_json(state: &AppState) -> String {
    let server = Json::Object(vec![
        (
            "uptime_secs".into(),
            Json::Num(state.started.elapsed().as_secs_f64()),
        ),
        (
            "requests".into(),
            Json::Num(state.requests.load(Ordering::Relaxed) as f64),
        ),
        (
            "errors".into(),
            Json::Num(state.errors.load(Ordering::Relaxed) as f64),
        ),
        (
            "query_cache_hits".into(),
            Json::Num(state.cache_hits.load(Ordering::Relaxed) as f64),
        ),
        (
            "query_cache_misses".into(),
            Json::Num(state.cache_misses.load(Ordering::Relaxed) as f64),
        ),
        (
            "query_cache_evictions".into(),
            Json::Num(state.cache_evictions.load(Ordering::Relaxed) as f64),
        ),
        (
            "query_cache_entries".into(),
            Json::Num(state.queries.read().map(|c| c.len()).unwrap_or(0) as f64),
        ),
        (
            "reloads".into(),
            Json::Num(state.reloads.load(Ordering::Relaxed) as f64),
        ),
        (
            "connections".into(),
            Json::Num(state.connections.load(Ordering::Relaxed) as f64),
        ),
        (
            "inflight".into(),
            Json::Num(state.inflight.load(Ordering::Relaxed) as f64),
        ),
        ("queue_depth".into(), Json::Num(queue_depth(state) as f64)),
        (
            "rejected".into(),
            Json::Num(state.rejected.load(Ordering::Relaxed) as f64),
        ),
        (
            "endpoints".into(),
            Json::Object(vec![
                ("query".into(), histogram_json(&state.lat_query)),
                ("stats".into(), histogram_json(&state.lat_stats)),
                ("metrics".into(), histogram_json(&state.lat_metrics)),
                ("healthz".into(), histogram_json(&state.lat_healthz)),
            ]),
        ),
    ]);
    let engine = Json::Object(
        state
            .engine_totals_snapshot()
            .iter()
            .map(|(name, value)| (name.to_string(), Json::Num(value as f64)))
            .collect(),
    );
    let slowlog = Json::Object(vec![
        ("threshold_ms".into(), Json::Num(state.slow_ms as f64)),
        (
            "capacity".into(),
            Json::Num(state.slow_log.capacity() as f64),
        ),
        ("entries".into(), Json::Num(state.slow_log.len() as f64)),
        (
            "recorded".into(),
            Json::Num(state.slow_log.total_pushed() as f64),
        ),
    ]);
    let stores: Vec<Json> = state
        .order
        .iter()
        .map(|name| {
            let handle = state.stores[name].get();
            let catalog = handle.catalog();
            Json::Object(vec![
                ("name".into(), Json::Str(name.clone())),
                ("vectors".into(), Json::Num(catalog.vectors.len() as f64)),
                ("nodes".into(), Json::Num(catalog.node_count as f64)),
                (
                    "dag_nodes".into(),
                    Json::Num(handle.skeleton().len() as f64),
                ),
                ("text_bytes".into(), Json::Num(catalog.text_bytes as f64)),
                ("generation".into(), Json::Num(handle.generation() as f64)),
                (
                    "wal_pending".into(),
                    Json::Num(handle.wal().pending_docs as f64),
                ),
            ])
        })
        .collect();
    json::to_string_pretty(&Json::Object(vec![
        ("server".into(), server),
        ("engine".into(), engine),
        ("slowlog".into(), slowlog),
        ("stores".into(), Json::Array(stores)),
    ]))
}

/// `GET /debug/slow`: the flight recorder, oldest entry first.
fn slow_json(state: &AppState) -> String {
    json::to_string_pretty(&Json::Object(vec![
        ("threshold_ms".into(), Json::Num(state.slow_ms as f64)),
        (
            "capacity".into(),
            Json::Num(state.slow_log.capacity() as f64),
        ),
        (
            "recorded".into(),
            Json::Num(state.slow_log.total_pushed() as f64),
        ),
        ("entries".into(), Json::Array(state.slow_log.snapshot())),
    ]))
}

/// `GET /metrics`: the Prometheus text exposition. Server counters and
/// gauges, per-endpoint cumulative latency buckets, process-total engine
/// counters (dots in counter names become underscores), and per-store
/// gauges.
fn metrics_text(state: &AppState) -> String {
    let mut reg = Registry::new();
    reg.gauge(
        "vx_serve_uptime_seconds",
        "Seconds since the server started.",
        &[],
        state.started.elapsed().as_secs_f64(),
    );
    reg.counter(
        "vx_serve_requests_total",
        "HTTP requests answered (error answers included).",
        &[],
        state.requests.load(Ordering::Relaxed),
    );
    reg.counter(
        "vx_serve_errors_total",
        "HTTP requests answered with status >= 400.",
        &[],
        state.errors.load(Ordering::Relaxed),
    );
    reg.counter(
        "vx_serve_rejected_total",
        "Requests refused by admission control (reserved; always 0 until backpressure lands).",
        &[],
        state.rejected.load(Ordering::Relaxed),
    );
    reg.counter(
        "vx_serve_reloads_total",
        "Successful store reloads (one per store per POST /reload).",
        &[],
        state.reloads.load(Ordering::Relaxed),
    );
    reg.counter(
        "vx_serve_query_cache_hits_total",
        "Compiled-query cache hits.",
        &[],
        state.cache_hits.load(Ordering::Relaxed),
    );
    reg.counter(
        "vx_serve_query_cache_misses_total",
        "Compiled-query cache misses (compilations).",
        &[],
        state.cache_misses.load(Ordering::Relaxed),
    );
    reg.counter(
        "vx_serve_query_cache_evictions_total",
        "Compiled queries evicted by the FIFO bound.",
        &[],
        state.cache_evictions.load(Ordering::Relaxed),
    );
    reg.gauge(
        "vx_serve_query_cache_entries",
        "Compiled queries currently cached.",
        &[],
        state.queries.read().map(|c| c.len()).unwrap_or(0) as f64,
    );
    reg.gauge(
        "vx_serve_connections_active",
        "Open TCP connections (keep-alive idlers included).",
        &[],
        state.connections.load(Ordering::Relaxed) as f64,
    );
    reg.gauge(
        "vx_serve_inflight_requests",
        "Requests currently being handled.",
        &[],
        state.inflight.load(Ordering::Relaxed) as f64,
    );
    reg.gauge(
        "vx_serve_queue_depth",
        "Connections owned but not actively served (keep-alive idle); \
         the queue-depth proxy until admission control lands.",
        &[],
        queue_depth(state) as f64,
    );
    reg.counter(
        "vx_serve_slow_queries_total",
        "Requests recorded by the slow-query flight recorder.",
        &[],
        state.slow_log.total_pushed(),
    );
    reg.gauge(
        "vx_serve_slowlog_entries",
        "Slow-query entries currently held in the flight recorder.",
        &[],
        state.slow_log.len() as f64,
    );
    reg.gauge(
        "vx_serve_slowlog_capacity",
        "Flight recorder ring capacity.",
        &[],
        state.slow_log.capacity() as f64,
    );
    for (endpoint, hist) in [
        ("query", &state.lat_query),
        ("stats", &state.lat_stats),
        ("metrics", &state.lat_metrics),
        ("healthz", &state.lat_healthz),
    ] {
        reg.histogram_us(
            "vx_serve_request_seconds",
            "Request latency by endpoint.",
            &[("endpoint", endpoint)],
            hist,
            &LATENCY_BOUNDS_US,
        );
    }
    for (name, value) in state.engine_totals_snapshot().iter() {
        let metric = format!("vx_engine_{}_total", name.replace('.', "_"));
        reg.counter(
            &metric,
            "Process total of the per-request engine counter of the same dotted name.",
            &[],
            value,
        );
    }
    for name in &state.order {
        let handle = state.stores[name].get();
        let labels = [("store", name.as_str())];
        reg.gauge(
            "vx_store_generation",
            "Store generation currently served.",
            &labels,
            handle.generation() as f64,
        );
        reg.gauge(
            "vx_store_vectors",
            "Path vectors in the served catalog.",
            &labels,
            handle.catalog().vectors.len() as f64,
        );
        reg.gauge(
            "vx_store_wal_pending_docs",
            "WAL documents appended but not yet compacted into a generation.",
            &labels,
            handle.wal().pending_docs as f64,
        );
        reg.gauge(
            "vx_store_wal_segments",
            "WAL segment files on disk.",
            &labels,
            handle.wal().segments as f64,
        );
        reg.gauge(
            "vx_store_struct_index_loaded",
            "1 when the structural self-index is loaded for this store.",
            &labels,
            if handle.structural_loaded() { 1.0 } else { 0.0 },
        );
    }
    reg.render()
}
