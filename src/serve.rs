//! `vx serve` — a std-only HTTP/1.1 + JSON query server over shared
//! immutable stores.
//!
//! The server is the payoff of the [`vx_core::StoreHandle`] refactor:
//! every store is opened **once** at startup, every query is compiled
//! **once** into the per-`(store, query-text)` cache, and a fixed pool
//! of worker threads answers requests concurrently against the same
//! `Arc`-shared handles — no locks anywhere on the read path (the query
//! cache takes a brief `RwLock` around a `HashMap` probe; evaluation
//! itself touches only immutable store data plus per-call scratch).
//!
//! The protocol is deliberately small (no external dependencies — the
//! build environment is offline):
//!
//! | endpoint | body | answer |
//! |---|---|---|
//! | `POST /query` | `{"store":"name","query":"XQ…","out":"values"\|"xml"}` | `{"store","query","cached","values":[…]}` or `{"xml":"…"}` |
//! | `POST /query` + `"explain":true` | same body | `{"store","query","cached","plan":"…"}` — the planner's decisions, nothing runs |
//! | `GET /stats` | — | per-store catalog summary |
//! | `GET /metrics` | — | per-endpoint latency histograms (count/p50/p99) |
//! | `GET /healthz` | — | `{"status":"ok","stores":[…]}` |
//! | `POST /reload` | — | reopens every store from disk and swaps the handles |
//! | `POST /shutdown` | — | acknowledges, then drains the worker pool |
//!
//! **Hot reload.** Each store lives in a slot holding an
//! `RwLock<StoreHandle>`; request handlers clone the handle (an `Arc`
//! bump) under a read lock, so `POST /reload` can reopen the directory —
//! picking up appended WAL records or a new compacted generation — and
//! swap the slot under the write lock while in-flight queries finish
//! against the handle they already cloned. The compiled-query cache
//! survives reloads untouched: compilation only parses query text, never
//! the store.
//!
//! Errors are structured JSON — `{"error":{"code","kind","message"}}` —
//! mapped from [`vx_engine::EngineError`]: parse/unsupported/unknown-
//! document failures are 400s, an unknown store name is a 404, and a
//! corrupt store is a 500. `store` may be omitted: with one store every
//! `doc("…")` name resolves to it, and with several the query's
//! `doc("name")` references resolve across the stores by name
//! (cross-store joins included).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use vx_core::json::{self, Json};
use vx_core::StoreHandle;
use vx_engine::{EngineError, Query, RunOptions, Targets};
use vx_obs::Histogram;

/// Largest accepted request body (a query text, not a document).
const MAX_BODY: usize = 1 << 20;

/// Per-connection socket read timeout: a stalled keep-alive client
/// releases its worker instead of pinning it forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One store's slot: the directory it reloads from and the currently
/// served handle. Swapped whole by `POST /reload`; readers clone the
/// handle (an `Arc` bump) and never hold the lock across evaluation.
struct StoreSlot {
    dir: PathBuf,
    handle: RwLock<StoreHandle>,
}

impl StoreSlot {
    /// Clones the current handle. A poisoned lock (a panicking writer)
    /// still holds a valid handle — reloads build the new handle fully
    /// before taking the write lock — so serving continues.
    fn get(&self) -> StoreHandle {
        match self.handle.read() {
            Ok(handle) => handle.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    fn swap(&self, new_handle: StoreHandle) {
        match self.handle.write() {
            Ok(mut handle) => *handle = new_handle,
            Err(poisoned) => *poisoned.into_inner() = new_handle,
        }
    }
}

/// Everything the worker threads share. Store slots swap atomically on
/// reload and compiled queries are immutable once inserted; the
/// histograms are lock-free.
struct AppState {
    /// Store name (directory basename) → slot, plus the names in
    /// startup order for deterministic listings.
    stores: HashMap<String, StoreSlot>,
    order: Vec<String>,
    /// `(store name, query text)` → compiled query. Compile once, run
    /// from any worker.
    queries: RwLock<HashMap<(String, String), Arc<Query>>>,
    /// Per-endpoint request latency, recorded for every answered
    /// request including error answers.
    lat_query: Histogram,
    lat_stats: Histogram,
    lat_metrics: Histogram,
    lat_healthz: Histogram,
    requests: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    /// Successful `POST /reload` store swaps.
    reloads: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
}

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<AppState>();

/// A bound, not-yet-running server. [`Server::bind`] opens the stores
/// and the listener; [`Server::run`] blocks until a `POST /shutdown`
/// drains the pool. Tests bind to port 0 and read
/// [`Server::local_addr`].
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    threads: usize,
}

impl Server {
    /// Opens every store directory into a [`StoreHandle`] (name = the
    /// directory's basename) and binds `addr`. Duplicate basenames and
    /// unopenable stores are errors — a server that silently dropped a
    /// store would answer 404s for data the operator pointed it at.
    pub fn bind(store_dirs: &[&Path], addr: &str, threads: usize) -> crate::Result<Server> {
        if store_dirs.is_empty() {
            return Err(crate::Error::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "serve: at least one store directory is required",
            )));
        }
        let mut stores = HashMap::new();
        let mut order = Vec::new();
        for dir in store_dirs {
            let handle = StoreHandle::open(dir).map_err(crate::Error::Core)?;
            let name = handle.name().to_string();
            let slot = StoreSlot {
                dir: dir.to_path_buf(),
                handle: RwLock::new(handle),
            };
            if stores.insert(name.clone(), slot).is_some() {
                return Err(crate::Error::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("serve: duplicate store name `{name}`"),
                )));
            }
            order.push(name);
        }
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state: Arc::new(AppState {
                stores,
                order,
                queries: RwLock::new(HashMap::new()),
                lat_query: Histogram::new(),
                lat_stats: Histogram::new(),
                lat_metrics: Histogram::new(),
                lat_healthz: Histogram::new(),
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                reloads: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
            }),
            threads: threads.max(1),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Runs the accept loop on `threads` worker threads and blocks until
    /// shutdown. Each worker accepts connections from the shared
    /// listener and serves keep-alive requests until the client closes
    /// or `POST /shutdown` flips the flag; the shutdown handler then
    /// wakes every blocked `accept` with self-connections so the pool
    /// drains promptly and deterministically.
    pub fn run(self) -> crate::Result<()> {
        let addr = self.local_addr();
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                let listener = self
                    .listener
                    .try_clone()
                    .expect("listener handles are clonable");
                let state = Arc::clone(&self.state);
                scope.spawn(move || {
                    while !state.shutdown.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _)) => serve_connection(stream, &state, addr),
                            Err(_) => break,
                        }
                    }
                });
            }
        });
        Ok(())
    }
}

/// Serves one TCP connection: keep-alive request loop until the client
/// closes, errors, or shutdown begins.
fn serve_connection(stream: TcpStream, state: &Arc<AppState>, addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean EOF between requests
            Err(RequestError::Io) => return,
            Err(RequestError::Malformed(message)) => {
                let body = error_json(400, "bad_request", &message);
                let _ = write_response(&mut writer, 400, "Bad Request", &body, false);
                return;
            }
        };
        let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::SeqCst);
        let start = Instant::now();
        let (status, body) = handle(&request, state);
        state.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            state.errors.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(hist) = endpoint_histogram(state, &request) {
            hist.record_secs(start.elapsed().as_secs_f64());
        }
        let reason = match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Internal Server Error",
        };
        if write_response(&mut writer, status, reason, &body, keep_alive).is_err() {
            return;
        }
        // A shutdown request is answered first, then the pool is woken.
        if request.method == "POST" && request.path == "/shutdown" {
            state.shutdown.store(true, Ordering::SeqCst);
            for _ in 0..64 {
                match TcpStream::connect(addr) {
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

fn endpoint_histogram<'a>(state: &'a AppState, request: &Request) -> Option<&'a Histogram> {
    match request.path.as_str() {
        "/query" => Some(&state.lat_query),
        "/stats" => Some(&state.lat_stats),
        "/metrics" => Some(&state.lat_metrics),
        "/healthz" => Some(&state.lat_healthz),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Minimal HTTP/1.1 parsing and writing
// ---------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    keep_alive: bool,
    body: Vec<u8>,
}

enum RequestError {
    /// Read failure or timeout: drop the connection silently.
    Io,
    /// The bytes arrived but are not HTTP we accept: answer 400.
    Malformed(String),
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, RequestError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(_) => return Err(RequestError::Io),
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v),
        _ => return Err(RequestError::Malformed("malformed request line".into())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol version {version}"
        )));
    }
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(_) => return Err(RequestError::Io),
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| RequestError::Malformed("bad Content-Length".into()))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(RequestError::Malformed(format!(
            "request body exceeds {MAX_BODY} bytes"
        )));
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        return Err(RequestError::Io);
    }
    // Strip a `?query` suffix; no endpoint takes URL parameters today.
    let path = target.split('?').next().unwrap_or(&target).to_string();
    Ok(Some(Request {
        method,
        path,
        keep_alive,
        body,
    }))
}

fn write_response(
    writer: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

// ---------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------

fn error_json(code: u16, kind: &str, message: &str) -> String {
    let error = Json::Object(vec![
        ("code".into(), Json::Num(code as f64)),
        ("kind".into(), Json::Str(kind.into())),
        ("message".into(), Json::Str(message.into())),
    ]);
    json::to_string_pretty(&Json::Object(vec![("error".into(), error)]))
}

/// Maps an engine failure onto `(status, kind)`: the caller's fault
/// (unparseable, unsupported, unknown document) is a 400; a store that
/// fails mid-query is a 500.
fn engine_error_response(e: &EngineError) -> (u16, String) {
    let (code, kind) = match e {
        EngineError::Xq(_) => (400, "bad_query"),
        EngineError::Unsupported { .. } => (400, "unsupported_query"),
        EngineError::UnknownDocument(_) => (400, "unknown_document"),
        EngineError::Corrupt(_) | EngineError::Core(_) => (500, "store_error"),
    };
    (code, error_json(code, kind, &e.to_string()))
}

fn handle(request: &Request, state: &Arc<AppState>) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/query") => handle_query(request, state),
        ("POST", "/reload") => handle_reload(state),
        ("GET", "/stats") => (200, stats_json(state)),
        ("GET", "/metrics") => (200, metrics_json(state)),
        ("GET", "/healthz") => (200, healthz_json(state)),
        ("POST", "/shutdown") => (
            200,
            json::to_string_pretty(&Json::Object(vec![(
                "status".into(),
                Json::Str("shutting down".into()),
            )])),
        ),
        ("POST" | "GET", path) if known_path(path) => (
            405,
            error_json(
                405,
                "method_not_allowed",
                &format!("wrong method for {path}"),
            ),
        ),
        (_, path) => (
            404,
            error_json(404, "not_found", &format!("no such endpoint {path}")),
        ),
    }
}

fn known_path(path: &str) -> bool {
    matches!(
        path,
        "/query" | "/stats" | "/metrics" | "/healthz" | "/reload" | "/shutdown"
    )
}

/// `POST /reload`: reopens every store directory and swaps the slots.
/// In-flight queries keep the handle they already cloned; new requests
/// see the fresh one — appended WAL records become visible, a compacted
/// generation takes over, all without dropping a connection. A store
/// that fails to reopen keeps its old handle and turns the response
/// into a 500 listing the failure; the other stores still swap.
fn handle_reload(state: &Arc<AppState>) -> (u16, String) {
    let mut stores = Vec::new();
    let mut failures = 0u64;
    for name in &state.order {
        let slot = &state.stores[name];
        let start = Instant::now();
        match StoreHandle::open(&slot.dir) {
            Ok(new_handle) => {
                let generation = new_handle.generation();
                let wal_pending = new_handle.wal().pending_docs;
                let vectors = new_handle.catalog().vectors.len();
                slot.swap(new_handle);
                state.reloads.fetch_add(1, Ordering::Relaxed);
                if vx_obs::log_enabled() {
                    vx_obs::event(
                        "serve.reload",
                        &[
                            ("store", vx_obs::Value::Str(name)),
                            ("generation", vx_obs::Value::U64(generation as u64)),
                            ("wal_pending", vx_obs::Value::U64(wal_pending)),
                            ("secs", vx_obs::Value::F64(start.elapsed().as_secs_f64())),
                        ],
                    );
                }
                stores.push(Json::Object(vec![
                    ("name".into(), Json::Str(name.clone())),
                    ("status".into(), Json::Str("reloaded".into())),
                    ("generation".into(), Json::Num(generation as f64)),
                    ("wal_pending".into(), Json::Num(wal_pending as f64)),
                    ("vectors".into(), Json::Num(vectors as f64)),
                ]));
            }
            Err(e) => {
                failures += 1;
                stores.push(Json::Object(vec![
                    ("name".into(), Json::Str(name.clone())),
                    ("status".into(), Json::Str("error".into())),
                    ("message".into(), Json::Str(e.to_string())),
                ]));
            }
        }
    }
    let status = if failures == 0 { 200 } else { 500 };
    let body = json::to_string_pretty(&Json::Object(vec![
        (
            "status".into(),
            Json::Str(if failures == 0 { "ok" } else { "partial" }.into()),
        ),
        ("stores".into(), Json::Array(stores)),
    ]));
    (status, body)
}

fn handle_query(request: &Request, state: &Arc<AppState>) -> (u16, String) {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return (400, error_json(400, "bad_request", "body is not UTF-8")),
    };
    let parsed = match json::parse(body) {
        Ok(parsed) => parsed,
        Err(e) => {
            return (
                400,
                error_json(400, "bad_request", &format!("bad JSON: {e}")),
            )
        }
    };
    let Some(query_text) = parsed.get("query").and_then(Json::as_str) else {
        return (
            400,
            error_json(400, "bad_request", "missing string field `query`"),
        );
    };
    // `store` present: every doc("…") name in the query resolves to
    // that store (the CLI's semantics). Absent with one store: same.
    // Absent with several: doc("name") resolves across the stores by
    // name, so cross-store queries need no disambiguation.
    let store_name = match parsed.get("store").and_then(Json::as_str) {
        Some(name) => Some(name.to_string()),
        None if state.order.len() == 1 => Some(state.order[0].clone()),
        None => None,
    };
    let out_mode = match parsed.get("out").and_then(Json::as_str) {
        None | Some("values") => "values",
        Some("xml") => "xml",
        Some(other) => {
            return (
                400,
                error_json(
                    400,
                    "bad_request",
                    &format!("`out` must be \"values\" or \"xml\", got \"{other}\""),
                ),
            )
        }
    };
    // Clone the served handle out of its slot (an `Arc` bump); the
    // evaluation below never holds the slot lock, so a concurrent
    // reload swaps freely while this query finishes on its snapshot.
    let store: Option<StoreHandle> = match &store_name {
        Some(name) => match state.stores.get(name) {
            Some(slot) => Some(slot.get()),
            None => {
                return (
                    404,
                    error_json(404, "unknown_store", &format!("no store named `{name}`")),
                )
            }
        },
        None => None,
    };

    // Compiled-query cache: a read-locked probe on the hot path; misses
    // compile outside any lock and publish under a brief write lock
    // (last writer wins — both compiled the same source). The cross-
    // store resolution mode caches under the reserved name `*`.
    let cache_store = store_name.clone().unwrap_or_else(|| "*".into());
    let key = (cache_store.clone(), query_text.to_string());
    let cached = state
        .queries
        .read()
        .ok()
        .and_then(|cache| cache.get(&key).cloned());
    let (query, was_cached) = match cached {
        Some(query) => {
            state.cache_hits.fetch_add(1, Ordering::Relaxed);
            (query, true)
        }
        None => match Query::new(query_text) {
            Ok(compiled) => {
                let compiled = Arc::new(compiled);
                if let Ok(mut cache) = state.queries.write() {
                    cache.insert(key, Arc::clone(&compiled));
                }
                (compiled, false)
            }
            Err(e) => return engine_error_response(&e),
        },
    };

    let explain = parsed
        .get("explain")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let all: Vec<StoreHandle>;
    let targets = match &store {
        Some(store) => Targets::Handle(store),
        None => {
            all = state
                .order
                .iter()
                .map(|name| state.stores[name].get())
                .collect();
            Targets::Handles(&all)
        }
    };
    let mut fields = vec![
        ("store".into(), Json::Str(cache_store)),
        ("query".into(), Json::Str(query_text.into())),
        ("cached".into(), Json::Bool(was_cached)),
    ];
    if explain {
        // Plan only: collection runs for exact cardinalities, but no
        // tuple is ever enumerated.
        return match query.explain(targets) {
            Ok(plan) => {
                fields.push(("plan".into(), Json::Str(plan.render())));
                (200, json::to_string_pretty(&Json::Object(fields)))
            }
            Err(e) => engine_error_response(&e),
        };
    }
    let output = match query.run_with(targets, &RunOptions::default()) {
        Ok(outcome) => outcome.output,
        Err(e) => return engine_error_response(&e),
    };
    match out_mode {
        "xml" => match output.to_xml() {
            Ok(xml) => fields.push(("xml".into(), Json::Str(xml))),
            Err(e) => return engine_error_response(&e),
        },
        _ => {
            let values: Vec<Json> = output.strings().into_iter().map(Json::Str).collect();
            fields.push(("count".into(), Json::Num(values.len() as f64)));
            fields.push(("values".into(), Json::Array(values)));
        }
    }
    (200, json::to_string_pretty(&Json::Object(fields)))
}

fn healthz_json(state: &AppState) -> String {
    let stores: Vec<Json> = state
        .order
        .iter()
        .map(|name| Json::Str(name.clone()))
        .collect();
    json::to_string_pretty(&Json::Object(vec![
        ("status".into(), Json::Str("ok".into())),
        ("stores".into(), Json::Array(stores)),
    ]))
}

fn stats_json(state: &AppState) -> String {
    let stores: Vec<Json> = state
        .order
        .iter()
        .map(|name| {
            let handle = state.stores[name].get();
            let catalog = handle.catalog();
            Json::Object(vec![
                ("name".into(), Json::Str(name.clone())),
                ("vectors".into(), Json::Num(catalog.vectors.len() as f64)),
                ("nodes".into(), Json::Num(catalog.node_count as f64)),
                (
                    "dag_nodes".into(),
                    Json::Num(handle.skeleton().len() as f64),
                ),
                ("text_bytes".into(), Json::Num(catalog.text_bytes as f64)),
                ("generation".into(), Json::Num(handle.generation() as f64)),
                (
                    "wal_pending".into(),
                    Json::Num(handle.wal().pending_docs as f64),
                ),
            ])
        })
        .collect();
    json::to_string_pretty(&Json::Object(vec![("stores".into(), Json::Array(stores))]))
}

fn histogram_json(hist: &Histogram) -> Json {
    Json::Object(vec![
        ("count".into(), Json::Num(hist.count() as f64)),
        ("p50_us".into(), Json::Num(hist.p50_us() as f64)),
        ("p99_us".into(), Json::Num(hist.p99_us() as f64)),
        ("mean_us".into(), Json::Num(hist.mean_us().round())),
        ("max_us".into(), Json::Num(hist.max_us() as f64)),
    ])
}

fn metrics_json(state: &AppState) -> String {
    json::to_string_pretty(&Json::Object(vec![
        (
            "uptime_secs".into(),
            Json::Num(state.started.elapsed().as_secs_f64()),
        ),
        (
            "requests".into(),
            Json::Num(state.requests.load(Ordering::Relaxed) as f64),
        ),
        (
            "errors".into(),
            Json::Num(state.errors.load(Ordering::Relaxed) as f64),
        ),
        (
            "query_cache_hits".into(),
            Json::Num(state.cache_hits.load(Ordering::Relaxed) as f64),
        ),
        (
            "reloads".into(),
            Json::Num(state.reloads.load(Ordering::Relaxed) as f64),
        ),
        (
            "endpoints".into(),
            Json::Object(vec![
                ("query".into(), histogram_json(&state.lat_query)),
                ("stats".into(), histogram_json(&state.lat_stats)),
                ("metrics".into(), histogram_json(&state.lat_metrics)),
                ("healthz".into(), histogram_json(&state.lat_healthz)),
            ]),
        ),
    ]))
}
