//! `xmlvec` — a vectorized native XML store and XQuery engine, after
//! Buneman, Choi, Fan, Hutchison, Mann & Viglas, *Vectorizing and
//! Querying Large XML Repositories* (ICDE 2005).
//!
//! A document `T` is stored as `VEC(T) = (S, V)`: `S` is the tree
//! *skeleton* compressed into a hash-consed DAG with run-length edges,
//! and `V` is one *vector* per root-to-text tag path holding that path's
//! text values in document order. Vectorization and reconstruction are
//! both linear (`Props. 2.1/2.2`), and queries evaluate against `(S, V)`
//! directly — structure on the skeleton, values on exactly the vectors
//! the query names.
//!
//! The workspace is strictly layered; each crate owns one layer and one
//! error type, and this facade re-exports them plus a unified [`Error`]:
//!
//! | crate | layer |
//! |---|---|
//! | [`vx_obs`] | counters, span timers, `VX_LOG` event sink |
//! | [`vx_wal`] | checksummed fsync'd write-ahead segment log |
//! | [`vx_xml`] | XML 1.0 parser, DOM, writer |
//! | [`vx_storage`] | varints, paged file access |
//! | [`vx_skeleton`] | hash-consed DAG, `.vxsk` format, path index |
//! | [`vx_vector`] | `.vec` format, skip index, cursors |
//! | [`vx_ingest`] | streaming event-to-store pipeline |
//! | [`vx_core`] | vectorize / reconstruct, persistent store |
//! | [`vx_xquery`] | XQ parsing + desugaring |
//! | [`vx_engine`] | query graphs, vectorized `reduce`, oracle |
//! | [`vx_baselines`] | comparison-system interface (stubs) |
//! | [`vx_data`] | deterministic corpus generators |
//! | [`vx_bench`] | store size measurement |
//!
//! Quick start (`examples/quickstart.rs` runs the full loop):
//!
//! ```
//! use xmlvec::{Query, RunOptions};
//! let doc = xmlvec::xml::parse("<r><e><k>a</k></e><e><k>b</k></e></r>")?;
//! let vec_doc = xmlvec::core::vectorize(&doc)?;
//! let q = Query::new(r#"for $e in doc("d")/r/e return $e/k"#)?;
//! assert_eq!(q.run_with(&vec_doc, &RunOptions::default())?.output.strings(), ["a", "b"]);
//! # Ok::<(), xmlvec::Error>(())
//! ```

pub mod serve;

pub use vx_baselines as baselines;
pub use vx_bench as bench;
pub use vx_core as core;
pub use vx_data as data;
pub use vx_engine as engine;
pub use vx_ingest as ingest;
pub use vx_obs as obs;
pub use vx_skeleton as skeleton;
pub use vx_storage as storage;
pub use vx_vector as vector;
pub use vx_wal as wal;
pub use vx_xml as xml;
pub use vx_xquery as xquery;

pub use vx_engine::{JoinStrategy, Plan, Query, QueryOutput, RunOptions, RunOutcome};

use std::fmt;

/// Any error from any layer, for callers that do not care which.
#[derive(Debug)]
pub enum Error {
    Xml(vx_xml::XmlError),
    Storage(vx_storage::StorageError),
    Skeleton(vx_skeleton::SkeletonError),
    Vector(vx_vector::VectorError),
    Ingest(vx_ingest::IngestError),
    Core(vx_core::CoreError),
    Xq(vx_xquery::XqError),
    Engine(vx_engine::EngineError),
    Baseline(vx_baselines::BaselineError),
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "{e}"),
            Error::Storage(e) => write!(f, "{e}"),
            Error::Skeleton(e) => write!(f, "{e}"),
            Error::Vector(e) => write!(f, "{e}"),
            Error::Ingest(e) => write!(f, "{e}"),
            Error::Core(e) => write!(f, "{e}"),
            Error::Xq(e) => write!(f, "{e}"),
            Error::Engine(e) => write!(f, "{e}"),
            Error::Baseline(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Xml(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::Skeleton(e) => Some(e),
            Error::Vector(e) => Some(e),
            Error::Ingest(e) => Some(e),
            Error::Core(e) => Some(e),
            Error::Xq(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::Baseline(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

macro_rules! from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for Error {
            fn from(e: $ty) -> Self {
                Error::$variant(e)
            }
        }
    };
}

from_error!(Xml, vx_xml::XmlError);
from_error!(Storage, vx_storage::StorageError);
from_error!(Skeleton, vx_skeleton::SkeletonError);
from_error!(Vector, vx_vector::VectorError);
from_error!(Ingest, vx_ingest::IngestError);
from_error!(Core, vx_core::CoreError);
from_error!(Xq, vx_xquery::XqError);
from_error!(Engine, vx_engine::EngineError);
from_error!(Baseline, vx_baselines::BaselineError);
from_error!(Io, std::io::Error);

/// Result alias over the unified [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Parses XML text and vectorizes it in one step.
pub fn vectorize_str(xml_text: &str) -> Result<vx_core::VecDoc> {
    let doc = vx_xml::parse(xml_text)?;
    Ok(vx_core::vectorize(&doc)?)
}

/// Reconstructs a vectorized document back to XML text (compact form).
pub fn to_xml(doc: &vx_core::VecDoc) -> Result<String> {
    let document = vx_core::reconstruct(doc)?;
    Ok(vx_xml::write_document(
        &document,
        &vx_xml::WriteOptions::compact(),
    ))
}

#[cfg(test)]
mod tests {
    use crate::{Query, QueryOutput, RunOptions};

    #[test]
    fn facade_round_trip_and_query() {
        let xml = "<r><e><k>a</k></e><e><k>b</k></e></r>";
        let doc = crate::vectorize_str(xml).unwrap();
        assert_eq!(crate::to_xml(&doc).unwrap(), xml);
        let q = Query::new(r#"for $e in doc("d")/r/e where $e/k = "b" return $e/k"#).unwrap();
        assert_eq!(
            q.run_with(&doc, &RunOptions::default())
                .unwrap()
                .output
                .strings(),
            vec!["b"]
        );
    }

    #[test]
    fn facade_constructor_output_is_vectorized() {
        let doc = crate::vectorize_str("<r><e><k>a</k></e><e><k>b</k></e></r>").unwrap();
        let q = Query::new(r#"for $e in doc("d")/r/e return <row>{$e/k}</row>"#).unwrap();
        let out = q.run_with(&doc, &RunOptions::default()).unwrap().output;
        let QueryOutput::Document(vd) = &out else {
            panic!("expected a vectorized document");
        };
        assert!(vd.vector("results/row/k").is_some());
        assert_eq!(
            out.to_xml().unwrap(),
            "<results><row><k>a</k></row><row><k>b</k></row></results>"
        );
    }
}
