//! `bench_serve` — closed-loop load harness for `vx serve`, plus the
//! parallel-vs-serial reduce differential, emitted as `BENCH_serve.json`.
//!
//! ```text
//! bench_serve [--xk N] [--tb N] [--ml N] [--ss N] [--clients C]
//!             [--requests R] [--threads T] [--iters K] [--out FILE]
//! ```
//!
//! Two sections:
//!
//! 1. **serve** — the four bench corpora are ingested into on-disk
//!    stores, a real [`xmlvec::serve::Server`] is started on a loopback
//!    port, and `C` closed-loop client threads each issue `R` rounds of
//!    the 13-query table3 workload over keep-alive connections (with
//!    `/stats`, `/metrics` and `/healthz` probes mixed in). Latency is
//!    measured twice: client-side wall time per request, and the
//!    server's own per-endpoint histograms scraped from `/stats`. A
//!    sampler thread polls `/stats` throughout the run recording the
//!    queue-depth and slow-log-occupancy gauges, and the final
//!    `/metrics` answer is validated against the Prometheus text
//!    exposition format before the report is written.
//! 2. **reduce** — for each corpus at the configured scale, a
//!    two-document join (the corpus paired with a copy of itself under
//!    a second name) is evaluated with the scoped-thread per-document
//!    collection fan-out and serially; outputs must be byte-identical
//!    and both times are reported.
//!
//! Scales default from `BenchScales::DEFAULT`, overridable by the
//! `VX_BENCH_XK`/`VX_BENCH_TB`/`VX_BENCH_ML`/`VX_BENCH_SS` environment
//! and then flags; `VX_BENCH_CLIENTS`, `VX_BENCH_REQUESTS` and
//! `VX_BENCH_ITERS` seed the load-shape knobs the same way, so CI can
//! run the whole harness at tiny scale without touching flags.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xmlvec::bench::{build_corpus_store, corpus, BenchScales, DATASETS};
use xmlvec::core::json::{to_string_pretty, Json};
use xmlvec::core::{vectorize, StoreHandle};
use xmlvec::engine::Query;
use xmlvec::obs::Histogram;
use xmlvec::serve::Server;

struct Config {
    scales: BenchScales,
    clients: usize,
    requests: usize,
    threads: usize,
    iters: u32,
    out: PathBuf,
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_args() -> Config {
    let mut config = Config {
        scales: BenchScales::from_env(),
        clients: env_num("VX_BENCH_CLIENTS", 8),
        requests: env_num("VX_BENCH_REQUESTS", 25),
        threads: env_num("VX_BENCH_THREADS", 4),
        iters: env_num("VX_BENCH_ITERS", 3),
        out: PathBuf::from("BENCH_serve.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("bench_serve: {flag} needs a value");
                exit(2);
            })
        };
        let parse_num = |flag: &str, v: String| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bench_serve: bad {flag} value `{v}`");
                exit(2);
            })
        };
        match flag.as_str() {
            "--xk" => config.scales.xk_items = parse_num("--xk", value("--xk")),
            "--tb" => config.scales.tb_sentences = parse_num("--tb", value("--tb")),
            "--ml" => config.scales.ml_citations = parse_num("--ml", value("--ml")),
            "--ss" => config.scales.ss_rows = parse_num("--ss", value("--ss")),
            "--clients" => config.clients = parse_num("--clients", value("--clients")),
            "--requests" => config.requests = parse_num("--requests", value("--requests")),
            "--threads" => config.threads = parse_num("--threads", value("--threads")),
            "--iters" => config.iters = parse_num("--iters", value("--iters")) as u32,
            "--out" => config.out = PathBuf::from(value("--out")),
            other => {
                eprintln!("bench_serve: unknown flag `{other}`");
                eprintln!(
                    "usage: bench_serve [--xk N] [--tb N] [--ml N] [--ss N] [--clients C] \
                     [--requests R] [--threads T] [--iters K] [--out FILE]"
                );
                exit(2);
            }
        }
    }
    config.clients = config.clients.max(1);
    config.requests = config.requests.max(1);
    config.threads = config.threads.max(1);
    config.iters = config.iters.max(1);
    config
}

// ---------------------------------------------------------------------
// A minimal keep-alive HTTP/1.1 client
// ---------------------------------------------------------------------

/// One persistent connection; reconnects transparently if the server
/// side closed it (e.g. after a `connection: close` answer).
struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl Client {
    fn new(addr: SocketAddr) -> Client {
        Client { addr, stream: None }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        // One transparent retry: a keep-alive socket the server has
        // since closed surfaces as an error on the first write or read.
        for attempt in 0..2 {
            if self.stream.is_none() {
                let stream = TcpStream::connect(self.addr).unwrap_or_else(|e| {
                    eprintln!("bench_serve: connect {}: {e}", self.addr);
                    exit(1);
                });
                // Without this, the two-packet request (head + body)
                // collides with delayed ACKs and every query measures
                // the ~40ms Nagle stall instead of the server.
                let _ = stream.set_nodelay(true);
                self.stream = Some(stream);
            }
            match self.try_request(method, path, body) {
                Ok(answer) => return answer,
                Err(e) => {
                    self.stream = None;
                    if attempt == 1 {
                        eprintln!("bench_serve: {method} {path}: {e}");
                        exit(1);
                    }
                }
            }
        }
        unreachable!("request loop returns or exits");
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let stream = self.stream.as_mut().expect("connected");
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nhost: vx\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        request.extend_from_slice(body.as_bytes());
        stream.write_all(&request)?;
        stream.flush()?;
        read_response(stream)
    }
}

/// Reads exactly one response (headers + content-length body), leaving
/// the stream at the next keep-alive boundary.
fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, String)> {
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let mut bytes = Vec::new();
    let mut buffer = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut buffer)?;
        if n == 0 {
            return Err(bad("connection closed mid-response"));
        }
        bytes.extend_from_slice(&buffer[..n]);
    };
    let headers = String::from_utf8_lossy(&bytes[..header_end]).into_owned();
    let status: u16 = headers
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let content_length: usize = headers
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .ok_or_else(|| bad("missing content-length"))?;
    while bytes.len() < header_end + content_length {
        let n = stream.read(&mut buffer)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        bytes.extend_from_slice(&buffer[..n]);
    }
    let body =
        String::from_utf8_lossy(&bytes[header_end..header_end + content_length]).into_owned();
    Ok((status, body))
}

// ---------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------

struct ClientSide {
    query: Histogram,
    stats: Histogram,
    metrics: Histogram,
    healthz: Histogram,
}

/// Occupancy gauges sampled from `/stats` while the load loop runs.
struct LoadSamples {
    queue_depth: Vec<f64>,
    slowlog_entries: Vec<f64>,
}

fn sample_row(samples: &[f64]) -> Json {
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let mean = if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    };
    Json::Object(vec![
        ("samples".into(), Json::Num(samples.len() as f64)),
        ("mean".into(), Json::Num(mean)),
        ("max".into(), Json::Num(max)),
    ])
}

/// Runs the closed-loop load phase; returns the client-side histograms,
/// the final `/stats` document scraped from the server, and the sampled
/// queue-depth / slow-log occupancy gauges.
fn load_phase(config: &Config, addr: SocketAddr) -> (ClientSide, Json, LoadSamples) {
    let specs = xmlvec::data::workload();
    let bodies: Vec<String> = specs
        .iter()
        .map(|spec| {
            to_string_pretty(&Json::Object(vec![
                ("store".into(), Json::Str(spec.dataset.into())),
                ("query".into(), Json::Str(spec.xq.into())),
            ]))
        })
        .collect();

    // Warm-up: compile every workload query into the server's cache and
    // fail fast if any of them is rejected.
    let mut warm = Client::new(addr);
    for (spec, body) in specs.iter().zip(&bodies) {
        let (status, answer) = warm.request("POST", "/query", body);
        if status != 200 {
            eprintln!(
                "bench_serve: warm-up {} failed ({status}): {answer}",
                spec.name
            );
            exit(1);
        }
    }

    let side = ClientSide {
        query: Histogram::new(),
        stats: Histogram::new(),
        metrics: Histogram::new(),
        healthz: Histogram::new(),
    };
    // Sampler: polls `/stats` on its own connection while the clients
    // hammer `/query`, recording the queue-depth proxy and the slow-log
    // occupancy so the report shows how loaded the pool actually got.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = Client::new(addr);
            let mut samples = LoadSamples {
                queue_depth: Vec::new(),
                slowlog_entries: Vec::new(),
            };
            while !stop.load(Ordering::Relaxed) {
                let (status, body) = client.request("GET", "/stats", "");
                if status == 200 {
                    if let Ok(stats) = xmlvec::core::json::parse(&body) {
                        if let Some(depth) = stats
                            .get("server")
                            .and_then(|s| s.get("queue_depth"))
                            .and_then(Json::as_u64)
                        {
                            samples.queue_depth.push(depth as f64);
                        }
                        if let Some(entries) = stats
                            .get("slowlog")
                            .and_then(|s| s.get("entries"))
                            .and_then(Json::as_u64)
                        {
                            samples.slowlog_entries.push(entries as f64);
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            samples
        })
    };
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client_idx in 0..config.clients {
            let side = &side;
            let bodies = &bodies;
            scope.spawn(move || {
                let mut client = Client::new(addr);
                let mut timed = |hist: &Histogram, method: &str, path: &str, body: &str| {
                    let start = Instant::now();
                    let (status, answer) = client.request(method, path, body);
                    hist.record_secs(start.elapsed().as_secs_f64());
                    if status != 200 {
                        eprintln!("bench_serve: {method} {path} -> {status}: {answer}");
                        exit(1);
                    }
                };
                for round in 0..config.requests {
                    let body = &bodies[(client_idx + round) % bodies.len()];
                    timed(&side.query, "POST", "/query", body);
                    // Light observability traffic mixed into the loop:
                    // one probe every fourth round, rotating endpoints.
                    if round % 4 == 3 {
                        match (client_idx + round / 4) % 3 {
                            0 => timed(&side.stats, "GET", "/stats", ""),
                            1 => timed(&side.metrics, "GET", "/metrics", ""),
                            _ => timed(&side.healthz, "GET", "/healthz", ""),
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let samples = sampler.join().unwrap_or_else(|_| {
        eprintln!("bench_serve: sampler thread panicked");
        exit(1);
    });
    let total =
        side.query.count() + side.stats.count() + side.metrics.count() + side.healthz.count();
    println!(
        "load: {} clients x {} rounds -> {} requests in {elapsed:.2}s ({:.0} req/s)",
        config.clients,
        config.requests,
        total,
        total as f64 / elapsed
    );

    let (status, stats) = warm.request("GET", "/stats", "");
    if status != 200 {
        eprintln!("bench_serve: final /stats scrape failed ({status})");
        exit(1);
    }
    let scraped = xmlvec::core::json::parse(&stats).unwrap_or_else(|e| {
        eprintln!("bench_serve: /stats is not JSON: {e}");
        exit(1);
    });
    // The Prometheus endpoint must always serve a parseable exposition;
    // failing the bench here catches format regressions at full load.
    let (status, exposition) = warm.request("GET", "/metrics", "");
    if status != 200 {
        eprintln!("bench_serve: final /metrics scrape failed ({status})");
        exit(1);
    }
    match xmlvec::obs::prom::validate_exposition(&exposition) {
        Ok(series) => println!("metrics: {series} series, exposition format ok"),
        Err(e) => {
            eprintln!("bench_serve: /metrics exposition invalid: {e}");
            exit(1);
        }
    }
    (side, scraped, samples)
}

/// The per-dataset two-document join: the same corpus under the names
/// `a` and `b`, so the collection phase has two documents to fan out
/// over while the join itself mirrors a table3 workload query.
fn join_query(dataset: &str) -> &'static str {
    match dataset {
        "xk" => {
            r#"for $p in doc("a")/site/people/person,
                   $q in doc("b")/site/people/person
               where $p/@id = $q/@id
               return $p/name"#
        }
        "tb" => {
            r#"for $a in doc("a")//NP, $b in doc("b")//PP
               where $a/NN = $b/NP/NN
               return $a/NN"#
        }
        "ml" => {
            r#"for $a in doc("a")//MedlineCitation,
                   $b in doc("b")//MedlineCitation
               where $a/Language = "FRE"
                 and $a/PubData/Year = $b/PubData/Year
               return $b/PMID"#
        }
        "ss" => {
            r#"for $a in doc("a")//PhotoObj, $b in doc("b")//PhotoObj
               where $a/objID = $b/objID
               return $b/ra"#
        }
        other => {
            eprintln!("bench_serve: no join query for dataset `{other}`");
            exit(1);
        }
    }
}

fn canon(output: &xmlvec::QueryOutput) -> Vec<u8> {
    match output {
        xmlvec::QueryOutput::Values(values) => {
            let mut bytes = Vec::new();
            for value in values {
                bytes.extend_from_slice(value);
                bytes.push(b'\n');
            }
            bytes
        }
        xmlvec::QueryOutput::Document(_) => output
            .to_xml()
            .expect("constructor output serializes")
            .into_bytes(),
    }
}

/// Times the parallel per-document collection against the serial walk
/// for every corpus; best-of-`iters` per mode, byte-identical outputs.
/// `VX_PARALLEL=force` pins the fan-out on so the mechanism is really
/// measured — the engine's auto gate would silently fall back to the
/// serial walk on a single-core host (the report records the host's
/// parallelism so a ~1x speedup there is explained, not alarming).
fn reduce_phase(config: &Config) -> Vec<Json> {
    std::env::set_var("VX_PARALLEL", "force");
    let mut rows = Vec::new();
    for dataset in DATASETS {
        let records = config.scales.records(dataset);
        let doc = corpus(dataset, records);
        let vec_doc = vectorize(&doc).unwrap_or_else(|e| {
            eprintln!("bench_serve: vectorizing {dataset}: {e}");
            exit(1);
        });
        let handles = vec![
            StoreHandle::from_doc("a", vec_doc.clone()).expect("handle a"),
            StoreHandle::from_doc("b", vec_doc).expect("handle b"),
        ];
        let query = Query::new(join_query(dataset)).expect("join query compiles");

        let time_best = |serial: bool| -> (f64, Vec<u8>) {
            let mut best = f64::INFINITY;
            let mut bytes = Vec::new();
            for _ in 0..config.iters {
                let options = xmlvec::RunOptions {
                    parallel: !serial,
                    ..Default::default()
                };
                let start = Instant::now();
                let output = query
                    .run_with(&handles, &options)
                    .unwrap_or_else(|e| {
                        eprintln!("bench_serve: {dataset} join: {e}");
                        exit(1);
                    })
                    .output;
                best = best.min(start.elapsed().as_secs_f64());
                bytes = canon(&output);
            }
            (best, bytes)
        };
        let (serial_secs, serial_bytes) = time_best(true);
        let (parallel_secs, parallel_bytes) = time_best(false);
        if serial_bytes != parallel_bytes {
            eprintln!("bench_serve: {dataset}: parallel output diverged from serial");
            exit(1);
        }
        let cardinality = serial_bytes.iter().filter(|&&b| b == b'\n').count();
        let speedup = serial_secs / parallel_secs;
        println!(
            "reduce {dataset:>2}: {records:>6} records  serial {:>8.2}ms  parallel {:>8.2}ms  x{speedup:.2}",
            serial_secs * 1e3,
            parallel_secs * 1e3,
        );
        rows.push(Json::Object(vec![
            ("dataset".into(), Json::Str(dataset.into())),
            ("records".into(), Json::Num(records as f64)),
            ("cardinality".into(), Json::Num(cardinality as f64)),
            ("serial_secs".into(), Json::Num(serial_secs)),
            ("parallel_secs".into(), Json::Num(parallel_secs)),
            ("speedup".into(), Json::Num(speedup)),
        ]));
    }
    rows
}

fn histogram_row(hist: &Histogram) -> Json {
    Json::Object(vec![
        ("count".into(), Json::Num(hist.count() as f64)),
        ("p50_us".into(), Json::Num(hist.p50_us() as f64)),
        ("p99_us".into(), Json::Num(hist.p99_us() as f64)),
        ("mean_us".into(), Json::Num(hist.mean_us().round())),
        ("max_us".into(), Json::Num(hist.max_us() as f64)),
    ])
}

fn main() {
    let config = parse_args();
    let scratch = std::env::temp_dir().join(format!("vx-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut store_rows = Vec::new();
    for dataset in DATASETS {
        let records = config.scales.records(dataset);
        let build =
            build_corpus_store(&scratch.join(dataset), dataset, records).unwrap_or_else(|e| {
                eprintln!("bench_serve: building {dataset}: {e}");
                exit(1);
            });
        println!(
            "built {dataset:>2}: {:>8} records, {:>9.2} MB in {:.2}s",
            records,
            build.input_bytes as f64 / 1e6,
            build.ingest_secs
        );
        store_rows.push(Json::Object(vec![
            ("dataset".into(), Json::Str(dataset.into())),
            ("records".into(), Json::Num(records as f64)),
            ("input_bytes".into(), Json::Num(build.input_bytes as f64)),
            ("ingest_secs".into(), Json::Num(build.ingest_secs)),
        ]));
    }

    let dirs: Vec<PathBuf> = DATASETS.iter().map(|d| scratch.join(d)).collect();
    let dir_refs: Vec<&Path> = dirs.iter().map(PathBuf::as_path).collect();
    let server = Server::bind(&dir_refs, "127.0.0.1:0", config.threads).unwrap_or_else(|e| {
        eprintln!("bench_serve: bind: {e}");
        exit(1);
    });
    let addr = server.local_addr();
    let worker = std::thread::spawn(move || server.run());
    println!(
        "serving {} stores on {addr} with {} worker threads",
        DATASETS.len(),
        config.threads
    );

    let (side, scraped_stats, samples) = load_phase(&config, addr);

    let mut stop = Client::new(addr);
    let (status, _) = stop.request("POST", "/shutdown", "");
    if status != 200 {
        eprintln!("bench_serve: shutdown answered {status}");
        exit(1);
    }
    match worker.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            eprintln!("bench_serve: server loop: {e}");
            exit(1);
        }
        Err(_) => {
            eprintln!("bench_serve: server thread panicked");
            exit(1);
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let reduce_rows = reduce_phase(&config);

    let client_side = Json::Object(vec![
        ("query".into(), histogram_row(&side.query)),
        ("stats".into(), histogram_row(&side.stats)),
        ("metrics".into(), histogram_row(&side.metrics)),
        ("healthz".into(), histogram_row(&side.healthz)),
    ]);
    let report = Json::Object(vec![
        ("bench".into(), Json::Str("serve".into())),
        ("seed".into(), Json::Num(42.0)),
        (
            "default_scale".into(),
            Json::Bool(config.scales.is_default()),
        ),
        ("clients".into(), Json::Num(config.clients as f64)),
        (
            "requests_per_client".into(),
            Json::Num(config.requests as f64),
        ),
        ("server_threads".into(), Json::Num(config.threads as f64)),
        ("iters".into(), Json::Num(f64::from(config.iters))),
        (
            "host_parallelism".into(),
            Json::Num(
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) as f64,
            ),
        ),
        ("stores".into(), Json::Array(store_rows)),
        ("client_latency".into(), client_side),
        ("server_stats".into(), scraped_stats),
        (
            "load_samples".into(),
            Json::Object(vec![
                ("queue_depth".into(), sample_row(&samples.queue_depth)),
                (
                    "slowlog_entries".into(),
                    sample_row(&samples.slowlog_entries),
                ),
            ]),
        ),
        ("reduce".into(), Json::Array(reduce_rows)),
    ]);
    if let Err(e) = std::fs::write(&config.out, to_string_pretty(&report)) {
        eprintln!("bench_serve: writing {}: {e}", config.out.display());
        exit(1);
    }
    println!("wrote {}", config.out.display());
}
