//! `vx` — minimal command-line front end for the vectorized XML store.
//!
//! ```text
//! vx ingest <xml-file> <store-dir> [--auto] [--dom] [--drop-misc] [--frames N]
//! vx stats <store-dir>
//! ```
//!
//! `ingest` builds a store from an XML file, by default through the
//! streaming bounded-memory pipeline (`Store::ingest_stream`); `--dom`
//! forces the parse-then-vectorize path (both produce byte-identical
//! stores). `stats` summarizes a store from its catalog and skeleton
//! without loading any vectors.

use std::path::{Path, PathBuf};
use std::process::exit;
use xmlvec::bench::StoreSizes;
use xmlvec::core::{Catalog, Compaction, IngestOptions, Store};

const USAGE: &str = "usage:
  vx ingest <xml-file> <store-dir> [--auto] [--dom] [--drop-misc] [--frames N]
  vx stats <store-dir>

ingest options:
  --auto       per-vector dictionary compaction when smaller (default: plain)
  --dom        build via the in-memory DOM path instead of streaming
  --drop-misc  drop comments/processing instructions instead of erroring
  --frames N   spill buffer-pool frames for streaming ingest (default: 64)";

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("vx: {message}");
    exit(2);
}

fn usage() -> ! {
    eprintln!("{USAGE}");
    exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("ingest") => ingest(&args[1..]),
        Some("stats") => stats(&args[1..]),
        _ => usage(),
    }
}

fn ingest(args: &[String]) {
    let mut positional: Vec<&String> = Vec::new();
    let mut options = IngestOptions::default();
    let mut use_dom = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--auto" => options.compaction = Compaction::Auto,
            "--dom" => use_dom = true,
            "--drop-misc" => options.drop_unrepresentable = true,
            "--frames" => {
                i += 1;
                options.spill_frames = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--frames needs a positive integer"));
            }
            flag if flag.starts_with('-') => fail(format!("unknown flag `{flag}`")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let [xml_file, store_dir] = positional[..] else {
        usage();
    };
    let dir = PathBuf::from(store_dir);

    let catalog = if use_dom {
        let text = std::fs::read_to_string(xml_file)
            .unwrap_or_else(|e| fail(format!("reading {xml_file}: {e}")));
        let doc = xmlvec::xml::parse(&text).unwrap_or_else(|e| fail(e));
        let vectorize_options = xmlvec::core::VectorizeOptions {
            drop_unrepresentable: options.drop_unrepresentable,
        };
        let vec_doc =
            xmlvec::core::vectorize_with(&doc, &vectorize_options).unwrap_or_else(|e| fail(e));
        Store::save(&dir, &vec_doc, options.compaction).unwrap_or_else(|e| fail(e))
    } else {
        let file =
            std::fs::File::open(xml_file).unwrap_or_else(|e| fail(format!("{xml_file}: {e}")));
        let report = Store::ingest_stream(&dir, std::io::BufReader::new(file), &options)
            .unwrap_or_else(|e| fail(e));
        if report.spill_pages > 0 {
            println!(
                "spilled {} pages ({} pool misses, {} evictions)",
                report.spill_pages, report.pager.misses, report.pager.evictions
            );
        }
        report.catalog
    };
    println!(
        "ingested {} -> {} ({} paths, {} nodes, {} text bytes)",
        xml_file,
        dir.display(),
        catalog.vectors.len(),
        catalog.node_count,
        catalog.text_bytes
    );
}

fn stats(args: &[String]) {
    let [dir] = args else { usage() };
    let dir = Path::new(dir);
    let catalog_text = std::fs::read_to_string(dir.join("catalog.json"))
        .unwrap_or_else(|e| fail(format!("{}: {e}", dir.join("catalog.json").display())));
    let catalog = Catalog::parse(&catalog_text).unwrap_or_else(|e| fail(e));
    let skeleton_bytes = std::fs::read(dir.join("skeleton.vxsk"))
        .unwrap_or_else(|e| fail(format!("{}: {e}", dir.join("skeleton.vxsk").display())));
    let (skeleton, root) = xmlvec::skeleton::read(&skeleton_bytes).unwrap_or_else(|e| fail(e));
    let sizes = StoreSizes::measure(dir).unwrap_or_else(|e| fail(e));

    println!("store        {}", dir.display());
    println!(
        "nodes        {} expanded, {} DAG nodes ({:.1}x compression), {} names",
        catalog.node_count,
        skeleton.len(),
        catalog.node_count as f64 / skeleton.len() as f64,
        skeleton.names().len()
    );
    debug_assert_eq!(skeleton.expanded_size(root), catalog.node_count);
    println!(
        "bytes        {} skeleton, {} vectors, {} catalog, {} total",
        sizes.skeleton_bytes,
        sizes.vector_bytes,
        sizes.catalog_bytes,
        sizes.total()
    );
    println!("text bytes   {}", catalog.text_bytes);
    println!("vectors      {}", catalog.vectors.len());
    for entry in &catalog.vectors {
        println!(
            "  {:<12} {:>8} values {:>10} data bytes  {}",
            entry.file, entry.count, entry.data_bytes, entry.path
        );
    }
}
