//! `vx` — command-line front end for the vectorized XML store.
//!
//! ```text
//! vx ingest <xml-file> <store-dir> [--auto] [--dom] [--drop-misc] [--frames N]
//! vx stats <store-dir>
//! vx query <store-dir> <xquery> [--out values|xml]
//! vx reconstruct <store-dir> [--out <file>]
//! ```
//!
//! `ingest` builds a store from an XML file, by default through the
//! streaming bounded-memory pipeline (`Store::ingest_stream`); `--dom`
//! forces the parse-then-vectorize path (both produce byte-identical
//! stores). `stats` summarizes a store from its catalog and skeleton and
//! refuses stores that fail the integrity gate (every vector file must
//! decode and agree with the catalog). `query` compiles an XQ query and
//! reduces it against the store's `VEC(T)`; `reconstruct` regenerates
//! the original document text (byte-identical to the compact writer's
//! serialization of the ingested XML).
//!
//! Exit codes are part of the interface and pinned by `tests/cli.rs`:
//! `0` success, `1` operational failure (missing or damaged store, query
//! error, I/O error), `2` usage error (unknown command or flag, missing
//! operand).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::exit;
use xmlvec::bench::StoreSizes;
use xmlvec::core::{Catalog, Compaction, IngestOptions, Store, VecDoc};
use xmlvec::{Query, QueryOutput};

const USAGE: &str = "usage:
  vx ingest <xml-file> <store-dir> [--auto] [--dom] [--drop-misc] [--frames N]
  vx stats <store-dir>
  vx query <store-dir> <xquery> [--out values|xml]
  vx reconstruct <store-dir> [--out <file>]

ingest options:
  --auto       per-vector dictionary compaction when smaller (default: plain)
  --dom        build via the in-memory DOM path instead of streaming
  --drop-misc  drop comments/processing instructions instead of erroring
  --frames N   spill buffer-pool frames for streaming ingest (default: 64)

query options:
  --out values one projected text value per line (default)
  --out xml    serialize the result as an XML document

reconstruct options:
  --out FILE   write the XML to FILE instead of stdout";

/// Operational failure: the command was well-formed but could not be
/// carried out (missing store, damaged file, bad query, I/O error).
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("vx: {message}");
    exit(1);
}

/// Usage error: the command line itself is malformed.
fn fail_usage(message: impl std::fmt::Display) -> ! {
    eprintln!("vx: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

fn usage() -> ! {
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("ingest") => ingest(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("reconstruct") => reconstruct(&args[1..]),
        Some(other) => fail_usage(format!("unknown command `{other}`")),
        None => usage(),
    }
}

/// Splits `args` into positionals and handles one optional `--out VALUE`
/// flag; any other flag is a usage error.
fn positionals_and_out<'a>(
    args: &'a [String],
    command: &str,
) -> (Vec<&'a String>, Option<&'a str>) {
    let mut positional = Vec::new();
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .unwrap_or_else(|| fail_usage(format!("{command}: --out needs a value")))
                        .as_str(),
                );
            }
            flag if flag.starts_with('-') => {
                fail_usage(format!("{command}: unknown flag `{flag}`"))
            }
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    (positional, out)
}

fn ingest(args: &[String]) {
    let mut positional: Vec<&String> = Vec::new();
    let mut options = IngestOptions::default();
    let mut use_dom = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--auto" => options.compaction = Compaction::Auto,
            "--dom" => use_dom = true,
            "--drop-misc" => options.drop_unrepresentable = true,
            "--frames" => {
                i += 1;
                options.spill_frames = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail_usage("ingest: --frames needs a positive integer"));
            }
            flag if flag.starts_with('-') => fail_usage(format!("ingest: unknown flag `{flag}`")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let [xml_file, store_dir] = positional[..] else {
        fail_usage("ingest: expected <xml-file> <store-dir>");
    };
    let dir = PathBuf::from(store_dir);

    let catalog = if use_dom {
        let text = std::fs::read_to_string(xml_file)
            .unwrap_or_else(|e| fail(format!("reading {xml_file}: {e}")));
        let doc = xmlvec::xml::parse(&text).unwrap_or_else(|e| fail(e));
        let vectorize_options = xmlvec::core::VectorizeOptions {
            drop_unrepresentable: options.drop_unrepresentable,
        };
        let vec_doc =
            xmlvec::core::vectorize_with(&doc, &vectorize_options).unwrap_or_else(|e| fail(e));
        Store::save(&dir, &vec_doc, options.compaction).unwrap_or_else(|e| fail(e))
    } else {
        let file =
            std::fs::File::open(xml_file).unwrap_or_else(|e| fail(format!("{xml_file}: {e}")));
        let report = Store::ingest_stream(&dir, std::io::BufReader::new(file), &options)
            .unwrap_or_else(|e| fail(e));
        if report.spill_pages > 0 {
            println!(
                "spilled {} pages ({} pool misses, {} evictions)",
                report.spill_pages, report.pager.misses, report.pager.evictions
            );
        }
        report.catalog
    };
    println!(
        "ingested {} -> {} ({} paths, {} nodes, {} text bytes)",
        xml_file,
        dir.display(),
        catalog.vectors.len(),
        catalog.node_count,
        catalog.text_bytes
    );
}

/// Loads the whole store strictly — the integrity gate shared by `query`
/// and `reconstruct`. Any missing file, undecodable vector, or
/// catalog/file disagreement is an operational failure.
fn open_store(dir: &Path) -> (VecDoc, Catalog) {
    Store::open(dir).unwrap_or_else(|e| fail(format!("{}: {e}", dir.display())))
}

fn stats(args: &[String]) {
    let (positional, _) = positionals_and_out(args, "stats");
    let [dir] = positional[..] else {
        fail_usage("stats: expected <store-dir>");
    };
    let dir = Path::new(dir);
    let catalog_text = std::fs::read_to_string(dir.join("catalog.json"))
        .unwrap_or_else(|e| fail(format!("{}: {e}", dir.join("catalog.json").display())));
    let catalog = Catalog::parse(&catalog_text).unwrap_or_else(|e| fail(e));
    let skeleton_bytes = std::fs::read(dir.join("skeleton.vxsk"))
        .unwrap_or_else(|e| fail(format!("{}: {e}", dir.join("skeleton.vxsk").display())));
    let (skeleton, root) = xmlvec::skeleton::read(&skeleton_bytes).unwrap_or_else(|e| fail(e));
    let sizes = StoreSizes::measure(dir).unwrap_or_else(|e| fail(e));

    // Integrity gate: every vector file must decode and agree with its
    // catalog row before anything is printed — a damaged store yields
    // exit 1 and no partial output. One vector is resident at a time.
    for entry in &catalog.vectors {
        let vector = xmlvec::vector::Vector::open(&dir.join(&entry.file))
            .unwrap_or_else(|e| fail(format!("vector `{}` ({}): {e}", entry.path, entry.file)));
        if vector.len() != entry.count {
            fail(format!(
                "vector `{}` ({}): catalog says {} records, file has {}",
                entry.path,
                entry.file,
                entry.count,
                vector.len()
            ));
        }
        if vector.stats().data_bytes != entry.data_bytes {
            fail(format!(
                "vector `{}` ({}): catalog says {} data bytes, file has {}",
                entry.path,
                entry.file,
                entry.data_bytes,
                vector.stats().data_bytes
            ));
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "store        {}", dir.display());
    let _ = writeln!(
        out,
        "nodes        {} expanded, {} DAG nodes ({:.1}x compression), {} names",
        catalog.node_count,
        skeleton.len(),
        catalog.node_count as f64 / skeleton.len() as f64,
        skeleton.names().len()
    );
    debug_assert_eq!(skeleton.expanded_size(root), catalog.node_count);
    let _ = writeln!(
        out,
        "bytes        {} skeleton, {} vectors, {} catalog, {} total",
        sizes.skeleton_bytes,
        sizes.vector_bytes,
        sizes.catalog_bytes,
        sizes.total()
    );
    let _ = writeln!(out, "text bytes   {}", catalog.text_bytes);
    let _ = writeln!(out, "vectors      {}", catalog.vectors.len());
    for entry in &catalog.vectors {
        let _ = writeln!(
            out,
            "  {:<12} {:>8} values {:>10} data bytes  {}",
            entry.file, entry.count, entry.data_bytes, entry.path
        );
    }
    print!("{out}");
}

fn query(args: &[String]) {
    let (positional, out_mode) = positionals_and_out(args, "query");
    let [dir, xq] = positional[..] else {
        fail_usage("query: expected <store-dir> <xquery>");
    };
    let mode = match out_mode {
        None | Some("values") => "values",
        Some("xml") => "xml",
        Some(other) => fail_usage(format!(
            "query: --out must be `values` or `xml`, got `{other}`"
        )),
    };
    let (doc, _catalog) = open_store(Path::new(dir));
    let compiled = Query::new(xq).unwrap_or_else(|e| fail(format!("query: {e}")));
    // Every doc("…") name in the query resolves to this one store.
    let corpus: Vec<(&str, &VecDoc)> = compiled
        .graph()
        .doc_names()
        .into_iter()
        .map(|name| (name, &doc))
        .collect();
    let output = compiled
        .run_corpus(&corpus)
        .unwrap_or_else(|e| fail(format!("query: {e}")));
    match mode {
        "xml" => {
            let xml = output
                .to_xml()
                .unwrap_or_else(|e| fail(format!("query: {e}")));
            println!("{xml}");
        }
        _ => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            match &output {
                QueryOutput::Values(values) => {
                    // Values are raw bytes; write them unmangled.
                    for value in values {
                        lock.write_all(value)
                            .and_then(|()| lock.write_all(b"\n"))
                            .unwrap_or_else(|e| fail(e));
                    }
                }
                QueryOutput::Document(_) => {
                    for value in output.strings() {
                        writeln!(&mut lock as &mut dyn std::io::Write, "{value}")
                            .unwrap_or_else(|e| fail(e));
                    }
                }
            }
        }
    }
}

fn reconstruct(args: &[String]) {
    let (positional, out_file) = positionals_and_out(args, "reconstruct");
    let [dir] = positional[..] else {
        fail_usage("reconstruct: expected <store-dir>");
    };
    let (doc, _catalog) = open_store(Path::new(dir));
    let document = xmlvec::core::reconstruct(&doc).unwrap_or_else(|e| fail(e));
    let xml = xmlvec::xml::write_document(&document, &xmlvec::xml::WriteOptions::compact());
    match out_file {
        Some(path) => {
            std::fs::write(path, &xml).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            lock.write_all(xml.as_bytes()).unwrap_or_else(|e| fail(e));
        }
    }
}
